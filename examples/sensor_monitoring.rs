//! Sensor-fleet monitoring with horizon analysis.
//!
//! ```text
//! cargo run --release --example sensor_monitoring
//! ```
//!
//! A fleet of temperature/humidity/vibration sensors reports readings whose
//! error depends on each sensor's calibration grade — exactly the setting
//! the paper motivates ("sensors are typically expected to have considerable
//! noise … in many cases, the estimated error of the underlying data stream
//! is available"). Mid-stream, one zone of the plant shifts to a hotter
//! operating regime. We:
//!
//! 1. cluster the uncertain readings online with UMicro,
//! 2. record pyramidal snapshots each tick,
//! 3. answer "what did the *last quarter* of the stream look like?" via
//!    horizon subtraction — the old regime must be absent from that window,
//! 4. persist the snapshot store to JSON lines and reload it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use uncertain_streams::prelude::*;
use ustream_common::AdditiveFeature;
use ustream_snapshot::persist::{read_snapshots, write_snapshots};
use ustream_snapshot::PyramidConfig;

/// Per-sensor calibration: (value std-dev multipliers per channel).
#[derive(Clone, Copy)]
enum Grade {
    Lab,        // tight calibration
    Industrial, // moderate
    Budget,     // noisy
}

impl Grade {
    fn errors(self) -> [f64; 3] {
        match self {
            Grade::Lab => [0.05, 0.2, 0.01],
            Grade::Industrial => [0.2, 0.8, 0.05],
            Grade::Budget => [0.8, 2.5, 0.2],
        }
    }
}

fn reading(
    rng: &mut StdRng,
    centre: [f64; 3],
    spread: [f64; 3],
    grade: Grade,
    t: u64,
) -> UncertainPoint {
    let errs = grade.errors();
    let mut values = [0.0; 3];
    for j in 0..3 {
        let clean = Normal::new(centre[j], spread[j])
            .expect("finite mean and positive sigma")
            .sample(rng);
        let noise = Normal::new(0.0, errs[j])
            .expect("finite mean and positive sigma")
            .sample(rng);
        values[j] = clean + noise;
    }
    UncertainPoint::new(values.to_vec(), errs.to_vec(), t, None)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let total: u64 = 8_192;
    let regime_switch = total * 3 / 4;

    // Two plant zones: zone A runs cool, zone B runs warm. After the
    // switch, zone A shifts to a hot fault regime around (90, 40, 2.0).
    let zone_a_cool = [20.0, 55.0, 0.5];
    let zone_b_warm = [45.0, 30.0, 1.0];
    let zone_a_hot = [90.0, 40.0, 2.0];
    let spread = [1.5, 2.0, 0.1];

    let mut alg = UMicro::new(UMicroConfig::new(24, 3).expect("valid config"));
    let mut horizons = HorizonAnalyzer::new(PyramidConfig::new(2, 6).expect("valid geometry"));

    for t in 1..=total {
        let grade = match t % 3 {
            0 => Grade::Lab,
            1 => Grade::Industrial,
            _ => Grade::Budget,
        };
        let centre = if rng.gen_bool(0.5) {
            zone_b_warm
        } else if t <= regime_switch {
            zone_a_cool
        } else {
            zone_a_hot
        };
        let p = reading(&mut rng, centre, spread, grade, t);
        alg.insert(&p);
        horizons.record(t, &alg);
    }

    println!("stream finished: {} readings", alg.points_processed());

    // Live view: the LRU eviction policy has already recycled the stale
    // cool-regime micro-clusters to follow the hot fault regime.
    let live = alg.macro_cluster(3, 9);
    println!("\nlive macro-clusters (k = 3) — recent behaviour:");
    for (c, w) in live.centroids.iter().zip(&live.weights) {
        println!(
            "  temp {:>5.1}  humidity {:>5.1}  vibration {:>4.2}   weight {w:>7.1}",
            c[0], c[1], c[2]
        );
    }

    // The pyramidal store still knows the past: the snapshot just before
    // the regime switch shows the cool cluster that the live state evicted.
    let before = horizons
        .clusters_at(regime_switch)
        .expect("snapshot before switch");
    let cool_then: f64 = before
        .clusters
        .values()
        .filter(|e| e.centroid()[0] < 30.0)
        .map(|e| e.count())
        .sum();
    println!(
        "\nsnapshot at tick {regime_switch}: {:.0} of {:.0} points were in the cool regime",
        cool_then,
        before.total_count()
    );

    // Horizon view: the last quarter of the stream only.
    let h = total / 4;
    let window = horizons
        .horizon_clusters(total, h)
        .expect("horizon within retention");
    println!(
        "\nwindow (last {h} ticks): {} micro-clusters, {:.0} points",
        window.len(),
        window.total_count()
    );
    let cool_mass: f64 = window
        .clusters
        .values()
        .filter(|e| e.centroid()[0] < 30.0)
        .map(|e| e.count())
        .sum();
    println!(
        "mass in the old cool regime within the window: {:.1}%  (should be ~0)",
        100.0 * cool_mass / window.total_count()
    );
    let mac = horizons
        .macro_cluster_horizon(total, h, 2, 5)
        .expect("macro over window");
    println!("window macro-centroids (k = 2):");
    for c in &mac.centroids {
        println!(
            "  temp {:>5.1}  humidity {:>5.1}  vibration {:>4.2}",
            c[0], c[1], c[2]
        );
    }

    // Persist the pyramidal store and reload it — offline analysis later.
    let path = std::env::temp_dir().join("sensor_snapshots.jsonl");
    let file = std::fs::File::create(&path).expect("create snapshot file");
    write_snapshots(horizons.store(), file).expect("persist snapshots");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let restored: ustream_snapshot::SnapshotStore<
        ustream_snapshot::ClusterSetSnapshot<umicro::Ecf>,
    > = read_snapshots(
        *horizons.store().config(),
        std::fs::File::open(&path).expect("open snapshot file"),
    )
    .expect("reload snapshots");
    println!(
        "\npersisted {} snapshots ({} KiB) and reloaded {} — pyramidal store is durable",
        horizons.store().len(),
        bytes / 1024,
        restored.len()
    );
    std::fs::remove_file(&path).ok();
}
