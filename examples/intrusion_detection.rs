//! Network-intrusion stream monitoring — the paper's flagship real
//! workload.
//!
//! ```text
//! cargo run --release --example intrusion_detection
//! ```
//!
//! Connection records arrive as 34-dimensional uncertain points (error
//! estimates from the collection pipeline). Normal traffic dominates, with
//! bursty attack episodes. The example runs UMicro and the CluStream
//! baseline side by side and shows:
//!
//! * cluster purity against the ground-truth traffic classes (UMicro's
//!   uncertainty handling pays off at realistic noise levels),
//! * a simple novelty detector: a spike in the isolation of arriving
//!   records (error-corrected distance to the nearest micro-cluster) marks
//!   traffic unlike anything recently seen — a zero-day episode is spliced
//!   into the stream to demonstrate it.
//!
//! If a real KDD Cup'99 file is available, point the example at it with
//! `KDD99_PATH=/path/to/kddcup.data`; otherwise the statistical simulator
//! from `ustream-synth` is used.

use clustream::{CluStream, CluStreamConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use umicro::{UMicro, UMicroConfig};
use ustream_common::{DataStream, UncertainPoint};
use ustream_eval::ClusterPurity;
use ustream_synth::loader::load_kdd99;
use ustream_synth::profiles::network_intrusion;
use ustream_synth::NoisyStream;

const ETA: f64 = 0.5;
const N_MICRO: usize = 100;
const LEN: usize = 60_000;

fn load_stream() -> (Vec<UncertainPoint>, usize) {
    if let Ok(path) = std::env::var("KDD99_PATH") {
        match load_kdd99(std::path::Path::new(&path), LEN) {
            Ok(stream) => {
                let dims = stream.dims();
                println!("using real KDD'99 data from {path}");
                let noisy = NoisyStream::new(stream, ETA, StdRng::seed_from_u64(99));
                return (noisy.collect(), dims);
            }
            Err(e) => eprintln!("could not load {path}: {e}; falling back to simulator"),
        }
    }
    let clean = network_intrusion(LEN, 1234);
    let dims = clean.dims();
    let noisy = NoisyStream::new(clean, ETA, StdRng::seed_from_u64(99));
    (noisy.collect(), dims)
}

/// Splices a "zero-day" episode into the stream: 800 records from a traffic
/// pattern no cluster has seen, starting at two-thirds of the stream.
fn inject_zero_day(points: &mut Vec<UncertainPoint>, dims: usize) -> usize {
    use rand_distr::{Distribution, Normal};
    let mut rng = StdRng::seed_from_u64(0xdead);
    let start = points.len() * 2 / 3;
    let scale = 500.0; // far outside the normal feature ranges.
    let psi = vec![1.0; dims];
    let episode: Vec<UncertainPoint> = (0..800)
        .map(|i| {
            let values: Vec<f64> = (0..dims)
                .map(|j| {
                    scale
                        + Normal::new(0.0, 5.0)
                            .expect("finite mean and positive sigma")
                            .sample(&mut rng)
                            * (j % 3 + 1) as f64
                })
                .collect();
            UncertainPoint::new(
                values,
                psi.clone(),
                points[start + i].timestamp(),
                Some(ustream_common::ClassLabel(9)), // novel class
            )
        })
        .collect();
    points.splice(start..start, episode);
    start
}

fn main() {
    let (mut points, dims) = load_stream();
    let zero_day_at = inject_zero_day(&mut points, dims);
    let points = points;
    println!(
        "monitoring {} connection records ({dims} continuous attributes, eta = {ETA})\n",
        points.len()
    );

    let mut umicro = UMicro::new(UMicroConfig::new(N_MICRO, dims).expect("valid config"));
    let mut clustream = CluStream::new(CluStreamConfig::new(N_MICRO, dims).expect("valid config"));

    let mut u_purity = ClusterPurity::new();
    let mut c_purity = ClusterPurity::new();

    // Novelty detector: per 1 000-point window, track the *isolation* of the
    // most isolated arriving record — its error-corrected distance to the
    // nearest existing micro-cluster, measured before insertion. Ordinary
    // traffic (and bursts of known attack types) lands near some cluster;
    // a zero-day pattern sits far from everything.
    let window = 1_000usize;
    let mut max_isolation = 0.0f64;
    let mut baseline: f64 = 0.0;
    let mut windows_seen = 0usize;
    let mut alerts = Vec::new();

    for (i, p) in points.iter().enumerate() {
        let isolation = umicro
            .micro_clusters()
            .iter()
            .map(|c| umicro::distance::corrected_sq_distance(p, &c.ecf))
            .fold(f64::INFINITY, f64::min)
            .sqrt();
        if isolation.is_finite() {
            max_isolation = max_isolation.max(isolation);
        }
        let out = umicro.insert(p);
        if let Some(l) = p.label() {
            u_purity.observe(out.cluster_id, l);
        }

        let out_c = clustream.insert(p);
        if let Some(l) = p.label() {
            c_purity.observe(out_c.cluster_id, l);
        }

        if (i + 1) % window == 0 {
            windows_seen += 1;
            let rate = max_isolation;
            // Alert when the most isolated record sits 3x farther from every
            // cluster than usual (after a warm-up of 5 windows).
            if windows_seen > 5 && rate > 3.0 * baseline.max(1e-9) {
                alerts.push((i + 1, rate));
            }
            if std::env::var("DEBUG_WINDOWS").is_ok() {
                eprintln!("window {windows_seen}: max isolation {rate:.1}, baseline {baseline:.1}");
            }
            let n = windows_seen as f64;
            baseline += (rate - baseline) / n;
            max_isolation = 0.0;
        }
    }

    println!("cluster purity against traffic classes:");
    println!(
        "  UMicro    : {:.4} (weighted {:.4})",
        u_purity.purity().unwrap_or(0.0),
        u_purity.weighted_purity().unwrap_or(0.0)
    );
    println!(
        "  CluStream : {:.4} (weighted {:.4})",
        c_purity.purity().unwrap_or(0.0),
        c_purity.weighted_purity().unwrap_or(0.0)
    );

    println!(
        "\nnovelty alerts (isolation spikes; a zero-day episode was injected \
         at point {zero_day_at}):"
    );
    if alerts.is_empty() {
        println!("  none — traffic structure stayed stable");
    }
    for (pos, rate) in alerts.iter().take(10) {
        println!("  at point {pos:>6}: a record {rate:>7.0} units from every known cluster");
    }

    // Macro view: the five traffic categories.
    let mac = umicro.macro_cluster(5, 3);
    println!(
        "\nmacro-clusters (k = 5) weights: {:?}",
        mac.weights.iter().map(|w| *w as u64).collect::<Vec<_>>()
    );
}
