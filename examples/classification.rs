//! Streaming classification of uncertain records.
//!
//! ```text
//! cargo run --release --example classification
//! ```
//!
//! A labelled uncertain stream (forest-cover profile, heterogeneous
//! per-record error levels) trains a per-class micro-cluster classifier on
//! the fly; held-out records are labelled by the nearest micro-cluster
//! under the error-corrected distance. The example contrasts that with the
//! uncertainty-blind Euclidean prediction, echoing the finding of the
//! paper's reference [1] that error information sharpens classification.

use rand::rngs::StdRng;
use rand::SeedableRng;
use umicro::{MicroClassifier, UMicroConfig};
use ustream_common::UncertainPoint;
use ustream_synth::profiles::forest_cover;
use ustream_synth::{NoiseVariant, NoisyStream};

const LEN: usize = 30_000;
const ETA: f64 = 1.25;
const BUDGET: usize = 25; // micro-clusters per class

fn main() {
    let clean = forest_cover(LEN, 77);
    let dims = ustream_common::DataStream::dims(&clean);
    let stream = NoisyStream::new(clean, ETA, StdRng::seed_from_u64(78))
        .with_variant(NoiseVariant::PerRecord { spread: 0.9 });
    let points: Vec<UncertainPoint> = stream.collect();
    let split = points.len() * 7 / 10;

    println!(
        "forest-cover-like stream: {} records, {dims} dims, eta = {ETA}, \
         per-record error spread 0.9\n",
        points.len()
    );

    let mut clf = MicroClassifier::new(UMicroConfig::new(BUDGET, dims).expect("valid config"));
    for p in &points[..split] {
        clf.train_labelled(p);
    }
    println!(
        "trained on {split} records across {} classes ({BUDGET} micro-clusters per class)",
        clf.classes().count()
    );

    let test = &points[split..];
    let mut corrected_ok = 0usize;
    let mut euclid_ok = 0usize;
    let mut confident_correct = 0usize;
    let mut confident_total = 0usize;
    for p in test {
        let truth = p.label().expect("labelled stream");
        if let Some(c) = clf.classify(p) {
            if c.label == truth {
                corrected_ok += 1;
            }
            if c.confidence() > 0.5 {
                confident_total += 1;
                if c.label == truth {
                    confident_correct += 1;
                }
            }
        }
        if clf.classify_euclidean(p).map(|c| c.label) == Some(truth) {
            euclid_ok += 1;
        }
    }

    let n = test.len() as f64;
    println!("\nheld-out accuracy ({} records):", test.len());
    println!(
        "  error-corrected distance : {:.4}",
        corrected_ok as f64 / n
    );
    println!("  plain Euclidean          : {:.4}", euclid_ok as f64 / n);
    if confident_total > 0 {
        println!(
            "\nhigh-confidence predictions (margin > 0.5): {:.4} accurate over {} records",
            confident_correct as f64 / confident_total as f64,
            confident_total
        );
    }
    println!(
        "\nThe corrected metric subtracts the *known* error variance from the\n\
         realized distances, so records with honest large ψ are not pushed to\n\
         the wrong class by their own noise."
    );
}
