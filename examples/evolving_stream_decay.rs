//! Evolving streams and exponential time decay (§II-E).
//!
//! ```text
//! cargo run --release --example evolving_stream_decay
//! ```
//!
//! A fast-drifting uncertain stream is clustered twice: once with plain
//! UMicro and once with the decayed variant at several half-lives. On
//! evolving data, down-weighting stale points keeps centroids near where
//! the clusters *are*, not where they *were*. The example prints, for each
//! configuration, how far the final micro-cluster centroids sit from the
//! generator's final (drifted) cluster centres.

use rand::rngs::StdRng;
use rand::SeedableRng;
use umicro::{DecayedUMicro, UMicro, UMicroConfig};
use ustream_common::point::sq_euclidean;
use ustream_common::{AdditiveFeature, DataStream};
use ustream_synth::{NoisyStream, SynDriftConfig};

const LEN: usize = 30_000;
const ETA: f64 = 0.5;
const N_MICRO: usize = 60;

/// Mean distance from each heavy micro-cluster centroid to the nearest true
/// (final) generator centre — lower is better tracking.
fn tracking_error(centroids: &[(Vec<f64>, f64)], truth: &[Vec<f64>]) -> f64 {
    let mut acc = 0.0;
    let mut weight = 0.0;
    for (c, w) in centroids {
        let d2 = truth
            .iter()
            .map(|t| sq_euclidean(c, t))
            .fold(f64::INFINITY, f64::min);
        acc += w * d2.sqrt();
        weight += w;
    }
    acc / weight.max(1e-12)
}

fn stream() -> (
    NoisyStream<ustream_synth::SynDriftStream, StdRng>,
    Vec<Vec<f64>>,
) {
    let mut cfg = SynDriftConfig::paper();
    cfg.dims = 8;
    cfg.n_clusters = 6;
    cfg.len = LEN;
    cfg.epsilon = 0.08; // aggressive drift
    cfg.drift_interval = 25;
    // Replay the generator once to learn where the clusters END up.
    let mut probe = cfg.clone().build(77);
    while probe.next().is_some() {}
    let truth = probe.centroids().to_vec();
    let gen = cfg.build(77);
    (NoisyStream::new(gen, ETA, StdRng::seed_from_u64(5)), truth)
}

fn final_centroids(clusters: &[umicro::MicroCluster]) -> Vec<(Vec<f64>, f64)> {
    clusters
        .iter()
        .filter(|c| c.ecf.weight() > 1.0)
        .map(|c| (c.ecf.centroid(), c.ecf.weight()))
        .collect()
}

fn main() {
    println!("fast-drifting stream: {LEN} points, eta = {ETA}, {N_MICRO} micro-clusters\n");

    // Baseline: no decay.
    let (s, truth) = stream();
    let dims = s.dims();
    let mut plain = UMicro::new(UMicroConfig::new(N_MICRO, dims).expect("valid config"));
    for p in s {
        plain.insert(&p);
    }
    let err = tracking_error(&final_centroids(plain.micro_clusters()), &truth);
    println!("no decay               : tracking error {err:.4}");

    // Decayed variants.
    for half_life in [500.0, 2_000.0, 8_000.0] {
        let (s, truth) = stream();
        let mut alg = DecayedUMicro::with_half_life(
            UMicroConfig::new(N_MICRO, dims).expect("valid config"),
            half_life,
        );
        let mut last = 0;
        for p in s {
            last = p.timestamp();
            alg.insert(&p);
        }
        alg.synchronize(last);
        let err = tracking_error(&final_centroids(alg.micro_clusters()), &truth);
        println!("half-life {half_life:>7.0} ticks : tracking error {err:.4}");
    }

    println!(
        "\nShorter half-lives forget stale mass faster, so the final centroids\n\
         track the drifted cluster positions more closely (at the cost of\n\
         statistical efficiency on stable streams)."
    );
}
