//! Quickstart: cluster an uncertain data stream with UMicro.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small drifting synthetic stream, perturbs it with the η
//! uncertainty model (each record arrives as `(values, ψ)`), feeds it to
//! UMicro, and prints the micro-cluster summary, a 5-way macro-clustering
//! and the cluster purity against the generator's ground truth.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uncertain_streams::prelude::*;
use ustream_common::AdditiveFeature;

fn main() {
    // 1. A 10k-point, 5-dimensional stream with 4 drifting clusters...
    let clean = SynDriftConfig::small_test().build(42);
    let dims = clean.dims();
    // ...with measurement noise at η = 0.75 and the true error std-devs
    // attached to every record.
    let stream = ustream_synth::NoisyStream::new(clean, 0.75, StdRng::seed_from_u64(7));

    // 2. One-pass clustering under a 50 micro-cluster budget.
    let mut alg = UMicro::new(UMicroConfig::new(50, dims).expect("valid config"));
    let mut purity = ClusterPurity::new();
    for point in stream {
        let outcome = alg.insert(&point);
        if let Some(label) = point.label() {
            purity.observe(outcome.cluster_id, label);
        }
    }

    // 3. Inspect the result.
    println!("processed {} points", alg.points_processed());
    println!("live micro-clusters: {}", alg.micro_clusters().len());
    let mut sizes: Vec<u64> = alg
        .micro_clusters()
        .iter()
        .map(|c| c.ecf.point_count())
        .collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "largest micro-clusters (points): {:?}",
        &sizes[..sizes.len().min(8)]
    );

    println!(
        "cluster purity vs generator labels: {:.3} (weighted {:.3})",
        purity.purity().unwrap_or(0.0),
        purity.weighted_purity().unwrap_or(0.0)
    );

    // 4. Offline macro-clustering of the summaries into 4 user clusters.
    let mac = alg.macro_cluster(4, 1);
    println!("\nmacro-clusters (k = 4):");
    for (i, (centroid, weight)) in mac.centroids.iter().zip(&mac.weights).enumerate() {
        let head: Vec<String> = centroid.iter().take(3).map(|v| format!("{v:.2}")).collect();
        println!(
            "  #{i}: weight {weight:>8.1}, centroid [{}, ...]",
            head.join(", ")
        );
    }

    // 5. Any point can be routed to its macro-cluster.
    let probe = alg.micro_clusters()[0].ecf.centroid();
    println!(
        "\nfirst micro-cluster centroid routes to macro-cluster #{}",
        mac.assign(&probe)
    );
}
