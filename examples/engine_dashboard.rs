//! Live analytics over an uncertain stream with the embeddable engine.
//!
//! ```text
//! cargo run --release --example engine_dashboard
//! ```
//!
//! Four producer threads feed uncertain sensor readings into a
//! [`StreamEngine`] while the main thread periodically "renders a
//! dashboard": live macro-clusters, a trailing-window view, the evolution
//! report between the two most recent windows, and any novelty alerts.
//! Halfway through, one producer's readings shift to a new operating
//! regime, which shows up in the evolution report and the window queries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use umicro::UMicroConfig;
use uncertain_streams::prelude::*;
use ustream_snapshot::PyramidConfig;

fn main() {
    let config = EngineConfig::new(UMicroConfig::new(32, 3).expect("valid config"))
        .with_pyramid(PyramidConfig::new(2, 6).expect("valid geometry"))
        .with_novelty_factor(Some(6.0))
        .with_shards(2)
        .with_snapshot_every(16);
    let engine = Arc::new(
        EngineBuilder::from_config(config)
            .build()
            .expect("engine starts"),
    );
    let clock = Arc::new(AtomicU64::new(0));

    let total_per_producer = 4_000u64;
    let mut producers = Vec::new();
    for producer in 0..4u64 {
        let engine = Arc::clone(&engine);
        let clock = Arc::clone(&clock);
        producers.push(std::thread::spawn(move || {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(100 + producer);
            for i in 0..total_per_producer {
                // relaxed-ok: shared tick counter only needs uniqueness, not ordering
                let t = clock.fetch_add(1, Ordering::Relaxed) + 1;
                // Producers 0-2 are stable plants; producer 3 shifts regime
                // halfway through.
                let base = if producer == 3 && i > total_per_producer / 2 {
                    [80.0, 15.0, 3.0]
                } else {
                    [20.0 + producer as f64 * 10.0, 50.0, 1.0]
                };
                // Honest uncertainty: the reported ψ is the std-dev of the
                // measurement noise actually injected.
                let errors = [0.4, 0.8, 0.05];
                let values: Vec<f64> = base
                    .iter()
                    .zip(&errors)
                    .map(|(b, e)| {
                        let clean = b + rng.gen_range(-1.0..1.0);
                        let noise: f64 = rand_distr::Distribution::sample(
                            &rand_distr::Normal::new(0.0, *e)
                                .expect("finite mean and positive sigma"),
                            &mut rng,
                        );
                        clean + noise
                    })
                    .collect();
                engine
                    .push(UncertainPoint::new(values, errors.to_vec(), t, None))
                    .expect("engine accepts records until shutdown");
                if i % 500 == 0 {
                    std::thread::yield_now();
                }
            }
        }));
    }

    // Periodic dashboard renders while ingestion is running.
    for frame in 1..=4 {
        std::thread::sleep(std::time::Duration::from_millis(120));
        let stats = engine.stats();
        println!(
            "frame {frame}: {} points, {} live micro-clusters, {} snapshots",
            stats.points_processed, stats.live_clusters, stats.snapshots_retained
        );
        for s in &stats.per_shard {
            println!(
                "  shard {}: {:>6} clustered, {:>4} queued, {} clusters, {:>8.0} pts/s",
                s.shard, s.processed, s.queue_depth, s.live_clusters, s.points_per_sec
            );
        }
    }

    for p in producers {
        p.join().expect("producer thread");
    }
    engine.flush();

    println!("\n== final dashboard ==");
    let mac = engine.macro_clusters(4, 7);
    println!("live macro-clusters (k = 4):");
    for (c, w) in mac.centroids.iter().zip(&mac.weights) {
        println!(
            "  [{:>5.1}, {:>5.1}, {:>4.2}]  weight {w:>7.1}",
            c[0], c[1], c[2]
        );
    }

    let h = 2_000;
    if let Ok(window) = engine.horizon_clusters(h) {
        println!(
            "\ntrailing {h}-tick window: {} micro-clusters, {:.0} points",
            window.len(),
            window.total_count()
        );
    }

    match engine.evolution(h, 5.0) {
        Ok(report) => {
            println!(
                "evolution over the last two {h}-tick windows: {} emerged, {} faded, \
                 {} persisted (mean drift {:.2}, turbulence {:.2})",
                report.emerged(),
                report.faded(),
                report.persisted(),
                report.mean_drift,
                report.turbulence()
            );
        }
        Err(e) => println!("evolution unavailable: {e}"),
    }

    let alerts = engine.drain_alerts();
    println!("novelty alerts: {}", alerts.len());
    for a in alerts.iter().take(5) {
        println!(
            "  tick {:>6}: isolation {:.1} (baseline {:.1})",
            a.timestamp, a.isolation, a.baseline
        );
    }

    let report = engine.shutdown();
    println!(
        "\nshutdown: {} points, {} created / {} evicted micro-clusters, {} alerts total",
        report.points_processed,
        report.clusters_created,
        report.clusters_evicted,
        report.alerts_raised
    );
    println!(
        "shards: {} exact merges, {:.1} µs mean merge latency",
        report.merges, report.mean_merge_micros
    );
    for s in &report.per_shard {
        println!(
            "  shard {}: {} records ({:.0} pts/s), {} live clusters, {} alerts",
            s.shard, s.processed, s.points_per_sec, s.live_clusters, s.alerts_raised
        );
    }
}
