//! # uncertain-streams
//!
//! A production-quality Rust reproduction of *"A Framework for Clustering
//! Uncertain Data Streams"* (Charu C. Aggarwal & Philip S. Yu, ICDE 2008).
//!
//! The paper introduces **UMicro**, a one-pass micro-clustering algorithm for
//! streams whose records carry per-dimension error estimates `ψ(X)`.
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`umicro`] — the paper's contribution: error-based cluster features
//!   (`ECF`), expected-distance computation, dimension-counting similarity,
//!   uncertainty boundaries, exponential time decay and horizon analysis.
//! * [`clustream`] — the deterministic CluStream baseline (VLDB 2003) and the
//!   STREAM k-means baseline (ICDE 2002) the paper compares against.
//! * [`ustream_synth`] — the paper's SynDrift generator, the η noise model,
//!   and statistical simulators of the real datasets used in the evaluation.
//! * [`ustream_eval`] — cluster purity (the paper's quality metric), SSQ,
//!   NMI, ARI and throughput meters.
//! * [`ustream_engine`] — an embeddable analytics engine: concurrent
//!   ingestion, pyramidal snapshots, horizon/evolution queries, novelty
//!   alerts.
//! * [`ustream_kmeans`], [`ustream_snapshot`], [`ustream_common`] —
//!   substrates: weighted k-means (plus the UK-means comparator), the
//!   pyramidal time frame, and shared point/feature abstractions.
//!
//! ## Quickstart
//!
//! ```
//! use uncertain_streams::prelude::*;
//!
//! // A tiny uncertain stream: two well-separated blobs, one noisy dimension.
//! let mut gen = SynDriftConfig::small_test().build(7);
//! let mut alg = UMicro::new(UMicroConfig::new(10, gen.dims()).unwrap());
//! for point in (&mut gen).take(500) {
//!     alg.insert(&point);
//! }
//! assert!(alg.micro_clusters().len() > 1);
//! let macro_clusters = alg.macro_cluster(4, 42);
//! assert_eq!(macro_clusters.centroids.len(), 4);
//! ```

pub use clustream;
pub use umicro;
pub use ustream_common;
pub use ustream_engine;
pub use ustream_eval;
pub use ustream_kmeans;
pub use ustream_snapshot;
pub use ustream_synth;

/// One-stop imports for applications.
pub mod prelude {
    pub use clustream::{CluStream, CluStreamConfig, StreamKMeans, StreamKMeansConfig};
    pub use umicro::{
        DecayedUMicro, Ecf, HorizonAnalyzer, MacroClustering, OnlineClusterer, UMicro, UMicroConfig,
    };
    pub use ustream_common::{
        ClassLabel, DataStream, DeterministicPoint, Timestamp, UncertainPoint, VecStream,
    };
    // `ClusterQuery` is deliberately not in the prelude: glob-importing it
    // alongside `OnlineClusterer` would make `macro_cluster`/`export_state`
    // calls on boxed clusterers ambiguous. Import it explicitly where the
    // unified read API is wanted.
    pub use ustream_engine::{EngineBuilder, EngineConfig, StreamEngine};
    pub use ustream_eval::{ClusterPurity, ProgressionTracker, ThroughputMeter};
    pub use ustream_synth::{DatasetProfile, NoiseModel, SynDriftConfig};
}
