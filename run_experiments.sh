#!/bin/bash
# Regenerates every figure of the paper at recorded scale.
set -x
cd /root/repo
mkdir -p results
B="cargo run --release -q -p ustream-bench --bin"
$B fig_purity_progression -- --dataset syndrift --full true          > results/fig2_syndrift.txt 2>&1
$B fig_purity_progression -- --dataset network  --full true          > results/fig3_network.txt 2>&1
$B fig_purity_progression -- --dataset donation --full true          > results/fig4_donation.txt 2>&1
$B fig_purity_vs_error    -- --dataset syndrift --len 150000         > results/fig5_syndrift.txt 2>&1
$B fig_purity_vs_error    -- --dataset network  --len 150000         > results/fig6_network.txt 2>&1
$B fig_purity_vs_error    -- --dataset forest   --len 150000         > results/fig7_forest.txt 2>&1
$B fig_throughput         -- --dataset syndrift --full true          > results/fig8_syndrift.txt 2>&1
$B fig_throughput         -- --dataset network  --full true          > results/fig9_network.txt 2>&1
$B fig_throughput         -- --dataset forest   --full true          > results/fig10_forest.txt 2>&1
$B ablation_similarity    -- --len 80000                             > results/a1_similarity.txt 2>&1
$B ablation_boundary      -- --len 80000                             > results/a2_boundary.txt 2>&1
$B ablation_decay         -- --len 80000                             > results/a3_decay.txt 2>&1
$B ablation_snapshots     -- --len 200000                            > results/a4_snapshots.txt 2>&1
$B ablation_thresh        -- --len 80000                             > results/a5_thresh.txt 2>&1
$B ablation_n_micro       -- --len 80000                             > results/a6_n_micro.txt 2>&1
$B ablation_classify      -- --len 60000                             > results/a7_classify.txt 2>&1
echo ALL_DONE
