//! Property-based checkpoint/restore round-trips: for random streams,
//! shard counts and snapshot cadences, a restored engine must reproduce
//! the checkpointed engine *bit for bit* — micro-cluster ECFs, horizon
//! queries and counters — and must continue the stream identically.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use umicro::UMicroConfig;
use ustream_common::UncertainPoint;
use ustream_engine::{EngineBuilder, EngineConfig, StreamEngine};

const DIMS: usize = 2;

/// Unique checkpoint path per proptest case (cases run in one process).
fn case_path() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed); // relaxed-ok: test-harness counter; thread::join supplies the final synchronisation
    std::env::temp_dir()
        .join(format!("ustream-roundtrip-{}-{n}.ckpt", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn arb_stream() -> impl Strategy<Value = Vec<UncertainPoint>> {
    pvec(
        (pvec(-50.0..50.0f64, DIMS), pvec(0.0..5.0f64, DIMS)),
        20..200,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (values, errors))| UncertainPoint::new(values, errors, i as u64 + 1, None))
            .collect()
    })
}

fn assert_engines_identical(a: &StreamEngine, b: &StreamEngine) {
    assert_eq!(a.points_processed(), b.points_processed());
    let mut ca = a.micro_clusters();
    let mut cb = b.micro_clusters();
    ca.sort_by_key(|c| c.id);
    cb.sort_by_key(|c| c.id);
    assert_eq!(ca.len(), cb.len(), "cluster counts diverged");
    for (x, y) in ca.iter().zip(&cb) {
        assert_eq!(x.id, y.id);
        // Ecf implements PartialEq field-by-field on the raw f64 vectors:
        // this is a bit-for-bit comparison, not an epsilon one.
        assert_eq!(x.ecf, y.ecf, "ECF of cluster {} diverged", x.id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn restore_reproduces_engine_bit_for_bit(
        points in arb_stream(),
        shards in 1usize..4,
        snapshot_every in 1u64..32,
        n_micro in 4usize..16,
        tail in pvec((pvec(-50.0..50.0f64, DIMS), pvec(0.0..5.0f64, DIMS)), 0..40),
    ) {
        let path = case_path();
        let config = EngineConfig::new(UMicroConfig::new(n_micro, DIMS).unwrap())
            .with_shards(shards)
            .with_snapshot_every(snapshot_every);
        let e = EngineBuilder::from_config(config).build().unwrap();
        for p in &points {
            e.push(p.clone()).unwrap();
        }
        e.flush();
        e.checkpoint(&path).unwrap();

        let r = StreamEngine::restore(&path).unwrap();
        assert_engines_identical(&e, &r);

        // Horizon queries resolve identically from the replayed pyramid.
        let last = points.last().map_or(0, |p| p.timestamp());
        for h in [1, last / 2 + 1, last + 1] {
            let wa = e.horizon_clusters(h);
            let wb = r.horizon_clusters(h);
            match (wa, wb) {
                (Ok(wa), Ok(wb)) => prop_assert_eq!(&wa.clusters, &wb.clusters),
                (Err(_), Err(_)) => {}
                (wa, wb) => prop_assert!(false, "horizon {} diverged: {:?} vs {:?}", h, wa.is_ok(), wb.is_ok()),
            }
        }

        // Continuation: feed both engines the same tail and they stay
        // identical — the restored engine is indistinguishable from an
        // uninterrupted run.
        for (i, (values, errors)) in tail.iter().enumerate() {
            let p = UncertainPoint::new(values.clone(), errors.clone(), last + i as u64 + 1, None);
            e.push(p.clone()).unwrap();
            r.push(p).unwrap();
        }
        e.flush();
        r.flush();
        assert_engines_identical(&e, &r);

        e.shutdown();
        r.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restored_report_preserves_counters(
        points in arb_stream(),
        shards in 1usize..4,
    ) {
        let path = case_path();
        let config = EngineConfig::new(UMicroConfig::new(8, DIMS).unwrap())
            .with_shards(shards)
            .with_snapshot_every(8);
        let e = EngineBuilder::from_config(config).build().unwrap();
        for p in &points {
            e.push(p.clone()).unwrap();
        }
        e.flush();
        e.checkpoint(&path).unwrap();
        let ra = e.stats();

        let r = StreamEngine::restore(&path).unwrap();
        let rb = r.stats();
        prop_assert_eq!(ra.points_processed, rb.points_processed);
        prop_assert_eq!(ra.live_clusters, rb.live_clusters);
        prop_assert_eq!(ra.clusters_created, rb.clusters_created);
        prop_assert_eq!(ra.clusters_evicted, rb.clusters_evicted);
        prop_assert_eq!(ra.last_tick, rb.last_tick);
        prop_assert_eq!(ra.merges, rb.merges);
        let pa: Vec<u64> = ra.per_shard.iter().map(|s| s.processed).collect();
        let pb: Vec<u64> = rb.per_shard.iter().map(|s| s.processed).collect();
        prop_assert_eq!(pa, pb);

        e.shutdown();
        r.shutdown();
        let _ = std::fs::remove_file(&path);
    }
}
