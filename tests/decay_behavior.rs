//! Integration tests for the time-decayed variant on evolving streams.

use rand::rngs::StdRng;
use rand::SeedableRng;
use umicro::{DecayedUMicro, UMicro, UMicroConfig};
use ustream_common::point::sq_euclidean;
use ustream_common::{AdditiveFeature, UncertainPoint};
use ustream_synth::{NoisyStream, SynDriftConfig};

fn config(n: usize, d: usize) -> UMicroConfig {
    UMicroConfig::new(n, d).expect("valid config")
}

/// Weighted mean distance of micro-centroids to the nearest truth centre.
fn tracking_error(clusters: &[umicro::MicroCluster], truth: &[Vec<f64>]) -> f64 {
    let mut acc = 0.0;
    let mut w = 0.0;
    for c in clusters {
        if c.ecf.weight() <= 1.0 {
            continue;
        }
        let d2 = truth
            .iter()
            .map(|t| sq_euclidean(&c.ecf.centroid(), t))
            .fold(f64::INFINITY, f64::min);
        acc += c.ecf.weight() * d2.sqrt();
        w += c.ecf.weight();
    }
    acc / w.max(1e-12)
}

#[test]
fn decay_tracks_fast_drift_better_than_no_decay() {
    let mut gen_cfg = SynDriftConfig::paper();
    gen_cfg.dims = 6;
    gen_cfg.n_clusters = 5;
    gen_cfg.len = 15_000;
    gen_cfg.epsilon = 0.1;
    gen_cfg.drift_interval = 20;

    // Learn where clusters end up.
    let mut probe = gen_cfg.clone().build(31);
    for _ in probe.by_ref() {}
    let truth = probe.centroids().to_vec();

    let run = |half_life: Option<f64>| -> f64 {
        let stream = NoisyStream::new(gen_cfg.clone().build(31), 0.5, StdRng::seed_from_u64(32));
        match half_life {
            None => {
                let mut alg = UMicro::new(config(40, 6));
                for p in stream {
                    alg.insert(&p);
                }
                tracking_error(alg.micro_clusters(), &truth)
            }
            Some(hl) => {
                let mut alg = DecayedUMicro::with_half_life(config(40, 6), hl);
                let mut last = 0;
                for p in stream {
                    last = p.timestamp();
                    alg.insert(&p);
                }
                alg.synchronize(last);
                tracking_error(alg.micro_clusters(), &truth)
            }
        }
    };

    let plain = run(None);
    let decayed = run(Some(800.0));
    // Micro-centroid tracking is noisy, so only require that decay does not
    // hurt materially; the decisive semantic test is the weight-forgetting
    // check below.
    assert!(
        decayed < plain + 0.05,
        "decayed tracking error {decayed:.4} much worse than undecayed {plain:.4}"
    );
}

#[test]
fn decay_forgets_stale_regions() {
    // Phase 1 fills region A, phase 2 fills a distant region B. Without
    // decay the final state weights A and B equally; with decay, A's
    // residual weight must be a small fraction of B's.
    let phase = 2_000u64;
    let region_weight = |alg_clusters: &[umicro::MicroCluster], lo: f64, hi: f64| -> f64 {
        alg_clusters
            .iter()
            .filter(|c| {
                let x = c.ecf.centroid()[0];
                x >= lo && x < hi
            })
            .map(|c| c.ecf.weight())
            .sum()
    };
    let points: Vec<UncertainPoint> = (1..=2 * phase)
        .map(|t| {
            let x = if t <= phase { 0.0 } else { 100.0 };
            let jitter = (t % 7) as f64 * 0.1;
            UncertainPoint::new(vec![x + jitter], vec![0.3], t, None)
        })
        .collect();

    let mut plain = UMicro::new(config(8, 1));
    for p in &points {
        plain.insert(p);
    }
    let plain_a = region_weight(plain.micro_clusters(), -10.0, 50.0);
    let plain_b = region_weight(plain.micro_clusters(), 50.0, 150.0);
    assert!(
        (plain_a - plain_b).abs() / plain_b < 0.1,
        "undecayed phases should weigh equally: A={plain_a}, B={plain_b}"
    );

    let mut decayed = DecayedUMicro::with_half_life(config(8, 1), phase as f64 / 8.0);
    for p in &points {
        decayed.insert(p);
    }
    decayed.synchronize(2 * phase);
    let dec_a = region_weight(decayed.micro_clusters(), -10.0, 50.0);
    let dec_b = region_weight(decayed.micro_clusters(), 50.0, 150.0);
    assert!(
        dec_a < 0.05 * dec_b,
        "decay should forget the stale region: A={dec_a:.3}, B={dec_b:.3}"
    );
}

#[test]
fn decayed_weights_sum_to_geometric_series() {
    // n identical points, one per tick: after synchronising at tick n, the
    // total weight must equal sum_{k=1..n} 2^(-lambda (n - k)).
    let n = 200u64;
    let lambda = 0.02;
    let mut alg = DecayedUMicro::with_lambda(config(1, 1), lambda);
    for t in 1..=n {
        alg.insert(&UncertainPoint::new(vec![0.0], vec![0.5], t, None));
    }
    alg.synchronize(n);
    let got: f64 = alg.micro_clusters().iter().map(|c| c.ecf.weight()).sum();
    let want: f64 = (1..=n).map(|k| (-(lambda * (n - k) as f64)).exp2()).sum();
    assert!(
        (got - want).abs() < 1e-6,
        "decayed weight {got} vs analytic {want}"
    );
}

#[test]
fn lazy_and_eager_decay_agree() {
    // Inserting with lazy decay must equal maintaining the weights eagerly:
    // process the same points, but synchronise after every insertion in the
    // "eager" run.
    let points: Vec<UncertainPoint> = (1..=100u64)
        .map(|t| {
            let x = if t % 2 == 0 { 0.0 } else { 0.4 };
            UncertainPoint::new(vec![x], vec![0.5], t, None)
        })
        .collect();

    let mut lazy = DecayedUMicro::with_half_life(config(2, 1), 50.0);
    for p in &points {
        lazy.insert(p);
    }
    lazy.synchronize(100);

    let mut eager = DecayedUMicro::with_half_life(config(2, 1), 50.0);
    for p in &points {
        eager.insert(p);
        eager.synchronize(p.timestamp());
    }
    eager.synchronize(100);

    assert_eq!(lazy.micro_clusters().len(), eager.micro_clusters().len());
    for (a, b) in lazy.micro_clusters().iter().zip(eager.micro_clusters()) {
        assert_eq!(a.id, b.id);
        assert!(
            (a.ecf.weight() - b.ecf.weight()).abs() < 1e-9,
            "cluster {}: lazy {} vs eager {}",
            a.id,
            a.ecf.weight(),
            b.ecf.weight()
        );
        assert!((a.ecf.cf1()[0] - b.ecf.cf1()[0]).abs() < 1e-9);
        assert!((a.ecf.cf2()[0] - b.ecf.cf2()[0]).abs() < 1e-9);
    }
}

#[test]
fn half_life_controls_forgetting_rate() {
    // After the same gap, a shorter half-life leaves strictly less weight.
    let weights: Vec<f64> = [20.0, 100.0, 1_000.0]
        .iter()
        .map(|&hl| {
            let mut alg = DecayedUMicro::with_half_life(config(1, 1), hl);
            alg.insert(&UncertainPoint::new(vec![0.0], vec![0.3], 0, None));
            alg.synchronize(200);
            alg.micro_clusters()
                .first()
                .map(|c| c.ecf.weight())
                .unwrap_or(0.0)
        })
        .collect();
    assert!(weights[0] < weights[1] && weights[1] < weights[2]);
}
