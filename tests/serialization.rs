//! Serialization integration: feature vectors, snapshots and whole-run
//! state survive a disk round trip and remain operational.

use rand::rngs::StdRng;
use rand::SeedableRng;
use umicro::{Ecf, UMicro, UMicroConfig};
use ustream_common::{DataStream, UncertainPoint};
use ustream_snapshot::persist::{read_snapshots, write_snapshots};
use ustream_snapshot::{ClusterSetSnapshot, PyramidConfig, SnapshotStore};
use ustream_synth::{NoisyStream, SynDriftConfig};

#[test]
fn ecf_serde_round_trip() {
    let mut ecf = Ecf::empty(3);
    for i in 0..10u64 {
        ecf.insert(&UncertainPoint::new(
            vec![i as f64, -(i as f64), 0.5],
            vec![0.1, 0.2, 0.3],
            i,
            None,
        ));
    }
    let json = serde_json::to_string(&ecf).unwrap();
    let back: Ecf = serde_json::from_str(&json).unwrap();
    assert_eq!(back, ecf);
    assert_eq!(back.uncertain_radius(), ecf.uncertain_radius());
}

#[test]
fn cfvector_serde_round_trip() {
    let mut cf = clustream::CfVector::empty(2);
    for i in 0..7u64 {
        cf.insert(&UncertainPoint::certain(vec![i as f64, 1.0], i, None));
    }
    let json = serde_json::to_string(&cf).unwrap();
    let back: clustream::CfVector = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cf);
    assert_eq!(back.relevance_stamp(3), cf.relevance_stamp(3));
}

#[test]
fn umicro_checkpoint_restore_via_disk() {
    // Run half a stream, persist the snapshot store to bytes, "restart" by
    // reading it back and restoring the algorithm from the latest snapshot,
    // then finish the stream. The restored run must stay sane and keep the
    // pyramidal store compatible (ids preserved).
    let mut gen = SynDriftConfig::small_test();
    gen.len = 4_000;
    gen.max_radius = 0.1;
    // Mild noise relative to cluster radii keeps churn low, so the
    // reconstructed window retains most of its points.
    let stream = NoisyStream::new(gen.build(5), 0.1, StdRng::seed_from_u64(6));
    let dims = stream.dims();
    let points: Vec<UncertainPoint> = stream.collect();

    let cfg = UMicroConfig::new(30, dims).unwrap();
    let pyramid = PyramidConfig::new(2, 6).unwrap();
    let mut alg = UMicro::new(cfg.clone());
    let mut store: SnapshotStore<ClusterSetSnapshot<Ecf>> = SnapshotStore::new(pyramid);
    for p in &points[..2_000] {
        alg.insert(p);
        store.record(p.timestamp(), alg.snapshot());
    }

    // Persist + reload ("process restart").
    let mut bytes = Vec::new();
    write_snapshots(&store, &mut bytes).unwrap();
    let reloaded: SnapshotStore<ClusterSetSnapshot<Ecf>> =
        read_snapshots(pyramid, bytes.as_slice()).unwrap();
    let latest = reloaded.newest().unwrap();
    assert_eq!(latest.time, points[1_999].timestamp());

    let mut resumed = UMicro::restore(cfg, &latest.data);
    assert_eq!(resumed.micro_clusters().len(), alg.micro_clusters().len());

    let mut store2 = reloaded;
    for p in &points[2_000..] {
        resumed.insert(p);
        store2.record(p.timestamp(), resumed.snapshot());
    }
    assert_eq!(resumed.micro_clusters().len(), 30);

    // Horizon queries spanning the restart boundary still work: a window
    // reaching back into the pre-restart history resolves fine.
    let now = points.last().unwrap().timestamp();
    let base = store2.horizon_base(now, 3_000).unwrap();
    assert!(base.time <= now - 3_000);
    let current = store2.find_at_or_before(now).unwrap();
    let window = current.data.subtract_past(&base.data);
    // Contributions of clusters evicted *inside* the window are discarded
    // by the paper's subtraction semantics, so the count is a lower-bounded
    // approximation of the 3 000-point window, not an exact tally.
    assert!(
        window.total_count() > 1_000.0,
        "window count {}",
        window.total_count()
    );
    assert!(!window.is_empty());
}

#[test]
fn stream_csv_to_clustering_pipeline() {
    // generate → serialize → parse → cluster, entirely through public APIs.
    let mut gen = SynDriftConfig::small_test();
    gen.len = 2_000;
    let stream = NoisyStream::new(gen.build(8), 0.5, StdRng::seed_from_u64(9));
    let mut csv = Vec::new();
    let written = ustream_synth::io::write_stream(stream, &mut csv).unwrap();
    assert_eq!(written, 2_000);

    let parsed = ustream_synth::io::read_stream(csv.as_slice()).unwrap();
    let dims = parsed.dims();
    let mut alg = UMicro::new(UMicroConfig::new(20, dims).unwrap());
    let mut purity = ustream_eval::ClusterPurity::new();
    for p in parsed {
        let out = alg.insert(&p);
        if let Some(l) = p.label() {
            purity.observe(out.cluster_id, l);
        }
    }
    assert!(purity.purity().unwrap() > 0.85);
}
