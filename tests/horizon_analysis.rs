//! Integration tests for the pyramidal time frame + subtractive horizon
//! reconstruction across crates (umicro + ustream-snapshot + persistence).

use rand::rngs::StdRng;
use rand::SeedableRng;
use umicro::{Ecf, HorizonAnalyzer, UMicro, UMicroConfig};
use ustream_common::{AdditiveFeature, DataStream, UncertainPoint};
use ustream_snapshot::persist::{read_snapshots, write_snapshots};
use ustream_snapshot::{ClusterSetSnapshot, PyramidConfig, SnapshotStore};
use ustream_synth::{NoisyStream, SynDriftConfig};

fn drive(len: u64, switch: u64, pyramid: PyramidConfig) -> (UMicro, HorizonAnalyzer) {
    let mut alg = UMicro::new(UMicroConfig::new(12, 2).expect("valid config"));
    let mut hz = HorizonAnalyzer::new(pyramid);
    for t in 1..=len {
        let x = if t <= switch { 0.0 } else { 50.0 };
        let p = UncertainPoint::new(vec![x, -x], vec![0.4, 0.4], t, None);
        alg.insert(&p);
        hz.record(t, &alg);
    }
    (alg, hz)
}

#[test]
fn horizon_window_counts_are_bounded_by_eq7() {
    let pyramid = PyramidConfig::new(2, 5).unwrap();
    let (_, hz) = drive(2_000, 10_000, pyramid);
    let bound = pyramid.horizon_error_bound();
    for h in [8u64, 32, 128, 512, 1024] {
        let window = hz.horizon_clusters(2_000, h).unwrap();
        let count = window.total_count();
        assert!(count >= h as f64 - 1e-9, "h={h}: count {count}");
        assert!(
            count <= h as f64 * (1.0 + bound) + 1e-9,
            "h={h}: count {count} violates Eq. 7 bound"
        );
    }
}

#[test]
fn horizon_isolates_recent_regime() {
    let (_, hz) = drive(4_096, 3_584, PyramidConfig::new(2, 6).unwrap());
    // Last 512 ticks are entirely the x=50 regime.
    let window = hz.horizon_clusters(4_096, 512).unwrap();
    let total = window.total_count();
    let new_mass: f64 = window
        .clusters
        .values()
        .filter(|e| e.centroid()[0] > 25.0)
        .map(|e| e.count())
        .sum();
    assert!(
        new_mass / total > 0.95,
        "recent window should be the new regime: {new_mass}/{total}"
    );

    // A much longer horizon still sees both regimes.
    let long = hz.horizon_clusters(4_096, 2_048).unwrap();
    let old_mass: f64 = long
        .clusters
        .values()
        .filter(|e| e.centroid()[0] < 25.0)
        .map(|e| e.count())
        .sum();
    assert!(old_mass > 0.0, "long horizon lost the old regime");
}

#[test]
fn snapshot_store_survives_persistence_round_trip() {
    let pyramid = PyramidConfig::new(2, 4).unwrap();
    let (_, hz) = drive(1_024, 768, pyramid);

    let mut buf = Vec::new();
    write_snapshots(hz.store(), &mut buf).unwrap();
    let restored: SnapshotStore<ClusterSetSnapshot<Ecf>> =
        read_snapshots(pyramid, buf.as_slice()).unwrap();

    assert_eq!(restored.len(), hz.store().len());
    // Horizon queries on the restored store give identical windows.
    for h in [16u64, 64, 256] {
        let live = hz.horizon_clusters(1_024, h).unwrap();
        let base = restored.horizon_base(1_024, h).unwrap();
        let current = restored.find_at_or_before(1_024).unwrap();
        let replayed = current.data.subtract_past(&base.data);
        assert_eq!(live.len(), replayed.len(), "h={h}");
        assert!((live.total_count() - replayed.total_count()).abs() < 1e-9);
    }
}

#[test]
fn horizon_statistics_match_direct_suffix_summary() {
    // The subtractive property must reproduce, cluster by cluster, the
    // statistics a direct summary of the window's points would give —
    // for clusters that existed before and after the window boundary.
    let mut alg = UMicro::new(UMicroConfig::new(4, 1).unwrap());
    let mut hz = HorizonAnalyzer::new(PyramidConfig::new(2, 6).unwrap());
    // Two stable clusters; track every inserted point.
    let mut suffix_points: Vec<(u64, UncertainPoint)> = Vec::new();
    let total = 512u64;
    let h = 128u64;
    for t in 1..=total {
        let x = if t % 2 == 0 { 0.0 } else { 100.0 };
        let p = UncertainPoint::new(vec![x], vec![0.5], t, None);
        let out = alg.insert(&p);
        if t > total - h {
            suffix_points.push((out.cluster_id, p));
        }
        hz.record(t, &alg);
    }
    let window = hz.horizon_clusters(total, h).unwrap();
    // Because 512 and 384 are both stored exactly (powers of 2 times 128),
    // the window is exactly the last 128 points.
    let mut direct: std::collections::BTreeMap<u64, Ecf> = std::collections::BTreeMap::new();
    for (id, p) in &suffix_points {
        direct.entry(*id).or_insert_with(|| Ecf::empty(1)).insert(p);
    }
    assert_eq!(window.len(), direct.len());
    for (id, got) in &window.clusters {
        let want = &direct[id];
        assert!((got.weight() - want.weight()).abs() < 1e-9, "cluster {id}");
        assert!((got.cf1()[0] - want.cf1()[0]).abs() < 1e-6, "cluster {id}");
        assert!((got.cf2()[0] - want.cf2()[0]).abs() < 1e-6, "cluster {id}");
        assert!((got.ef2()[0] - want.ef2()[0]).abs() < 1e-6, "cluster {id}");
    }
}

#[test]
fn horizon_analysis_on_noisy_generator_stream() {
    // Full pipeline: SynDrift + noise + UMicro + pyramidal store.
    let mut cfg = SynDriftConfig::small_test();
    cfg.len = 2_000;
    let stream = NoisyStream::new(cfg.build(4), 0.5, StdRng::seed_from_u64(5));
    let dims = stream.dims();
    let mut alg = UMicro::new(UMicroConfig::new(30, dims).unwrap());
    let mut hz = HorizonAnalyzer::with_defaults();
    let mut t = 0;
    for p in stream {
        t = p.timestamp();
        alg.insert(&p);
        hz.record(t, &alg);
    }
    let mac = hz.macro_cluster_horizon(t, 256, 4, 8).unwrap();
    assert_eq!(mac.k(), 4);
    assert!(mac.weights.iter().sum::<f64>() > 0.0);
}
