//! Cross-crate property-based tests (proptest) on the core invariants:
//! ECF additivity/subtractivity, expected-distance algebra, decay laws,
//! pyramid guarantees, purity bounds and k-means behaviour.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use umicro::distance::{corrected_sq_distance, expected_sq_distance};
use umicro::Ecf;
use ustream_common::point::sq_euclidean;
use ustream_common::{
    AdditiveFeature, ClassLabel, DecayableFeature, DeterministicPoint, UncertainPoint,
};
use ustream_eval::ClusterPurity;
use ustream_kmeans::{kmeans, KMeansConfig};
use ustream_snapshot::{PyramidConfig, SnapshotStore};

const DIMS: usize = 3;

fn arb_point() -> impl Strategy<Value = UncertainPoint> {
    (
        pvec(-100.0..100.0f64, DIMS),
        pvec(0.0..10.0f64, DIMS),
        0u64..1000,
    )
        .prop_map(|(values, errors, t)| UncertainPoint::new(values, errors, t, None))
}

fn arb_points(min: usize, max: usize) -> impl Strategy<Value = Vec<UncertainPoint>> {
    pvec(arb_point(), min..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Property 2.1: merging per-point singletons in any order equals the
    /// bulk summary.
    #[test]
    fn ecf_additivity_order_invariant(points in arb_points(1, 12), split in 0usize..12) {
        let split = split.min(points.len());
        let mut bulk = Ecf::empty(DIMS);
        for p in &points {
            bulk.insert(p);
        }
        let mut left = Ecf::empty(DIMS);
        for p in &points[..split] {
            left.insert(p);
        }
        let mut right = Ecf::empty(DIMS);
        for p in &points[split..] {
            right.insert(p);
        }
        // Merge in the *opposite* order too.
        let mut merged_a = left.clone();
        merged_a.merge(&right);
        let mut merged_b = right.clone();
        merged_b.merge(&left);
        for j in 0..DIMS {
            prop_assert!((merged_a.cf1()[j] - bulk.cf1()[j]).abs() < 1e-6);
            prop_assert!((merged_a.cf2()[j] - bulk.cf2()[j]).abs() < 1e-6);
            prop_assert!((merged_a.ef2()[j] - bulk.ef2()[j]).abs() < 1e-6);
            prop_assert!((merged_b.cf1()[j] - merged_a.cf1()[j]).abs() < 1e-6);
        }
        prop_assert_eq!(merged_a.point_count(), bulk.point_count());
        prop_assert_eq!(merged_a.last_update(), bulk.last_update());
    }

    /// Subtracting a prefix summary leaves exactly the suffix summary.
    #[test]
    fn ecf_subtractivity_round_trip(points in arb_points(2, 12), split in 1usize..11) {
        let split = split.min(points.len() - 1);
        let mut all = Ecf::empty(DIMS);
        let mut prefix = Ecf::empty(DIMS);
        let mut suffix = Ecf::empty(DIMS);
        for (i, p) in points.iter().enumerate() {
            all.insert(p);
            if i < split {
                prefix.insert(p);
            } else {
                suffix.insert(p);
            }
        }
        let mut derived = all.clone();
        derived.subtract(&prefix);
        for j in 0..DIMS {
            prop_assert!((derived.cf1()[j] - suffix.cf1()[j]).abs() < 1e-5);
            prop_assert!((derived.cf2()[j] - suffix.cf2()[j]).abs() < 1e-4);
            prop_assert!((derived.ef2()[j] - suffix.ef2()[j]).abs() < 1e-5);
        }
        prop_assert!((derived.weight() - suffix.weight()).abs() < 1e-9);
    }

    /// Lemma 2.2 degenerates to the plain squared Euclidean distance when
    /// every error is zero.
    #[test]
    fn expected_distance_equals_euclidean_when_certain(
        cluster_vals in pvec(pvec(-50.0..50.0f64, DIMS), 1..8),
        point_vals in pvec(-50.0..50.0f64, DIMS),
    ) {
        let mut ecf = Ecf::empty(DIMS);
        for v in &cluster_vals {
            ecf.insert(&UncertainPoint::certain(v.clone(), 0, None));
        }
        let p = UncertainPoint::certain(point_vals, 0, None);
        let expected = expected_sq_distance(&p, &ecf);
        let direct = sq_euclidean(p.values(), &ecf.centroid());
        prop_assert!((expected - direct).abs() < 1e-6 * (1.0 + direct),
            "expected {expected} vs euclidean {direct}");
    }

    /// Expected distance is never below the corrected distance, and both
    /// are non-negative.
    #[test]
    fn distances_ordered_and_non_negative(points in arb_points(1, 8), probe in arb_point()) {
        let mut ecf = Ecf::empty(DIMS);
        for p in &points {
            ecf.insert(p);
        }
        let e = expected_sq_distance(&probe, &ecf);
        let c = corrected_sq_distance(&probe, &ecf);
        prop_assert!(e >= 0.0 && c >= 0.0);
        prop_assert!(e >= c - 1e-9, "expected {e} < corrected {c}");
    }

    /// Growing the error vector of the probe point never shrinks the
    /// expected distance.
    #[test]
    fn expected_distance_monotone_in_point_error(
        points in arb_points(1, 8),
        values in pvec(-50.0..50.0f64, DIMS),
        err in 0.0..5.0f64,
    ) {
        let mut ecf = Ecf::empty(DIMS);
        for p in &points {
            ecf.insert(p);
        }
        let lo = UncertainPoint::new(values.clone(), vec![err; DIMS], 0, None);
        let hi = UncertainPoint::new(values, vec![err + 1.0; DIMS], 0, None);
        prop_assert!(
            expected_sq_distance(&hi, &ecf) >= expected_sq_distance(&lo, &ecf) - 1e-9
        );
    }

    /// Uniform scaling (decay) preserves centroid and per-dim variance.
    #[test]
    fn decay_preserves_ratio_statistics(points in arb_points(2, 10), dt in 1u64..500) {
        let mut ecf = Ecf::empty(DIMS);
        for p in &points {
            ecf.insert(p);
        }
        let centroid_before = ecf.centroid();
        let var_before: Vec<f64> = (0..DIMS).map(|j| ecf.variance_dim(j)).collect();
        let w_before = ecf.weight();
        let last = ecf.last_decay();
        ecf.decay_to(last + dt, 0.01);
        let centroid_after = ecf.centroid();
        for j in 0..DIMS {
            prop_assert!((centroid_before[j] - centroid_after[j]).abs()
                < 1e-6 * (1.0 + centroid_before[j].abs()));
            prop_assert!((var_before[j] - ecf.variance_dim(j)).abs()
                < 1e-6 * (1.0 + var_before[j]));
        }
        prop_assert!(ecf.weight() < w_before);
        prop_assert!(ecf.weight() > 0.0);
    }

    /// Pyramid: Eq. 7's horizon guarantee holds for every geometry.
    #[test]
    fn pyramid_horizon_guarantee(
        alpha in 2u64..5,
        l in 1u32..5,
        len in 50u64..400,
        h_frac in 0.05..0.5f64,
    ) {
        let cfg = PyramidConfig::new(alpha, l).unwrap();
        let mut store = SnapshotStore::new(cfg);
        for t in 1..=len {
            store.record(t, t);
        }
        let h = ((len as f64 * h_frac) as u64).max(1);
        if let Ok(base) = store.horizon_base(len, h) {
            let h_eff = len - base.time;
            prop_assert!(h_eff >= h);
            let rel = (h_eff - h) as f64 / h as f64;
            prop_assert!(rel <= cfg.horizon_error_bound() + 1e-9,
                "alpha={alpha} l={l} h={h}: rel {rel}");
        }
    }

    /// Purity is always in (0, 1] and removing clusters never lowers the
    /// count below zero.
    #[test]
    fn purity_bounds(assignments in pvec((0u64..6, 0u32..4), 1..100)) {
        let mut p = ClusterPurity::new();
        for (cid, class) in &assignments {
            p.observe(*cid, ClassLabel(*class));
        }
        let score = p.purity().unwrap();
        prop_assert!(score > 0.0 && score <= 1.0);
        let weighted = p.weighted_purity().unwrap();
        prop_assert!(weighted > 0.0 && weighted <= 1.0);
        // Unweighted >= each cluster's worst case 1/classes.
        prop_assert!(score >= 0.25 - 1e-12);
    }

    /// k-means: final SSQ never exceeds the single-cluster SSQ, and every
    /// assignment indexes a real centroid.
    #[test]
    fn kmeans_sane(raw in pvec(pvec(-10.0..10.0f64, 2), 2..40), k in 1usize..6) {
        let points: Vec<DeterministicPoint> =
            raw.into_iter().map(DeterministicPoint::new).collect();
        let res_k = kmeans(&points, &KMeansConfig::new(k, 1));
        let res_1 = kmeans(&points, &KMeansConfig::new(1, 1));
        prop_assert!(res_k.ssq <= res_1.ssq + 1e-6);
        for &a in &res_k.assignments {
            prop_assert!(a < res_k.centroids.len());
        }
    }
}
