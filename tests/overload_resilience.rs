//! Overload-resilience integration suite: memory-governed snapshots under a
//! long run, quarantine accounting under producer/drainer races, and
//! backpressure conservation under multi-producer contention.
//!
//! Everything here runs without the `failpoints` feature — overload is
//! produced the honest way, by outrunning the consumers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use umicro::UMicroConfig;
use ustream_common::{UStreamError, UncertainPoint};
use ustream_engine::{
    BackpressurePolicy, EngineBuilder, EngineConfig, SnapshotBudget, ValidationPolicy,
};

fn pt(x: f64, y: f64, t: u64) -> UncertainPoint {
    UncertainPoint::new(vec![x, y], vec![0.3, 0.3], t, None)
}

/// Tiny deterministic generator (splitmix64) so the stress shapes are
/// reproducible run to run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn coord(&mut self) -> f64 {
        (self.next() % 2_000) as f64 / 100.0 - 10.0
    }
}

#[test]
fn snapshot_budget_holds_through_a_million_records() {
    let budget = SnapshotBudget::by_snapshots(48);
    let e = EngineBuilder::from_config(
        EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
            .with_shards(2)
            .with_snapshot_every(64)
            .with_snapshot_budget(budget),
    )
    .build()
    .unwrap();

    let mut rng = Rng(7);
    let batch = 1_000usize;
    let total = 1_000_000u64;
    let mut t = 0u64;
    let mut pushed = 0u64;
    while pushed < total {
        let points: Vec<UncertainPoint> = (0..batch)
            .map(|_| {
                t += 1;
                pt(rng.coord(), rng.coord(), t)
            })
            .collect();
        e.push_slice(&points).unwrap();
        pushed += batch as u64;
        if pushed.is_multiple_of(100_000) {
            e.flush();
            let stats = e.stats();
            assert!(
                stats.snapshots_retained <= 48,
                "budget breached at {pushed}: {} snapshots retained",
                stats.snapshots_retained
            );
            // Horizon queries keep answering while the budget evicts: one
            // snapshot cadence back is always resolvable (the store retains
            // far more than two snapshots, 64 ticks apart). Deeper horizons
            // may legitimately lose coverage to eviction — that loss is
            // what `horizon_error_bound` reports — so they are not
            // asserted here.
            assert!(e.horizon_clusters(64).is_ok());
        }
    }
    e.flush();

    let report = e.shutdown();
    assert_eq!(report.points_processed, total);
    assert!(report.snapshots_retained <= 48);
    assert!(
        report.snapshot_budget_evictions > 0,
        "a 1M-record run at cadence 64 must overflow a 48-snapshot budget"
    );
    // The engine reports the (possibly inflated) horizon-error bound the
    // eviction left in force; it must be a positive, finite factor.
    assert!(report.horizon_error_bound.is_finite());
    assert!(report.horizon_error_bound > 0.0);
    assert!(report.snapshot_bytes > 0);
}

#[test]
fn quarantine_counters_survive_concurrent_drain_under_full_ring() {
    let e = Arc::new(
        EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
                .with_shards(2)
                .with_validation(Some(ValidationPolicy::Quarantine))
                .with_quarantine_capacity(8), // tiny ring: constantly full
        )
        .build()
        .unwrap(),
    );

    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: u64 = 2_500;
    let done = Arc::new(AtomicBool::new(false));
    let drained_total = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let e = Arc::clone(&e);
                s.spawn(move || {
                    let mut rng = Rng(100 + p);
                    for i in 0..PER_PRODUCER {
                        let t = p * PER_PRODUCER + i + 1;
                        // Every third record arrives poisoned.
                        let x = if i % 3 == 0 { f64::NAN } else { rng.coord() };
                        e.push(pt(x, rng.coord(), t)).unwrap();
                    }
                })
            })
            .collect();
        // A drainer races the producers against the full ring.
        let e_drain = Arc::clone(&e);
        let done_flag = Arc::clone(&done);
        let drained = Arc::clone(&drained_total);
        let drainer = s.spawn(move || {
            while !done_flag.load(Ordering::Acquire) {
                let got = e_drain.drain_quarantine().len() as u64;
                drained.fetch_add(got, Ordering::Relaxed); // relaxed-ok: test-harness counter; thread::join supplies the final synchronisation
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        });
        for h in producers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        drainer.join().unwrap();
    });

    e.flush();
    // Whatever the racing drainer missed comes out in the final drain.
    let final_drain = e.drain_quarantine().len() as u64;
    let drained = drained_total.load(Ordering::Relaxed) + final_drain; // relaxed-ok: test-harness read; join/assert ordering is established by the harness
    let report = e.shutdown();

    let faulty = PRODUCERS * PER_PRODUCER.div_ceil(3);
    let clean = PRODUCERS * PER_PRODUCER - faulty;
    assert_eq!(report.points_quarantined, faulty);
    assert_eq!(report.points_processed, clean);
    // The drift invariant: every quarantined point is either still counted
    // as ring-overflow or was handed to exactly one drain call.
    assert_eq!(
        report.points_quarantined,
        report.quarantine_dropped + drained,
        "counter drift: {} quarantined vs {} dropped + {} drained",
        report.points_quarantined,
        report.quarantine_dropped,
        drained
    );
}

#[test]
fn drop_newest_conserves_every_push_under_contention() {
    let mut config = EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
        .with_backpressure(BackpressurePolicy::DropNewest)
        .with_snapshot_every(100_000);
    config.channel_capacity = 2;
    let e = Arc::new(EngineBuilder::from_config(config).build().unwrap());

    const PRODUCERS: u64 = 8;
    const PER_PRODUCER: u64 = 2_500;
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let e = Arc::clone(&e);
            s.spawn(move || {
                let mut rng = Rng(200 + p);
                for i in 0..PER_PRODUCER {
                    let t = p * PER_PRODUCER + i + 1;
                    e.push(pt(rng.coord(), rng.coord(), t)).unwrap();
                }
            });
        }
    });

    e.flush();
    let report = e.shutdown();
    assert_eq!(
        report.points_processed + report.backpressure_dropped,
        PRODUCERS * PER_PRODUCER,
        "every push is either clustered or counted as dropped"
    );
    assert!(
        report.backpressure_dropped > 0,
        "8 producers against a 2-slot channel must shed"
    );
}

#[test]
fn error_policy_conserves_every_push_under_contention() {
    let mut config = EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
        .with_backpressure(BackpressurePolicy::Error)
        .with_snapshot_every(100_000);
    config.channel_capacity = 2;
    let e = Arc::new(EngineBuilder::from_config(config).build().unwrap());

    const PRODUCERS: u64 = 8;
    const PER_PRODUCER: u64 = 2_500;
    let rejected = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let e = Arc::clone(&e);
            let rejected = Arc::clone(&rejected);
            s.spawn(move || {
                let mut rng = Rng(300 + p);
                for i in 0..PER_PRODUCER {
                    let t = p * PER_PRODUCER + i + 1;
                    match e.push(pt(rng.coord(), rng.coord(), t)) {
                        Ok(()) => {}
                        Err(UStreamError::Backpressure) => {
                            rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: test-harness counter; thread::join supplies the final synchronisation
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
    });

    e.flush();
    let report = e.shutdown();
    assert_eq!(
        report.points_processed + rejected.load(Ordering::Relaxed), // relaxed-ok: test-harness read; join/assert ordering is established by the harness
        PRODUCERS * PER_PRODUCER,
        "every push is either clustered or returned to the producer"
    );
}
