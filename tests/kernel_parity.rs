//! Property-based parity tests for the SoA distance kernel: the packed
//! kernel must rank the same nearest cluster and report the same distances
//! as the scalar `expected_sq_distance` path, within 1e-9 relative, across
//! random streams for UMicro, DecayedUMicro and CluStream — including after
//! budget-driven merges and retirements and after decay synchronisation
//! marks the kernel stale.

use clustream::{CluStream, CluStreamConfig};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use umicro::distance::expected_sq_distance;
use umicro::{DecayedUMicro, UMicro, UMicroConfig};
use ustream_common::UncertainPoint;

const DIMS: usize = 3;
const REL_TOL: f64 = 1e-9;

fn arb_point() -> impl Strategy<Value = UncertainPoint> {
    (
        pvec(-100.0..100.0f64, DIMS),
        pvec(0.0..10.0f64, DIMS),
        1u64..1000,
    )
        .prop_map(|(values, errors, t)| UncertainPoint::new(values, errors, t, None))
}

fn arb_points(min: usize, max: usize) -> impl Strategy<Value = Vec<UncertainPoint>> {
    pvec(arb_point(), min..max)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// UMicro: after a random stream through a tight budget (forcing
    /// retirements), every kernel distance and the kernel-ranked nearest
    /// cluster agree with the scalar Lemma 2.2 evaluation.
    #[test]
    fn umicro_kernel_matches_scalar(
        stream in arb_points(4, 40),
        probes in arb_points(1, 6),
    ) {
        let mut alg = UMicro::new(UMicroConfig::new(4, DIMS).unwrap());
        for p in &stream {
            alg.insert(p);
        }
        let kernel = alg.kernel_synced().clone();
        let clusters = alg.micro_clusters();
        prop_assert_eq!(kernel.len(), clusters.len());
        for probe in &probes {
            let scalar: Vec<f64> = clusters
                .iter()
                .map(|c| expected_sq_distance(probe, &c.ecf))
                .collect();
            for (i, &s) in scalar.iter().enumerate() {
                let k = kernel.expected_sq_distance(probe.values(), probe.errors(), i);
                prop_assert!(close(k, s), "cluster {i}: kernel {k} vs scalar {s}");
            }
            let (idx, kd) = kernel
                .nearest_expected(probe.values(), probe.errors())
                .expect("non-empty cluster set");
            let min_scalar = scalar.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(close(kd, min_scalar),
                "nearest distance: kernel {kd} vs scalar min {min_scalar}");
            prop_assert!(close(scalar[idx], min_scalar),
                "kernel picked cluster {idx} at scalar {} but min is {min_scalar}",
                scalar[idx]);
        }
    }

    /// Disabling the kernel and re-enabling it must leave the insertion
    /// trajectory identical to an always-scalar run: the kernel path is an
    /// implementation detail, not a semantic switch.
    #[test]
    fn umicro_trajectory_independent_of_kernel(stream in arb_points(4, 40)) {
        let mut with_kernel = UMicro::new(UMicroConfig::new(4, DIMS).unwrap());
        let mut scalar_only = UMicro::new(UMicroConfig::new(4, DIMS).unwrap());
        scalar_only.set_kernel_enabled(false);
        for p in &stream {
            let a = with_kernel.insert(p);
            let b = scalar_only.insert(p);
            prop_assert_eq!(a, b, "diverged at t={}", p.timestamp());
        }
        prop_assert_eq!(with_kernel.micro_clusters().len(), scalar_only.micro_clusters().len());
        for (x, y) in with_kernel.micro_clusters().iter().zip(scalar_only.micro_clusters()) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.ecf.cf1(), y.ecf.cf1());
        }
    }

    /// Batched insertion must follow the exact same trajectory as the
    /// per-point loop.
    #[test]
    fn umicro_batch_matches_loop(stream in arb_points(4, 40)) {
        let mut looped = UMicro::new(UMicroConfig::new(4, DIMS).unwrap());
        let mut batched = UMicro::new(UMicroConfig::new(4, DIMS).unwrap());
        let loop_out: Vec<_> = stream.iter().map(|p| looped.insert(p)).collect();
        let mut batch_out = Vec::new();
        batched.insert_batch(&stream, &mut batch_out);
        prop_assert_eq!(loop_out, batch_out);
        prop_assert_eq!(looped.micro_clusters().len(), batched.micro_clusters().len());
    }

    /// DecayedUMicro: a mid-stream `synchronize` rescales every cluster and
    /// marks the kernel stale; after the rebuild the kernel must still match
    /// the scalar distances over the decayed statistics.
    #[test]
    fn decayed_kernel_matches_scalar_after_synchronize(
        head in arb_points(3, 20),
        tail in arb_points(3, 20),
        probes in arb_points(1, 5),
    ) {
        let mut alg = DecayedUMicro::with_half_life(UMicroConfig::new(4, DIMS).unwrap(), 300.0);
        for p in &head {
            alg.insert(p);
        }
        let mid = head.iter().map(|p| p.timestamp()).max().unwrap_or(0) + 50;
        alg.synchronize(mid);
        for p in &tail {
            alg.insert(p);
        }
        let kernel = alg.kernel_synced().clone();
        let clusters = alg.micro_clusters();
        prop_assert_eq!(kernel.len(), clusters.len());
        for probe in &probes {
            for (i, c) in clusters.iter().enumerate() {
                let s = expected_sq_distance(probe, &c.ecf);
                let k = kernel.expected_sq_distance(probe.values(), probe.errors(), i);
                prop_assert!(close(k, s), "cluster {i}: kernel {k} vs scalar {s}");
            }
            if let Some((idx, kd)) = kernel.nearest_expected(probe.values(), probe.errors()) {
                let scalar: Vec<f64> = clusters
                    .iter()
                    .map(|c| expected_sq_distance(probe, &c.ecf))
                    .collect();
                let min_scalar = scalar.iter().cloned().fold(f64::INFINITY, f64::min);
                prop_assert!(close(kd, min_scalar));
                prop_assert!(close(scalar[idx], min_scalar));
            }
        }
    }

    /// CluStream: the deterministic geometry (zero noise rows) must agree
    /// with the scalar centroid distance after budget-driven merges and
    /// deletions.
    #[test]
    fn clustream_kernel_matches_scalar(
        stream in arb_points(6, 50),
        probes in arb_points(1, 6),
    ) {
        let mut alg = CluStream::new(CluStreamConfig::new(4, DIMS).unwrap());
        for p in &stream {
            alg.insert(p);
        }
        let kernel = alg.kernel_synced().clone();
        let clusters = alg.micro_clusters();
        prop_assert_eq!(kernel.len(), clusters.len());
        for probe in &probes {
            let scalar: Vec<f64> = clusters
                .iter()
                .map(|c| c.cf.sq_distance_to(probe.values()))
                .collect();
            for (i, &s) in scalar.iter().enumerate() {
                // Deterministic rows publish zero noise, so the expected
                // distance with zero probe error is the plain Euclidean one.
                let k = kernel.expected_sq_distance(probe.values(), &[0.0; DIMS], i);
                prop_assert!(close(k, s), "cluster {i}: kernel {k} vs scalar {s}");
            }
            let (idx, kd) = kernel
                .nearest_deterministic(probe.values())
                .expect("non-empty cluster set");
            let min_scalar = scalar.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(close(kd, min_scalar),
                "nearest distance: kernel {kd} vs scalar min {min_scalar}");
            prop_assert!(close(scalar[idx], min_scalar));
        }
    }

    /// CluStream batched insertion follows the per-point trajectory exactly.
    #[test]
    fn clustream_batch_matches_loop(stream in arb_points(6, 50)) {
        let mut looped = CluStream::new(CluStreamConfig::new(4, DIMS).unwrap());
        let mut batched = CluStream::new(CluStreamConfig::new(4, DIMS).unwrap());
        let loop_out: Vec<_> = stream.iter().map(|p| looped.insert(p)).collect();
        let mut batch_out = Vec::new();
        batched.insert_batch(&stream, &mut batch_out);
        prop_assert_eq!(loop_out, batch_out);
        prop_assert_eq!(looped.micro_clusters().len(), batched.micro_clusters().len());
    }
}
