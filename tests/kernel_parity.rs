//! Property-based parity tests for the SoA distance kernel: the packed
//! kernel must rank the same nearest cluster and report the same distances
//! as the scalar `expected_sq_distance` path, within 1e-9 relative, across
//! random streams for UMicro, DecayedUMicro and CluStream — including after
//! budget-driven merges and retirements and after decay synchronisation
//! marks the kernel stale.

use clustream::{CluStream, CluStreamConfig};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use umicro::distance::expected_sq_distance;
use umicro::kernel::simd::{self, Backend};
use umicro::{DecayedUMicro, UMicro, UMicroConfig};
use ustream_common::UncertainPoint;

const DIMS: usize = 3;
const REL_TOL: f64 = 1e-9;

/// Every backend this binary can exercise on the host CPU (always at
/// least Scalar and Portable).
fn compiled_available() -> Vec<Backend> {
    Backend::compiled()
        .iter()
        .copied()
        .filter(|b| b.available())
        .collect()
}

/// Awkward dimensionalities around every backend's lane width: 1, 3,
/// 4 ± 1, 8 ± 1, and a long tail.
const AWKWARD_DIMS: [usize; 8] = [1, 3, 4, 5, 7, 8, 9, 17];

fn arb_awkward_dims() -> impl Strategy<Value = usize> {
    (0usize..AWKWARD_DIMS.len()).prop_map(|i| AWKWARD_DIMS[i])
}

fn arb_point() -> impl Strategy<Value = UncertainPoint> {
    (
        pvec(-100.0..100.0f64, DIMS),
        pvec(0.0..10.0f64, DIMS),
        1u64..1000,
    )
        .prop_map(|(values, errors, t)| UncertainPoint::new(values, errors, t, None))
}

fn arb_points(min: usize, max: usize) -> impl Strategy<Value = Vec<UncertainPoint>> {
    pvec(arb_point(), min..max)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

/// splitmix64 → uniform f64 in `[0, 1)`: deterministic matrix data from a
/// proptest-drawn seed without deep tuple-strategy nesting.
fn unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn fill(state: &mut u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| lo + (hi - lo) * unit(state)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// UMicro: after a random stream through a tight budget (forcing
    /// retirements), every kernel distance and the kernel-ranked nearest
    /// cluster agree with the scalar Lemma 2.2 evaluation.
    #[test]
    fn umicro_kernel_matches_scalar(
        stream in arb_points(4, 40),
        probes in arb_points(1, 6),
    ) {
        let mut alg = UMicro::new(UMicroConfig::new(4, DIMS).unwrap());
        for p in &stream {
            alg.insert(p);
        }
        let kernel = alg.kernel_synced().clone();
        let clusters = alg.micro_clusters();
        prop_assert_eq!(kernel.len(), clusters.len());
        for probe in &probes {
            let scalar: Vec<f64> = clusters
                .iter()
                .map(|c| expected_sq_distance(probe, &c.ecf))
                .collect();
            for (i, &s) in scalar.iter().enumerate() {
                let k = kernel.expected_sq_distance(probe.values(), probe.errors(), i);
                prop_assert!(close(k, s), "cluster {i}: kernel {k} vs scalar {s}");
            }
            let (idx, kd) = kernel
                .nearest_expected(probe.values(), probe.errors())
                .expect("non-empty cluster set");
            let min_scalar = scalar.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(close(kd, min_scalar),
                "nearest distance: kernel {kd} vs scalar min {min_scalar}");
            prop_assert!(close(scalar[idx], min_scalar),
                "kernel picked cluster {idx} at scalar {} but min is {min_scalar}",
                scalar[idx]);
        }
    }

    /// Disabling the kernel and re-enabling it must leave the insertion
    /// trajectory identical to an always-scalar run: the kernel path is an
    /// implementation detail, not a semantic switch.
    #[test]
    fn umicro_trajectory_independent_of_kernel(stream in arb_points(4, 40)) {
        let mut with_kernel = UMicro::new(UMicroConfig::new(4, DIMS).unwrap());
        let mut scalar_only = UMicro::new(UMicroConfig::new(4, DIMS).unwrap());
        scalar_only.set_kernel_enabled(false);
        for p in &stream {
            let a = with_kernel.insert(p);
            let b = scalar_only.insert(p);
            prop_assert_eq!(a, b, "diverged at t={}", p.timestamp());
        }
        prop_assert_eq!(with_kernel.micro_clusters().len(), scalar_only.micro_clusters().len());
        for (x, y) in with_kernel.micro_clusters().iter().zip(scalar_only.micro_clusters()) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.ecf.cf1(), y.ecf.cf1());
        }
    }

    /// Batched insertion must follow the exact same trajectory as the
    /// per-point loop.
    #[test]
    fn umicro_batch_matches_loop(stream in arb_points(4, 40)) {
        let mut looped = UMicro::new(UMicroConfig::new(4, DIMS).unwrap());
        let mut batched = UMicro::new(UMicroConfig::new(4, DIMS).unwrap());
        let loop_out: Vec<_> = stream.iter().map(|p| looped.insert(p)).collect();
        let mut batch_out = Vec::new();
        batched.insert_batch(&stream, &mut batch_out);
        prop_assert_eq!(loop_out, batch_out);
        prop_assert_eq!(looped.micro_clusters().len(), batched.micro_clusters().len());
    }

    /// DecayedUMicro: a mid-stream `synchronize` rescales every cluster and
    /// marks the kernel stale; after the rebuild the kernel must still match
    /// the scalar distances over the decayed statistics.
    #[test]
    fn decayed_kernel_matches_scalar_after_synchronize(
        head in arb_points(3, 20),
        tail in arb_points(3, 20),
        probes in arb_points(1, 5),
    ) {
        let mut alg = DecayedUMicro::with_half_life(UMicroConfig::new(4, DIMS).unwrap(), 300.0);
        for p in &head {
            alg.insert(p);
        }
        let mid = head.iter().map(|p| p.timestamp()).max().unwrap_or(0) + 50;
        alg.synchronize(mid);
        for p in &tail {
            alg.insert(p);
        }
        let kernel = alg.kernel_synced().clone();
        let clusters = alg.micro_clusters();
        prop_assert_eq!(kernel.len(), clusters.len());
        for probe in &probes {
            for (i, c) in clusters.iter().enumerate() {
                let s = expected_sq_distance(probe, &c.ecf);
                let k = kernel.expected_sq_distance(probe.values(), probe.errors(), i);
                prop_assert!(close(k, s), "cluster {i}: kernel {k} vs scalar {s}");
            }
            if let Some((idx, kd)) = kernel.nearest_expected(probe.values(), probe.errors()) {
                let scalar: Vec<f64> = clusters
                    .iter()
                    .map(|c| expected_sq_distance(probe, &c.ecf))
                    .collect();
                let min_scalar = scalar.iter().cloned().fold(f64::INFINITY, f64::min);
                prop_assert!(close(kd, min_scalar));
                prop_assert!(close(scalar[idx], min_scalar));
            }
        }
    }

    /// CluStream: the deterministic geometry (zero noise rows) must agree
    /// with the scalar centroid distance after budget-driven merges and
    /// deletions.
    #[test]
    fn clustream_kernel_matches_scalar(
        stream in arb_points(6, 50),
        probes in arb_points(1, 6),
    ) {
        let mut alg = CluStream::new(CluStreamConfig::new(4, DIMS).unwrap());
        for p in &stream {
            alg.insert(p);
        }
        let kernel = alg.kernel_synced().clone();
        let clusters = alg.micro_clusters();
        prop_assert_eq!(kernel.len(), clusters.len());
        for probe in &probes {
            let scalar: Vec<f64> = clusters
                .iter()
                .map(|c| c.cf.sq_distance_to(probe.values()))
                .collect();
            for (i, &s) in scalar.iter().enumerate() {
                // Deterministic rows publish zero noise, so the expected
                // distance with zero probe error is the plain Euclidean one.
                let k = kernel.expected_sq_distance(probe.values(), &[0.0; DIMS], i);
                prop_assert!(close(k, s), "cluster {i}: kernel {k} vs scalar {s}");
            }
            let (idx, kd) = kernel
                .nearest_deterministic(probe.values())
                .expect("non-empty cluster set");
            let min_scalar = scalar.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(close(kd, min_scalar),
                "nearest distance: kernel {kd} vs scalar min {min_scalar}");
            prop_assert!(close(scalar[idx], min_scalar));
        }
    }

    /// Every compiled-and-available SIMD backend produces the *bitwise*
    /// identical dot product as the canonical scalar reduction on lengths
    /// straddling every lane width (tails of 1–3 elements included).
    #[test]
    fn dot_bitwise_identical_across_backends(n in 1usize..20, seed in 0u64..u64::MAX) {
        let mut s = seed;
        let a = fill(&mut s, n, -1e6, 1e6);
        let b = fill(&mut s, n, -1e6, 1e6);
        let want = simd::dot_with(Backend::Scalar, &a, &b).to_bits();
        for backend in compiled_available() {
            let got = simd::dot_with(backend, &a, &b).to_bits();
            prop_assert_eq!(got, want, "backend {}", backend.name());
        }
    }

    /// Every backend agrees bitwise with scalar on both halves of the
    /// fused sweep — winner indices AND winner scores — over awkward
    /// dimensionalities, with every third similarity coefficient forced
    /// infinite (the dead-dimension sentinel the sweep must skip).
    #[test]
    fn rank_bitwise_identical_across_backends(
        dims in arb_awkward_dims(),
        rows in 1usize..9,
        seed in 0u64..u64::MAX,
    ) {
        let mut s = seed;
        let centroids = fill(&mut s, dims * rows, -100.0, 100.0);
        let noise = fill(&mut s, dims * rows, 0.0, 10.0);
        let sm = fill(&mut s, rows, -50.0, 5000.0);
        let x = fill(&mut s, dims, -100.0, 100.0);
        let errs = fill(&mut s, dims, 0.1, 10.0);
        let inv: Vec<f64> = fill(&mut s, dims, 0.5, 50.0).iter().enumerate()
            .map(|(j, &v)| if j % 3 == 2 { f64::INFINITY } else { v })
            .collect();
        let want_min = simd::rank_min_score_with(Backend::Scalar, &centroids, &sm, dims, &x);
        let want_fused =
            simd::rank_fused_with(Backend::Scalar, &centroids, &noise, dims, &x, &errs, &inv);
        for backend in compiled_available() {
            let got = simd::rank_min_score_with(backend, &centroids, &sm, dims, &x);
            prop_assert_eq!(got.0, want_min.0, "rank_min idx on {}", backend.name());
            prop_assert_eq!(got.1.to_bits(), want_min.1.to_bits(),
                "rank_min score on {}", backend.name());
            let gf =
                simd::rank_fused_with(backend, &centroids, &noise, dims, &x, &errs, &inv);
            prop_assert_eq!(gf.dist_idx, want_fused.dist_idx, "dist idx on {}", backend.name());
            prop_assert_eq!(gf.dist_score.to_bits(), want_fused.dist_score.to_bits(),
                "dist score on {}", backend.name());
            prop_assert_eq!(gf.sim_idx, want_fused.sim_idx, "sim idx on {}", backend.name());
            prop_assert_eq!(gf.sim.to_bits(), want_fused.sim.to_bits(),
                "sim on {}", backend.name());
        }
    }

    /// NaN-poisoned centroid rows must never win the ranking, and every
    /// backend must agree bitwise on what does win despite the poison.
    #[test]
    fn nan_rows_never_win_and_backends_agree(
        dims in arb_awkward_dims(),
        rows in 2usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let mut s = seed;
        let mut centroids = fill(&mut s, dims * rows, -100.0, 100.0);
        let noise = fill(&mut s, dims * rows, 0.0, 10.0);
        let sm = fill(&mut s, rows, -50.0, 5000.0);
        let x = fill(&mut s, dims, -100.0, 100.0);
        let errs = fill(&mut s, dims, 0.1, 10.0);
        let inv = fill(&mut s, dims, 0.5, 50.0);
        let poison = (seed as usize) % rows;
        for v in &mut centroids[poison * dims..(poison + 1) * dims] {
            *v = f64::NAN;
        }
        let want = simd::rank_min_score_with(Backend::Scalar, &centroids, &sm, dims, &x);
        // rows >= 2, so some finite row exists and the NaN row cannot win.
        prop_assert!(rows < 2 || want.0 != poison || want.1.is_finite());
        let want_fused =
            simd::rank_fused_with(Backend::Scalar, &centroids, &noise, dims, &x, &errs, &inv);
        for backend in compiled_available() {
            let got = simd::rank_min_score_with(backend, &centroids, &sm, dims, &x);
            prop_assert_eq!(got.0, want.0, "rank_min idx on {}", backend.name());
            prop_assert_eq!(got.1.to_bits(), want.1.to_bits(),
                "rank_min score on {}", backend.name());
            let gf =
                simd::rank_fused_with(backend, &centroids, &noise, dims, &x, &errs, &inv);
            prop_assert_eq!(gf.dist_idx, want_fused.dist_idx, "dist idx on {}", backend.name());
            prop_assert_eq!(gf.sim_idx, want_fused.sim_idx, "sim idx on {}", backend.name());
        }
    }

    /// Opt-in f32 ranking (single-precision scan, exact-f64 re-check of
    /// surviving candidates) must follow the *bit-identical* insertion
    /// trajectory: same outcomes, same ids, same CF1 moments.
    #[test]
    fn umicro_f32_rank_trajectory_identical(stream in arb_points(4, 60)) {
        let mut exact = UMicro::new(UMicroConfig::new(4, DIMS).unwrap());
        let mut fast = UMicro::new(UMicroConfig::new(4, DIMS).unwrap());
        fast.set_f32_rank(true);
        for p in &stream {
            let a = exact.insert(p);
            let b = fast.insert(p);
            prop_assert_eq!(a, b, "diverged at t={}", p.timestamp());
        }
        prop_assert_eq!(exact.micro_clusters().len(), fast.micro_clusters().len());
        for (x, y) in exact.micro_clusters().iter().zip(fast.micro_clusters()) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.ecf.cf1(), y.ecf.cf1());
        }
    }

    /// CluStream batched insertion follows the per-point trajectory exactly.
    #[test]
    fn clustream_batch_matches_loop(stream in arb_points(6, 50)) {
        let mut looped = CluStream::new(CluStreamConfig::new(4, DIMS).unwrap());
        let mut batched = CluStream::new(CluStreamConfig::new(4, DIMS).unwrap());
        let loop_out: Vec<_> = stream.iter().map(|p| looped.insert(p)).collect();
        let mut batch_out = Vec::new();
        batched.insert_batch(&stream, &mut batch_out);
        prop_assert_eq!(loop_out, batch_out);
        prop_assert_eq!(looped.micro_clusters().len(), batched.micro_clusters().len());
    }
}
