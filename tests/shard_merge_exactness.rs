//! Sharded-ingestion correctness: Property 2.1 makes the fold of per-shard
//! ECF sets an *exact* reconstruction of the concatenated stream's
//! statistics, and budget-split sharding must not degrade clustering
//! quality on the paper's SynDrift workload.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use umicro::{Ecf, OnlineClusterer, UMicro, UMicroConfig};
use ustream_common::{AdditiveFeature, UncertainPoint};
use ustream_engine::{EngineBuilder, EngineConfig};
use ustream_eval::ClusterPurity;
use ustream_snapshot::{merge_namespaced, namespaced_id, shard_of_id};
use ustream_synth::SynDriftConfig;

const DIMS: usize = 3;

fn arb_point() -> impl Strategy<Value = UncertainPoint> {
    (
        pvec(-50.0..50.0f64, DIMS),
        pvec(0.0..5.0f64, DIMS),
        1u64..1000,
    )
        .prop_map(|(values, errors, t)| UncertainPoint::new(values, errors, t, None))
}

/// Relative comparison tolerant of the differing summation orders between
/// per-cluster accumulation and one bulk pass.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Route a stream round-robin across `shards` independent UMicro
    /// instances, fold their snapshots with `merge_namespaced`, and check
    /// the merged set carries *exactly* the additive statistics (count,
    /// CF1x, CF2x, EF2x per dimension) of the concatenated stream.
    #[test]
    fn sharded_merge_matches_concatenated_stream(
        points in pvec(arb_point(), 1..40),
        shards in 1usize..5,
    ) {
        // Budget large enough that no shard ever evicts: every point stays
        // accounted for, so the merged set must reproduce the stream total.
        let mut workers: Vec<UMicro> = (0..shards)
            .map(|_| UMicro::new(UMicroConfig::new(64, DIMS).unwrap()))
            .collect();
        for (i, p) in points.iter().enumerate() {
            let _ = workers[i % shards].insert(p);
        }

        let now = points.iter().map(|p| p.timestamp()).max().unwrap();
        let merged = merge_namespaced(
            workers
                .iter_mut()
                .enumerate()
                .map(|(s, w)| (s, w.snapshot_at(now))),
        );

        // Ground truth: one bulk ECF over the concatenated stream.
        let mut bulk = Ecf::empty(DIMS);
        for p in &points {
            bulk.insert(p);
        }

        prop_assert!(close(merged.total_count(), bulk.count()));
        for j in 0..DIMS {
            let (mut cf1, mut cf2, mut ef2) = (0.0, 0.0, 0.0);
            for ecf in merged.clusters.values() {
                cf1 += ecf.cf1()[j];
                cf2 += ecf.cf2()[j];
                ef2 += ecf.ef2()[j];
            }
            prop_assert!(close(cf1, bulk.cf1()[j]), "CF1[{j}]: {cf1} vs {}", bulk.cf1()[j]);
            prop_assert!(close(cf2, bulk.cf2()[j]), "CF2[{j}]: {cf2} vs {}", bulk.cf2()[j]);
            prop_assert!(close(ef2, bulk.ef2()[j]), "EF2[{j}]: {ef2} vs {}", bulk.ef2()[j]);
        }

        // Namespacing sanity: every merged id decodes to a live shard.
        for id in merged.clusters.keys() {
            prop_assert!(shard_of_id(*id) < shards);
        }
    }
}

/// Splitting the micro-cluster budget across shards (the engine's
/// `shard_n_micro` policy) must preserve clustering quality: sharded purity
/// on a seeded SynDrift stream stays within a few points of the
/// single-worker purity.
#[test]
fn sharded_purity_matches_single_worker_on_syndrift() {
    let points: Vec<UncertainPoint> = SynDriftConfig::small_test().build(42).take(6_000).collect();
    let config = EngineConfig::new(UMicroConfig::new(40, 5).unwrap()).with_shards(4);

    // Single worker, full budget.
    let mut single = UMicro::new(config.umicro.clone());
    let mut single_purity = ClusterPurity::new();
    for p in &points {
        let out = single.insert(p);
        single_purity.observe(out.cluster_id, p.label().expect("SynDrift labels points"));
        if let Some(evicted) = out.evicted {
            single_purity.remove_cluster(evicted);
        }
    }

    // Four workers, the engine's even budget split, round-robin routing and
    // namespaced ids — the same policy `StreamEngine` applies.
    let mut shard_cfg = config.umicro.clone();
    shard_cfg.n_micro = config.shard_n_micro();
    let mut workers: Vec<UMicro> = (0..config.shards)
        .map(|_| UMicro::new(shard_cfg.clone()))
        .collect();
    let mut sharded_purity = ClusterPurity::new();
    for (i, p) in points.iter().enumerate() {
        let shard = i % config.shards;
        let out = workers[shard].insert(p);
        sharded_purity.observe(
            namespaced_id(shard, out.cluster_id),
            p.label().expect("SynDrift labels points"),
        );
        if let Some(evicted) = out.evicted {
            sharded_purity.remove_cluster(namespaced_id(shard, evicted));
        }
    }

    let single = single_purity.purity().expect("points observed");
    let sharded = sharded_purity.purity().expect("points observed");
    assert!(single > 0.5, "single-worker purity degenerate: {single}");
    assert!(sharded > 0.5, "sharded purity degenerate: {sharded}");
    assert!(
        (single - sharded).abs() < 0.10,
        "sharding moved purity too far: single {single:.3} vs sharded {sharded:.3}"
    );
}

/// End-to-end: the threaded 4-shard engine on a SynDrift prefix produces
/// *bitwise* the same global micro-cluster view as a single-threaded
/// simulation of the identical policy (round-robin routing, even budget
/// split, namespaced ids) — threading and channel hops add no drift.
#[test]
fn sharded_engine_is_exact_on_syndrift() {
    let points: Vec<UncertainPoint> = SynDriftConfig::small_test().build(7).take(2_000).collect();
    let config = EngineConfig::new(UMicroConfig::new(48, 5).unwrap())
        .with_shards(4)
        .with_snapshot_every(100)
        .with_novelty_factor(None);

    // Reference: the same routing and budgets, run inline.
    let mut shard_cfg = config.umicro.clone();
    shard_cfg.n_micro = config.shard_n_micro();
    let mut workers: Vec<UMicro> = (0..config.shards)
        .map(|_| UMicro::new(shard_cfg.clone()))
        .collect();
    let mut expected = std::collections::BTreeMap::new();
    for (i, p) in points.iter().enumerate() {
        let _ = workers[i % config.shards].insert(p);
    }
    for (s, w) in workers.iter().enumerate() {
        for (id, ecf) in OnlineClusterer::micro_clusters(w) {
            expected.insert(namespaced_id(s, id), ecf);
        }
    }

    // `push` routes round-robin from a zero cursor, so a single producer
    // reproduces the reference routing exactly.
    let engine = EngineBuilder::from_config(config)
        .build()
        .expect("engine starts");
    for p in &points {
        engine.push(p.clone()).expect("engine accepts records");
    }
    engine.flush();
    let micro = engine.micro_clusters();

    assert_eq!(micro.len(), expected.len());
    for mc in &micro {
        let reference = expected.get(&mc.id).expect("cluster id matches reference");
        assert_eq!(mc.ecf.count(), reference.count(), "count of id {}", mc.id);
        assert_eq!(mc.ecf.cf1(), reference.cf1(), "CF1 of id {}", mc.id);
        assert_eq!(mc.ecf.cf2(), reference.cf2(), "CF2 of id {}", mc.id);
        assert_eq!(mc.ecf.ef2(), reference.ef2(), "EF2 of id {}", mc.id);
    }

    let report = engine.shutdown();
    assert_eq!(report.points_processed, points.len() as u64);
    assert!(report.merges >= 1);
}
