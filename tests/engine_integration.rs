//! End-to-end engine tests over generated workloads: concurrent ingestion,
//! decay, horizon/evolution queries and novelty alerting in one harness.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use umicro::UMicroConfig;
use ustream_common::{DataStream, UncertainPoint};
use ustream_engine::{EngineBuilder, EngineConfig};
use ustream_snapshot::PyramidConfig;
use ustream_synth::profiles::forest_cover;
use ustream_synth::{NoisyStream, SynDriftConfig};

fn noisy_points(len: usize, seed: u64) -> (Vec<UncertainPoint>, usize) {
    let mut cfg = SynDriftConfig::small_test();
    cfg.len = len;
    let clean = cfg.build(seed);
    let dims = clean.dims();
    let pts = NoisyStream::new(clean, 0.5, StdRng::seed_from_u64(seed ^ 1)).collect();
    (pts, dims)
}

#[test]
fn engine_processes_generated_workload() {
    let (points, dims) = noisy_points(8_000, 3);
    let engine = EngineBuilder::from_config(
        EngineConfig::new(UMicroConfig::new(40, dims).unwrap())
            .with_pyramid(PyramidConfig::new(2, 6).unwrap()),
    )
    .build()
    .expect("engine starts");
    for p in points {
        engine.push(p).expect("engine accepts records");
    }
    engine.flush();
    assert_eq!(engine.points_processed(), 8_000);

    let mac = engine.macro_clusters(4, 7);
    assert_eq!(mac.k(), 4);
    let window = engine.horizon_clusters(1_024).unwrap();
    assert!(window.total_count() > 0.0);

    let report = engine.shutdown();
    assert_eq!(report.points_processed, 8_000);
    assert!(report.snapshots_retained > 0);
}

#[test]
fn engine_multi_producer_totals_are_exact() {
    let (points, dims) = noisy_points(6_000, 9);
    let engine = Arc::new(
        EngineBuilder::from_config(EngineConfig::new(UMicroConfig::new(30, dims).unwrap()))
            .build()
            .expect("engine starts"),
    );
    let chunks: Vec<Vec<UncertainPoint>> = points.chunks(1_500).map(<[_]>::to_vec).collect();
    let mut handles = Vec::new();
    for chunk in chunks {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            for p in chunk {
                engine.push(p).expect("engine accepts records");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    engine.flush();
    let report = engine.shutdown();
    assert_eq!(report.points_processed, 6_000);
    assert_eq!(
        report.clusters_created - report.clusters_evicted,
        report.live_clusters as u64,
        "creation/eviction accounting must balance"
    );
}

#[test]
fn engine_detects_regime_change_on_real_profile() {
    // Forest profile, then a synthetic regime far outside its ranges.
    let clean = forest_cover(6_000, 21);
    let dims = clean.dims();
    let mut points: Vec<UncertainPoint> =
        NoisyStream::new(clean, 0.5, StdRng::seed_from_u64(22)).collect();
    let last_tick = points.last().unwrap().timestamp();
    for i in 0..3_000u64 {
        points.push(UncertainPoint::new(
            vec![99_000.0 + (i % 50) as f64; dims],
            vec![10.0; dims],
            last_tick + i + 1,
            None,
        ));
    }

    let engine = EngineBuilder::from_config(
        EngineConfig::new(UMicroConfig::new(40, dims).unwrap())
            .with_novelty_factor(Some(6.0))
            .with_novelty_quantile(0.99),
    )
    .build()
    .expect("engine starts");
    for p in points {
        engine.push(p).expect("engine accepts records");
    }
    engine.flush();

    // Novelty fired at the regime switch.
    let alerts = engine.drain_alerts();
    assert!(
        alerts.iter().any(|a| a.timestamp > last_tick),
        "no alert at the regime switch"
    );
    // Evolution across the switch must be turbulent. (The pyramid resolves
    // window boundaries to stored snapshot ticks, so the recent window can
    // straddle the switch slightly; demand a clear majority of churned
    // mass rather than total replacement.)
    let report = engine.evolution(3_000, 5.0).unwrap();
    assert!(
        report.turbulence() > 0.4,
        "turbulence {}",
        report.turbulence()
    );
    assert!(report.emerged() > 0, "the novel regime should emerge");
    engine.shutdown();
}

#[test]
fn decayed_engine_forgets_old_regimes_in_horizon_queries() {
    let dims = 2;
    let engine = EngineBuilder::from_config(
        EngineConfig::new(UMicroConfig::new(16, dims).unwrap()).with_decay_half_life(512.0),
    )
    .build()
    .expect("engine starts");
    for t in 1..=4_096u64 {
        let x = if t <= 3_072 { 0.0 } else { 64.0 };
        engine
            .push(UncertainPoint::new(
                vec![x + (t % 5) as f64 * 0.1, -x],
                vec![0.3, 0.3],
                t,
                None,
            ))
            .expect("engine accepts records");
    }
    engine.flush();
    let window = engine.horizon_clusters(512).unwrap();
    let new_mass: f64 = window
        .clusters
        .values()
        .filter(|c| ustream_common::AdditiveFeature::centroid(*c)[0] > 32.0)
        .map(ustream_common::AdditiveFeature::count)
        .sum();
    assert!(
        new_mass / window.total_count() > 0.9,
        "recent window should be the new regime"
    );
    engine.shutdown();
}
