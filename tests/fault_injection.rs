//! Fault-injection suite: drives the engine through injected worker
//! panics, corrupted checkpoints, poisoned producers and stalled channels
//! via the `failpoints` feature:
//!
//! ```text
//! cargo test --features failpoints --test fault_injection
//! ```
//!
//! The failpoint registry is process-global, so every test here grabs one
//! shared lock — the suite is effectively serial.

#![cfg(feature = "failpoints")]

use std::sync::Mutex;
use std::time::{Duration, Instant};
use umicro::UMicroConfig;
use ustream_common::{UStreamError, UncertainPoint};
use ustream_engine::{
    failpoints, BackpressurePolicy, EngineBuilder, EngineConfig, HealthStatus, StreamEngine,
    ValidationPolicy, WatchdogConfig,
};

static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

fn pt(x: f64, y: f64, t: u64) -> UncertainPoint {
    UncertainPoint::new(vec![x, y], vec![0.3, 0.3], t, None)
}

fn temp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("ustream-fi-{tag}-{}.ckpt", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn injected_worker_panic_degrades_without_losing_merged_clusters() {
    let _guard = FAILPOINT_LOCK.lock().unwrap();
    failpoints::reset_all();

    let e = EngineBuilder::from_config(
        EngineConfig::new(UMicroConfig::new(8, 2).unwrap()).with_snapshot_every(8),
    )
    .build()
    .unwrap();
    for t in 1..=64u64 {
        e.push(pt((t % 2) as f64 * 10.0, 0.0, t)).unwrap();
    }
    e.flush();
    let clusters_before = e.micro_clusters();
    assert!(!clusters_before.is_empty());
    assert_eq!(e.stats().health, HealthStatus::Healthy);

    // The next record the worker dequeues makes it panic; the record is
    // consumed (the documented at-most-one loss).
    assert_eq!(failpoints::arm(failpoints::SHARD_WORKER_PANIC, 1), 0);
    e.push(pt(1.0, 1.0, 65)).unwrap();
    for t in 66..=128u64 {
        e.push(pt((t % 2) as f64 * 10.0, 0.0, t)).unwrap();
    }
    e.flush(); // barrier only replies once the respawned worker drained

    let report = e.stats();
    assert_eq!(report.health, HealthStatus::Degraded);
    assert_eq!(report.per_shard[0].restarts, 1);
    assert!(report.per_shard[0].alive, "worker must have respawned");
    assert!(
        report.per_shard[0]
            .last_panic
            .as_deref()
            .unwrap_or("")
            .contains("injected shard worker panic"),
        "panic payload lost: {:?}",
        report.per_shard[0].last_panic
    );
    // Exactly the in-flight record was lost...
    assert_eq!(report.points_processed, 127);
    // ...and the merged cluster history survived: the reseeded worker kept
    // clustering into the same id space and queries still resolve.
    let clusters_after = e.micro_clusters();
    assert!(!clusters_after.is_empty());
    let total: f64 = clusters_after
        .iter()
        .map(|c| ustream_common::AdditiveFeature::count(&c.ecf))
        .sum();
    assert!(total > 0.0);
    assert!(e.horizon_clusters(32).is_ok());

    failpoints::reset_all();
    e.shutdown();
}

#[test]
fn corrupted_checkpoint_fails_restore_cleanly() {
    let _guard = FAILPOINT_LOCK.lock().unwrap();
    failpoints::reset_all();
    let path = temp_path("corrupt");

    let e = EngineBuilder::from_config(
        EngineConfig::new(UMicroConfig::new(8, 2).unwrap()).with_snapshot_every(16),
    )
    .build()
    .unwrap();
    for t in 1..=128u64 {
        e.push(pt((t % 3) as f64, (t % 5) as f64, t)).unwrap();
    }
    e.flush();

    // The failpoint flips one payload byte *after* the header checksum is
    // computed: the file is structurally plausible but corrupt.
    assert_eq!(failpoints::arm(failpoints::CHECKPOINT_CORRUPT, 1), 0);
    e.checkpoint(&path).unwrap();

    match StreamEngine::restore(&path) {
        Err(UStreamError::Checkpoint(msg)) => {
            assert!(
                msg.contains("checksum") || msg.contains("payload"),
                "unhelpful corruption error: {msg}"
            );
        }
        Err(other) => panic!("corruption must map to Checkpoint, got {other:?}"),
        Ok(_) => panic!("restore of a corrupt checkpoint must fail"),
    }

    // A clean re-checkpoint of the same engine restores fine.
    e.checkpoint(&path).unwrap();
    let r = StreamEngine::restore(&path).unwrap();
    assert_eq!(r.points_processed(), e.points_processed());

    failpoints::reset_all();
    e.shutdown();
    r.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn injected_nan_is_quarantined_with_visible_counter() {
    let _guard = FAILPOINT_LOCK.lock().unwrap();
    failpoints::reset_all();

    let e = EngineBuilder::from_config(
        EngineConfig::new(UMicroConfig::new(4, 2).unwrap())
            .with_validation(Some(ValidationPolicy::Quarantine)),
    )
    .build()
    .unwrap();
    // The producer thinks it pushes a clean record; the failpoint poisons
    // its first coordinate before validation sees it.
    assert_eq!(failpoints::arm(failpoints::INJECT_NAN, 1), 0);
    e.push(pt(1.0, 2.0, 1)).unwrap();
    e.push(pt(1.0, 2.0, 2)).unwrap();
    e.flush();

    let report = e.stats();
    assert_eq!(report.points_quarantined, 1);
    assert_eq!(report.points_processed, 1);
    let held = e.drain_quarantine();
    assert_eq!(held.len(), 1);
    assert!(held[0].point.values()[0].is_nan());
    assert!(
        held[0].fault.contains("non-finite"),
        "fault lost: {}",
        held[0].fault
    );

    failpoints::reset_all();
    e.shutdown();
}

#[test]
fn stalled_worker_with_drop_newest_sheds_load_instead_of_blocking() {
    let _guard = FAILPOINT_LOCK.lock().unwrap();
    failpoints::reset_all();

    let mut config = EngineConfig::new(UMicroConfig::new(4, 2).unwrap())
        .with_backpressure(BackpressurePolicy::DropNewest)
        .with_snapshot_every(1_000);
    config.channel_capacity = 2;
    let e = EngineBuilder::from_config(config).build().unwrap();

    // Every record costs the worker an extra 50 ms: the 2-slot channel
    // fills immediately and DropNewest sheds the rest without blocking the
    // producer.
    assert_eq!(failpoints::arm(failpoints::CHANNEL_STALL, 1_000), 0);
    for t in 1..=40u64 {
        e.push(pt(0.0, 0.0, t)).unwrap();
    }
    let report = e.stats();
    assert!(
        report.backpressure_dropped > 0,
        "expected drops under a stalled worker: {report:?}"
    );

    failpoints::disarm(failpoints::CHANNEL_STALL);
    e.flush();
    let report = e.shutdown();
    assert_eq!(
        report.points_processed + report.backpressure_dropped,
        40,
        "every record is either processed or counted as dropped"
    );
    failpoints::reset_all();
}

/// Spins until `cond` holds or `deadline` elapses; returns whether it held.
fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn watchdog_detects_wedged_worker_and_rescue_drains_backlog() {
    let _guard = FAILPOINT_LOCK.lock().unwrap();
    failpoints::reset_all();

    let e = EngineBuilder::from_config(
        EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
            .with_snapshot_every(1_000)
            .with_watchdog(WatchdogConfig {
                stall_deadline_ms: 100,
                poll_ms: 10,
                respawn: true,
            }),
    )
    .build()
    .unwrap();

    // The first record the worker dequeues costs it a 2 s sleep — far past
    // the 100 ms stall deadline — while 200 more records pile up behind it.
    assert_eq!(failpoints::arm(failpoints::WORKER_HANG, 2_000), 0);
    for t in 1..=201u64 {
        e.push(pt((t % 4) as f64, 0.0, t)).unwrap();
    }

    // The watchdog must flag the stall well within the hang window...
    assert!(
        wait_until(Duration::from_secs(1), || e.stats().stalls_detected >= 1),
        "watchdog never flagged the wedged worker: {:?}",
        e.stats()
    );
    assert_eq!(e.stats().health, HealthStatus::Degraded);

    // ...and the rescue consumer drains the backlog while the original
    // worker is still asleep (2 s hang vs 200 records of ordinary work).
    assert!(
        wait_until(Duration::from_millis(1_500), || e.points_processed() >= 200),
        "rescue consumer never drained the backlog: processed {}",
        e.points_processed()
    );

    // Once the wedged worker wakes and finishes its record, nothing is lost.
    assert!(
        wait_until(Duration::from_secs(3), || e.points_processed() == 201),
        "hung record lost: processed {}",
        e.points_processed()
    );
    let report = e.shutdown();
    assert_eq!(report.points_processed, 201);
    assert!(report.stalls_detected >= 1);
    assert!(report.per_shard[0].stalls >= 1);
    failpoints::reset_all();
}

#[test]
fn restore_falls_back_to_oldest_surviving_generation() {
    let _guard = FAILPOINT_LOCK.lock().unwrap();
    failpoints::reset_all();
    let base = temp_path("generations");

    let e = EngineBuilder::from_config(
        EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
            .with_snapshot_every(16)
            .with_auto_checkpoint(32, &base)
            .with_checkpoint_generations(3),
    )
    .build()
    .unwrap();
    for t in 1..=96u64 {
        e.push(pt((t % 3) as f64 * 5.0, (t % 5) as f64, t)).unwrap();
    }
    e.flush();
    let report = e.shutdown();
    assert_eq!(report.checkpoints_written, 3, "epochs 1..=3 must rotate");

    // Generations land in slots seq % 3: epoch 1 → .1, 2 → .2, 3 → .0.
    // Corrupt every generation except the *oldest* (epoch 1 in slot 1).
    for slot in [0u64, 2] {
        let path = format!("{base}.{slot}");
        let mut bytes = std::fs::read(&path).expect("generation file exists");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
    }

    // Restore walks the manifest newest-first, rejects both corrupt
    // generations on their checksums, and lands on epoch 1.
    let r = StreamEngine::restore(&base).unwrap();
    assert_eq!(r.points_processed(), 32, "must restore the epoch-1 state");

    // The stream continues from the restored state.
    for t in 97..=160u64 {
        r.push(pt((t % 3) as f64 * 5.0, (t % 5) as f64, t)).unwrap();
    }
    r.flush();
    assert_eq!(r.points_processed(), 32 + 64);
    assert!(r.horizon_clusters(16).is_ok());
    r.shutdown();

    for suffix in ["0", "1", "2", "manifest"] {
        let _ = std::fs::remove_file(format!("{base}.{suffix}"));
    }
    failpoints::reset_all();
}

#[test]
fn restore_falls_back_when_newest_generation_is_truncated_mid_header() {
    let _guard = FAILPOINT_LOCK.lock().unwrap();
    failpoints::reset_all();
    let base = temp_path("generations-truncated");

    let e = EngineBuilder::from_config(
        EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
            .with_snapshot_every(16)
            .with_auto_checkpoint(32, &base)
            .with_checkpoint_generations(3),
    )
    .build()
    .unwrap();
    for t in 1..=96u64 {
        e.push(pt((t % 3) as f64 * 5.0, (t % 5) as f64, t)).unwrap();
    }
    e.flush();
    let report = e.shutdown();
    assert_eq!(report.checkpoints_written, 3, "epochs 1..=3 must rotate");

    // Epoch 3 landed in slot 0 (seq % 3). A crash mid-write can leave the
    // newest slot cut off *inside the ASCII header* — not just a bad
    // payload checksum, but a file too short to even parse. Truncate it to
    // 7 bytes, mid-magic.
    let newest = format!("{base}.0");
    let bytes = std::fs::read(&newest).expect("newest generation exists");
    assert!(bytes.len() > 7);
    std::fs::write(&newest, &bytes[..7]).unwrap();

    // Restore must reject the truncated header and fall back to the prior
    // generation (epoch 2, slot 2, 64 points) — not error out, not reset.
    let r = StreamEngine::restore(&base).unwrap();
    assert_eq!(
        r.points_processed(),
        64,
        "must fall back to the prior generation's epoch-2 state"
    );

    // The stream continues from the fallback state.
    for t in 97..=128u64 {
        r.push(pt((t % 3) as f64 * 5.0, (t % 5) as f64, t)).unwrap();
    }
    r.flush();
    assert_eq!(r.points_processed(), 64 + 32);
    assert!(r.horizon_clusters(16).is_ok());
    r.shutdown();

    for suffix in ["0", "1", "2", "manifest"] {
        let _ = std::fs::remove_file(format!("{base}.{suffix}"));
    }
    failpoints::reset_all();
}

#[test]
fn restore_with_every_generation_corrupt_is_a_clean_error() {
    let _guard = FAILPOINT_LOCK.lock().unwrap();
    failpoints::reset_all();
    let base = temp_path("generations-all-bad");

    let e = EngineBuilder::from_config(
        EngineConfig::new(UMicroConfig::new(4, 2).unwrap())
            .with_auto_checkpoint(16, &base)
            .with_checkpoint_generations(2),
    )
    .build()
    .unwrap();
    for t in 1..=32u64 {
        e.push(pt(1.0, 1.0, t)).unwrap();
    }
    e.flush();
    e.shutdown();

    for slot in [0u64, 1] {
        let path = format!("{base}.{slot}");
        if let Ok(mut bytes) = std::fs::read(&path) {
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
        }
    }
    assert!(
        StreamEngine::restore(&base).is_err(),
        "all-corrupt generations must surface an error, not a silent reset"
    );

    for suffix in ["0", "1", "manifest"] {
        let _ = std::fs::remove_file(format!("{base}.{suffix}"));
    }
    failpoints::reset_all();
}

/// Bounded soak: repeated stall → watchdog rescue → recovery rounds under
/// sustained load. CI runs this under a hard `timeout`; each round is
/// sized so the whole test stays in the low seconds.
#[test]
fn soak_repeated_stalls_recover_without_losing_records() {
    let _guard = FAILPOINT_LOCK.lock().unwrap();
    failpoints::reset_all();

    let e = EngineBuilder::from_config(
        EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
            .with_snapshot_every(500)
            .with_watchdog(WatchdogConfig {
                stall_deadline_ms: 50,
                poll_ms: 5,
                respawn: true,
            }),
    )
    .build()
    .unwrap();

    let mut pushed = 0u64;
    for round in 0..3u64 {
        // Wedge one consumer for 400 ms, then keep the stream coming.
        // `arm` is additive since the re-arm fix, so assert the previous
        // round's hang budget was fully consumed instead of silently
        // relying on the old overwrite to mask a leak.
        assert_eq!(
            failpoints::arm(failpoints::WORKER_HANG, 400),
            0,
            "round {round}: prior hang budget leaked into this round"
        );
        for i in 0..300u64 {
            let t = round * 301 + i + 1;
            e.push(pt((t % 4) as f64, -((t % 3) as f64), t)).unwrap();
            pushed += 1;
        }
        assert!(
            wait_until(Duration::from_secs(2), || {
                e.stats().stalls_detected > round
            }),
            "round {round}: stall never detected"
        );
        // Between rounds the engine must fully catch up: the backlog is
        // drained by the rescue consumer even while the worker sleeps.
        assert!(
            wait_until(Duration::from_secs(3), || e.points_processed() == pushed),
            "round {round}: lost records — processed {} of {pushed}",
            e.points_processed()
        );
    }

    let report = e.shutdown();
    assert_eq!(report.points_processed, pushed);
    assert!(report.stalls_detected >= 3);
    assert!(report.last_checkpoint_error.is_none());
    failpoints::reset_all();
}
