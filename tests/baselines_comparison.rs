//! Cross-algorithm integration: every comparator in the workspace runs on
//! the same streams and produces sane, comparable output.

use clustream::{
    CluStream, CluStreamConfig, DenStream, DenStreamConfig, StreamKMeans, StreamKMeansConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use umicro::{UMicro, UMicroConfig};
use ustream_common::{DataStream, UncertainPoint};
use ustream_eval::ClusterPurity;
use ustream_kmeans::{uk_means, UkMeansConfig};
use ustream_synth::{NoisyStream, SynDriftConfig};

/// A compact, well-separated noisy stream shared by all comparisons.
fn stream(eta: f64, len: usize) -> (Vec<UncertainPoint>, usize) {
    let mut cfg = SynDriftConfig::small_test();
    cfg.len = len;
    cfg.max_radius = 0.06;
    cfg.epsilon = 0.0005;
    let clean = cfg.build(17);
    let dims = clean.dims();
    let pts = NoisyStream::new(clean, eta, StdRng::seed_from_u64(18)).collect();
    (pts, dims)
}

fn purity_of_assignments(pairs: impl Iterator<Item = (u64, ustream_common::ClassLabel)>) -> f64 {
    let mut p = ClusterPurity::new();
    for (cid, label) in pairs {
        p.observe(cid, label);
    }
    p.purity().unwrap_or(0.0)
}

#[test]
fn all_online_algorithms_recover_separated_structure() {
    let (points, dims) = stream(0.25, 6_000);

    // UMicro.
    let mut umicro = UMicro::new(UMicroConfig::new(30, dims).unwrap());
    let u_purity = purity_of_assignments(points.iter().map(|p| {
        let out = umicro.insert(p);
        (out.cluster_id, p.label().unwrap())
    }));
    assert!(u_purity > 0.9, "UMicro purity {u_purity}");

    // CluStream.
    let mut cs = CluStream::new(CluStreamConfig::new(30, dims).unwrap());
    let c_purity = purity_of_assignments(points.iter().map(|p| {
        let out = cs.insert(p);
        (out.cluster_id, p.label().unwrap())
    }));
    assert!(c_purity > 0.9, "CluStream purity {c_purity}");

    // DenStream: potential clusters must reflect the generating structure.
    let mut den = DenStream::new(DenStreamConfig::new(dims, 0.4).unwrap());
    for p in &points {
        den.insert(p);
    }
    assert!(
        !den.potential_clusters().is_empty(),
        "DenStream formed no potential clusters"
    );
    assert!(den.offline_clusters().len() >= 2);

    // STREAM.
    let mut sk = StreamKMeans::new(StreamKMeansConfig::new(4, 300, dims, 3).unwrap());
    for p in &points {
        sk.insert(p);
    }
    assert_eq!(sk.query().centroids.len(), 4);

    // UK-means (offline) on a sample.
    let res = uk_means(&points[..2_000], &UkMeansConfig::new(4, 5));
    assert_eq!(res.centroids.len(), 4);
    let uk_purity = purity_of_assignments(
        points[..2_000]
            .iter()
            .zip(&res.assignments)
            .map(|(p, &a)| (a as u64, p.label().unwrap())),
    );
    assert!(uk_purity > 0.8, "UK-means purity {uk_purity}");
}

#[test]
fn umicro_degrades_most_gracefully_with_noise() {
    // At strong heterogeneous noise, the uncertainty-aware algorithm holds
    // the highest purity of the online methods.
    let (points, dims) = stream(1.5, 8_000);

    let mut umicro = UMicro::new(UMicroConfig::new(30, dims).unwrap());
    let u = purity_of_assignments(points.iter().map(|p| {
        let out = umicro.insert(p);
        (out.cluster_id, p.label().unwrap())
    }));

    let mut cs = CluStream::new(CluStreamConfig::new(30, dims).unwrap());
    let c = purity_of_assignments(points.iter().map(|p| {
        let out = cs.insert(p);
        (out.cluster_id, p.label().unwrap())
    }));

    assert!(
        u > c,
        "UMicro {u:.4} should beat CluStream {c:.4} at eta=1.5"
    );
}

#[test]
fn denstream_prunes_under_drifting_regimes() {
    // Feed one regime, then another far away: after enough pruning cycles
    // the old regime's potential clusters must be gone.
    let dims = 2;
    let mut den = DenStream::new({
        let mut c = DenStreamConfig::new(dims, 0.5).unwrap();
        c.lambda = 0.02;
        c
    });
    for t in 1..=300u64 {
        den.insert(&UncertainPoint::certain(vec![0.0, 0.0], t, None));
    }
    for t in 2_000..=2_300u64 {
        den.insert(&UncertainPoint::certain(vec![40.0, 40.0], t, None));
    }
    let stale: usize = den
        .potential_clusters()
        .iter()
        .filter(|c| c.centroid()[0] < 20.0)
        .count();
    assert_eq!(stale, 0, "old regime should be pruned");
    assert!(!den.potential_clusters().is_empty());
}

#[test]
fn classifier_matches_clustering_structure() {
    // Training a classifier on the generator's labels and classifying the
    // stream back must align with the generating clusters.
    let (points, dims) = stream(0.5, 6_000);
    let split = 4_000;
    let mut clf = umicro::MicroClassifier::new(UMicroConfig::new(10, dims).unwrap());
    for p in &points[..split] {
        clf.train_labelled(p);
    }
    let mut ok = 0usize;
    for p in &points[split..] {
        if clf.classify(p).map(|c| c.label) == p.label() {
            ok += 1;
        }
    }
    let acc = ok as f64 / (points.len() - split) as f64;
    assert!(acc > 0.85, "classification accuracy {acc}");
}
