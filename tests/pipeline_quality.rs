//! End-to-end quality tests: generator → noise model → algorithms →
//! evaluation, asserting the paper's qualitative claims on scaled-down
//! streams.

use clustream::{CluStream, CluStreamConfig, StreamKMeans, StreamKMeansConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use umicro::{UMicro, UMicroConfig};
use ustream_common::{DataStream, UncertainPoint};
use ustream_eval::{adjusted_rand_index, normalized_mutual_information, ClusterPurity};
use ustream_synth::profiles::{forest_cover, network_intrusion};
use ustream_synth::{NoisyStream, SynDriftConfig};

const N_MICRO: usize = 60;
const LEN: usize = 12_000;

fn noisy_syndrift(eta: f64, seed: u64) -> Vec<UncertainPoint> {
    let mut cfg = SynDriftConfig::paper();
    cfg.len = LEN;
    NoisyStream::new(cfg.build(seed), eta, StdRng::seed_from_u64(seed ^ 0xabc)).collect()
}

fn run_umicro(points: &[UncertainPoint], dims: usize) -> ClusterPurity {
    let mut alg = UMicro::new(UMicroConfig::new(N_MICRO, dims).expect("valid config"));
    let mut purity = ClusterPurity::new();
    for p in points {
        let out = alg.insert(p);
        if let Some(l) = p.label() {
            purity.observe(out.cluster_id, l);
        }
    }
    purity
}

fn run_clustream(points: &[UncertainPoint], dims: usize) -> ClusterPurity {
    let mut alg = CluStream::new(CluStreamConfig::new(N_MICRO, dims).expect("valid config"));
    let mut purity = ClusterPurity::new();
    for p in points {
        let out = alg.insert(p);
        if let Some(l) = p.label() {
            purity.observe(out.cluster_id, l);
        }
    }
    purity
}

#[test]
fn umicro_beats_clustream_under_heavy_noise_syndrift() {
    // The paper's central claim (Figures 2 & 5): with significant
    // uncertainty, the error-aware algorithm clusters more accurately.
    let mut umicro_wins = 0;
    for seed in [11u64, 22, 33] {
        let points = noisy_syndrift(1.25, seed);
        let u = run_umicro(&points, 20).purity().unwrap();
        let c = run_clustream(&points, 20).purity().unwrap();
        if u > c {
            umicro_wins += 1;
        }
    }
    assert!(umicro_wins >= 2, "UMicro won only {umicro_wins}/3 seeds");
}

#[test]
fn gap_grows_with_error_level() {
    // Figures 5–7: the accuracy gap widens as eta increases.
    let gaps: Vec<f64> = [0.25, 1.5]
        .iter()
        .map(|&eta| {
            let points = noisy_syndrift(eta, 77);
            let u = run_umicro(&points, 20).purity().unwrap();
            let c = run_clustream(&points, 20).purity().unwrap();
            u - c
        })
        .collect();
    assert!(
        gaps[1] > gaps[0],
        "gap should grow with noise: low-eta {:.4}, high-eta {:.4}",
        gaps[0],
        gaps[1]
    );
    assert!(gaps[1] > 0.02, "high-eta gap too small: {:.4}", gaps[1]);
}

#[test]
fn umicro_advantage_holds_on_forest_profile() {
    let clean = forest_cover(LEN, 5);
    let dims = clean.dims();
    let points: Vec<UncertainPoint> =
        NoisyStream::new(clean, 1.5, StdRng::seed_from_u64(6)).collect();
    let u = run_umicro(&points, dims).purity().unwrap();
    let c = run_clustream(&points, dims).purity().unwrap();
    assert!(u > c, "UMicro {u:.4} should beat CluStream {c:.4}");
}

#[test]
fn network_profile_all_methods_reasonable() {
    // On the normal-dominated network stream even the deterministic
    // baseline does fine (the paper's explanation for the smaller gap);
    // both must stay above the naive single-cluster purity.
    let clean = network_intrusion(LEN, 9);
    let dims = clean.dims();
    let points: Vec<UncertainPoint> =
        NoisyStream::new(clean, 0.5, StdRng::seed_from_u64(10)).collect();
    let u = run_umicro(&points, dims).purity().unwrap();
    let c = run_clustream(&points, dims).purity().unwrap();
    assert!(u > 0.8, "UMicro purity {u:.4}");
    assert!(c > 0.7, "CluStream purity {c:.4}");
    assert!(u >= c - 0.02, "UMicro should not lose: {u:.4} vs {c:.4}");
}

#[test]
fn information_metrics_agree_with_purity_ranking() {
    // NMI and ARI must tell the same story as purity at high noise.
    let points = noisy_syndrift(1.25, 44);
    let u = run_umicro(&points, 20);
    let c = run_clustream(&points, 20);
    let u_nmi = normalized_mutual_information(u.table()).unwrap();
    let c_nmi = normalized_mutual_information(c.table()).unwrap();
    let u_ari = adjusted_rand_index(u.table()).unwrap();
    let c_ari = adjusted_rand_index(c.table()).unwrap();
    assert!(
        u_nmi > c_nmi,
        "NMI: UMicro {u_nmi:.4} vs CluStream {c_nmi:.4}"
    );
    assert!(
        u_ari > c_ari,
        "ARI: UMicro {u_ari:.4} vs CluStream {c_ari:.4}"
    );
}

#[test]
fn stream_kmeans_baseline_recovers_structure() {
    // The STREAM comparator groups a clean, well-separated stream roughly
    // as well as its chunked design allows.
    let mut cfg = SynDriftConfig::small_test();
    cfg.max_radius = 0.05;
    let clean = cfg.build(3);
    let dims = clean.dims();
    let mut alg = StreamKMeans::new(StreamKMeansConfig::new(4, 200, dims, 1).unwrap());
    let points: Vec<UncertainPoint> = clean.collect();
    for p in &points {
        alg.insert(p);
    }
    let res = alg.query();
    assert_eq!(res.centroids.len(), 4);
    // Assign each point to its nearest final centroid and measure purity.
    let mut purity = ClusterPurity::new();
    for p in &points {
        let (idx, _) = ustream_kmeans::sq_distance_to_nearest(p.values(), &res.centroids);
        purity.observe(idx as u64, p.label().unwrap());
    }
    let score = purity.purity().unwrap();
    assert!(score > 0.8, "STREAM purity too low: {score:.4}");
}

#[test]
fn deterministic_given_seeds() {
    let a = run_umicro(&noisy_syndrift(0.75, 123), 20).purity().unwrap();
    let b = run_umicro(&noisy_syndrift(0.75, 123), 20).purity().unwrap();
    assert_eq!(a, b, "same seed must give identical results");
}
