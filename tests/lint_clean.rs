//! Self-check: the repository must be clean under its own static-analysis
//! pass. Any new violation of the `ustream-lint` rules (panic in a hot
//! path, NaN-unsound float ordering, unjustified relaxed atomic, ...)
//! fails this test with the full diagnostic report, exactly as `cargo
//! lint` would print it.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = ustream_lint::lint_workspace(root).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "ustream-lint found {} violation(s):\n{}",
        findings.len(),
        ustream_lint::render_report(&findings)
    );
}
