//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored value-model `serde` crate (`to_value` / `from_value`), parsing
//! the item with the bare `proc_macro` API — no `syn`/`quote`, so it builds
//! with zero dependencies. Supported shapes are exactly what this workspace
//! derives on: structs with named fields (optionally generic), tuple
//! structs, and enums with unit or struct-like variants. `#[serde(...)]`
//! attributes are not supported and will simply be ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives `serde::Serialize` (the vendored `to_value` form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (the vendored `from_value` form).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();

    // Skip outer attributes (incl. doc comments) and the visibility.
    let keyword = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // The bracketed attribute body.
                let _ = it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _ = it.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                panic!("serde_derive: unsupported item keyword `{s}`");
            }
            other => panic!("serde_derive: unexpected token before item: {other:?}"),
        }
    };

    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };

    // Optional generics: collect the first ident of each comma-separated
    // parameter at depth 1 (no bounds/lifetimes/const generics supported).
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            let _ = it.next();
            let mut depth = 1usize;
            let mut expect_param = true;
            for tt in it.by_ref() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                    }
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        generics.push(id.to_string());
                        expect_param = false;
                    }
                    _ => {}
                }
            }
        }
    }

    let kind = if keyword == "struct" {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            other => panic!("serde_derive: unexpected struct body: {other:?}"),
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        }
    };

    Item {
        name,
        generics,
        kind,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility ahead of the field name.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = it.next();
                    let _ = it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    let _ = it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = it.next() else { break };
        let TokenTree::Ident(id) = tt else {
            panic!("serde_derive: expected field name, got {tt:?}");
        };
        fields.push(id.to_string());
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type up to the next top-level comma (angle-depth aware).
        let mut depth = 0usize;
        for tt in it.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0usize;
    let mut in_field = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => in_field = false,
            _ => {
                if !in_field {
                    count += 1;
                    in_field = true;
                }
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip variant attributes such as `#[default]` and doc comments.
        while let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '#' {
                let _ = it.next();
                let _ = it.next();
            } else {
                break;
            }
        }
        let Some(tt) = it.next() else { break };
        let TokenTree::Ident(id) = tt else {
            panic!("serde_derive: expected variant name, got {tt:?}");
        };
        let name = id.to_string();
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                let _ = it.next();
                VariantFields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                let _ = it.next();
                VariantFields::Tuple(count_tuple_fields(g))
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip a possible explicit discriminant, then the separating comma.
        for tt in it.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", item.name, item.generics.join(", ")),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (params, ty) = impl_header(item, "::serde::Serialize");
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(vec![{}])", pairs.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", elems.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "Self::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vname} {{ {binds} }} => ::serde::Value::Obj(vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Obj(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            let inner = if *n == 1 {
                                elems[0].clone()
                            } else {
                                format!("::serde::Value::Arr(vec![{}])", elems.join(", "))
                            };
                            format!(
                                "Self::{vname}({}) => ::serde::Value::Obj(vec![\
                                 (::std::string::String::from(\"{vname}\"), {inner})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl{params} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let (params, ty) = impl_header(item, "::serde::Deserialize");
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::field(fields, \"{f}\", \"{name}\")?)?,"
                    )
                })
                .collect();
            format!(
                "let fields = value.as_obj().ok_or_else(|| \
                 ::serde::Error::msg(\"expected object for `{name}`\"))?;\n\
                 ::std::result::Result::Ok(Self {{ {} }})",
                inits.join(" ")
            )
        }
        Kind::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))".to_string()
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                         ::serde::Error::msg(\"missing tuple element in `{name}`\"))?)?"
                    )
                })
                .collect();
            format!(
                "let items = value.as_arr().ok_or_else(|| \
                 ::serde::Error::msg(\"expected array for `{name}`\"))?;\n\
                 ::std::result::Result::Ok(Self({}))",
                inits.join(", ")
            )
        }
        Kind::Unit => "::std::result::Result::Ok(Self)".to_string(),
        Kind::Enum(variants) => {
            let mut code = String::new();
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => return ::std::result::Result::Ok(Self::{vname}),")
                })
                .collect();
            if !unit_arms.is_empty() {
                code.push_str(&format!(
                    "if let ::serde::Value::Str(s) = value {{\n\
                         match s.as_str() {{ {} _ => {{}} }}\n\
                     }}\n",
                    unit_arms.join(" ")
                ));
            }
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::field(vf, \"{f}\", \"{name}::{vname}\")?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let vf = inner.as_obj().ok_or_else(|| \
                                     ::serde::Error::msg(\
                                     \"expected object for `{name}::{vname}`\"))?;\n\
                                     return ::std::result::Result::Ok(\
                                     Self::{vname} {{ {} }});\n\
                                 }}",
                                inits.join(" ")
                            ))
                        }
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vname}\" => return ::std::result::Result::Ok(\
                             Self::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         items.get({i}).ok_or_else(|| ::serde::Error::msg(\
                                         \"missing element in `{name}::{vname}`\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let items = inner.as_arr().ok_or_else(|| \
                                     ::serde::Error::msg(\
                                     \"expected array for `{name}::{vname}`\"))?;\n\
                                     return ::std::result::Result::Ok(Self::{vname}({}));\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            if !data_arms.is_empty() {
                code.push_str(&format!(
                    "if let ::std::option::Option::Some(fields) = value.as_obj() {{\n\
                         if fields.len() == 1 {{\n\
                             let (tag, inner) = (&fields[0].0, &fields[0].1);\n\
                             match tag.as_str() {{ {} _ => {{}} }}\n\
                         }}\n\
                     }}\n",
                    data_arms.join(" ")
                ));
            }
            code.push_str(&format!(
                "::std::result::Result::Err(::serde::Error::msg(\
                 \"unrecognized variant for `{name}`\"))"
            ));
            code
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl{params} ::serde::Deserialize for {ty} {{\n\
             fn from_value(value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
