//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro and group/bencher surface this workspace's benches
//! use (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput::Elements`,
//! `BenchmarkId`) with a simple adaptive wall-clock harness: each benchmark
//! is calibrated to a short measurement window, then reported as mean time
//! per iteration plus derived throughput. No statistics, plots, or saved
//! baselines — the point is that `cargo bench` runs offline and prints
//! comparable numbers.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget for measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// The benchmark context handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            throughput: None,
        }
    }
}

/// How many logical items one benchmark iteration processes.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration (reported as elem/s).
    Elements(u64),
    /// Bytes per iteration (reported as MiB/s).
    Bytes(u64),
}

/// A labelled benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id `function/parameter`, mirroring criterion's display form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            repr: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            repr: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { repr: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { repr: s }
    }
}

/// A group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { result: None };
        f(&mut bencher);
        self.report(&id.repr, bencher.result);
        self
    }

    /// Runs one benchmark that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher { result: None };
        f(&mut bencher, input);
        self.report(&id.repr, bencher.result);
        self
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(self) {}

    fn report(&self, id: &str, result: Option<Measurement>) {
        let Some(m) = result else {
            println!("{}/{id}: no measurement (b.iter never called)", self.name);
            return;
        };
        let mut line = format!(
            "{}/{id}: {} per iter ({} iters)",
            self.name,
            format_duration(m.mean),
            m.iters
        );
        if let Some(tp) = self.throughput {
            let secs = m.mean.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Elements(n) => {
                        let _ = write!(line, ", {:.0} elem/s", n as f64 / secs);
                    }
                    Throughput::Bytes(n) => {
                        let _ = write!(line, ", {:.2} MiB/s", n as f64 / secs / (1024.0 * 1024.0));
                    }
                }
            }
        }
        println!("{line}");
    }
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean: Duration,
    iters: u64,
}

/// Times closures: the `b` in `|b| b.iter(...)`.
pub struct Bencher {
    result: Option<Measurement>,
}

impl Bencher {
    /// Measures `routine`, adaptively choosing an iteration count that fills
    /// the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: time a single call.
        let start = Instant::now();
        black_box(routine());
        let single = start.elapsed().max(Duration::from_nanos(1));

        let iters = (MEASURE_BUDGET.as_nanos() / single.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.result = Some(Measurement {
            mean: total / u32::try_from(iters).unwrap_or(u32::MAX),
            iters,
        });
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro. Any
/// harness arguments passed by `cargo bench` are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; a bare `--test` smoke-run
            // must not execute the full measurement loop.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        group.bench_function("busy_loop", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 42).repr, "f/42");
        assert_eq!(BenchmarkId::from_parameter("x").repr, "x");
    }
}
