//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! non-poisoning `lock()`/`read()`/`write()` API, wrapping the std
//! primitives. Poisoned locks are recovered transparently (parking_lot has
//! no poisoning at all, so recovering is the closest observable behavior).

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_recovers_after_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
