//! Offline stand-in for the `serde` crate.
//!
//! Serialization here goes through a concrete [`Value`] tree instead of
//! upstream serde's visitor machinery: [`Serialize`] renders a type to a
//! `Value`, [`Deserialize`] rebuilds it from one, and the companion
//! `serde_json` stand-in converts `Value` to and from JSON text. The derive
//! macros are re-exported from the vendored `serde_derive`, so existing
//! `#[derive(Serialize, Deserialize)]` sites compile unchanged.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization tree: a minimal JSON-shaped value model.
///
/// Object fields keep insertion order (a `Vec`, not a map) so emitted JSON
/// is stable and round-trips byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer (always `< 0`; non-negatives normalize to `UInt`).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with ordered fields.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object value.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (accepts any number representation).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(x) => Some(x),
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            // JSON has no NaN/Infinity literal; they serialize as null.
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Numeric coercion to `u64` (rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            Value::Float(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                Some(x as u64)
            }
            _ => None,
        }
    }

    /// Numeric coercion to `i64` (rejects fractions and overflow).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(n) => i64::try_from(n).ok(),
            Value::Int(n) => Some(n),
            Value::Float(x) if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 => {
                Some(x as i64)
            }
            _ => None,
        }
    }
}

/// A serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error carrying `message`.
    pub fn msg(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Mirrors `serde::de` far enough for `DeserializeOwned` bounds.
pub mod de {
    /// In this stand-in every [`crate::Deserialize`] type is owned already.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Mirrors `serde::ser` for symmetric imports.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Looks up a derived struct field in an object's field list.
pub fn field<'a>(fields: &'a [(String, Value)], name: &str, ty: &str) -> Result<&'a Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{name}` for `{ty}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::msg("expected number"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::msg("expected unsigned integer"))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg("unsigned integer out of range"))
            }
        }
    )+};
}

macro_rules! impl_serde_int {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::msg("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )+};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value)
            .and_then(|n| isize::try_from(n).map_err(|_| Error::msg("integer out of range")))
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_arr()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

/// Types usable as object keys of serialized maps (rendered as JSON object
/// keys, i.e. strings — matching upstream serde_json's integer-key maps).
pub trait MapKey: Ord + Sized {
    /// The string form of the key.
    fn to_key(&self) -> String;
    /// Parses the key back from its string form.
    fn from_key(key: &str) -> Result<Self, Error>;
}

macro_rules! impl_map_key_int {
    ($($t:ty),+) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse()
                    .map_err(|_| Error::msg(format!("invalid integer map key `{key}`")))
            }
        }
    )+};
}

impl_map_key_int!(u32, u64, usize, i32, i64);

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_obj()
            .ok_or_else(|| Error::msg("expected object for map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}
