//! Offline stand-in for the `rand` crate.
//!
//! This container has no network access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`] (here a
//! xoshiro256** generator), [`SeedableRng::seed_from_u64`] and the [`Rng`]
//! sampling surface (`gen`, `gen_range`, `gen_bool`). Streams seeded through
//! this crate are deterministic per seed, which is all the workspace's
//! generators and tests rely on — no statistical compatibility with upstream
//! `rand` is promised (seeded sequences differ from the real crate's).

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the trait bound every sampler in this workspace
/// takes (`R: Rng`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy — here, from the system clock.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Types a `Range`/`RangeInclusive` can be sampled from via
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling surface (a subset of upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// A value from the type's standard distribution (`[0, 1)` for floats).
    fn r#gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A process-global, thread-local generator.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// Commonly imported items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{rngs::StdRng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_sequences_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x: f64 = rng.gen_range(-2.5..4.0);
            assert!((-2.5..4.0).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
            let m = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.r#gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Crude uniformity check: the mean of 10k draws is near 1/2.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
