//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — bounded/unbounded MPMC channels with the
//! crossbeam surface (`send`, `try_send`, `recv`, iteration), backed by a
//! `Mutex<VecDeque>` + two condvars. Like real crossbeam both halves are
//! cloneable: multiple producers feed multiple consumers, which is what the
//! engine's watchdog needs to attach a replacement worker to a stalled
//! shard's channel.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when a message is queued or the last sender leaves.
        not_empty: Condvar,
        /// Signalled when a slot frees up or the last receiver leaves.
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        /// Locks the queue; a panic while the lock was held (workers run
        /// under `catch_unwind`) must not wedge the channel, so poisoning
        /// is stripped.
        fn lock(&self) -> MutexGuard<'_, Inner<T>> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    /// The sending half; cheap to clone, shareable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Fails only
        /// when every receiver is gone, handing the message back.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.lock();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                if inner.cap.is_none_or(|cap| inner.queue.len() < cap) {
                    inner.queue.push_back(msg);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .shared
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Non-blocking send: fails immediately when the channel is full or
        /// disconnected, handing the message back either way.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.lock();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if inner.cap.is_some_and(|cap| inner.queue.len() >= cap) {
                return Err(TrySendError::Full(msg));
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    /// The receiving half; cloneable — clones share one queue, each message
    /// is delivered to exactly one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone (the
        /// queue is drained either way before disconnect is reported).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.lock();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.lock();
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.lock();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, remaining)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                inner = guard;
            }
        }

        /// A blocking iterator over received messages; ends when all senders
        /// are dropped and the queue is drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Borrowing message iterator (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning message iterator.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.iter()
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Every receiver disconnected; the unsent message is handed back.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Why a [`Sender::try_send`] failed; the message is handed back.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(m) | TrySendError::Disconnected(m) => m,
            }
        }

        /// Whether the failure was a full channel (backpressure).
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        /// Whether the failure was a disconnected receiver.
        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    /// All senders disconnected and the channel is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Why a [`Receiver::try_recv`] produced nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Why a [`Receiver::recv_timeout`] produced nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed first.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TrySendError};
    use std::time::Duration;

    #[test]
    fn bounded_round_trip_and_iteration() {
        let (tx, rx) = bounded(8);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.into_iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn try_send_reports_full_and_hands_back() {
        let (tx, _rx) = bounded(1);
        tx.try_send(1).unwrap();
        match tx.try_send(2) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 2),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
        assert!(matches!(tx.try_send(5), Err(TrySendError::Disconnected(5))));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = bounded(4);
        let mut handles = Vec::new();
        for p in 0..4 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    tx.send(p * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn cloned_receivers_partition_the_stream() {
        // MPMC: two consumers drain one channel; every message is delivered
        // exactly once.
        let (tx, rx) = bounded(4);
        let rx2 = rx.clone();
        let a = std::thread::spawn(move || rx.into_iter().collect::<Vec<i32>>());
        let b = std::thread::spawn(move || rx2.into_iter().collect::<Vec<i32>>());
        for i in 0..200 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got = a.join().unwrap();
        got.extend(b.join().unwrap());
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<i32>(2);
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)).unwrap(), 9);
    }

    #[test]
    fn blocked_send_wakes_when_receivers_vanish() {
        // A sender stuck on a full channel must error out (not hang) when
        // the last receiver goes away — shutdown paths rely on this.
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sender = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(sender.join().unwrap().is_err());
    }
}
