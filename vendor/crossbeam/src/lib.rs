//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — bounded/unbounded MPSC channels with the
//! crossbeam surface (`send`, `try_send`, `recv`, iteration), backed by
//! `std::sync::mpsc`. Unlike real crossbeam the receiver is single-consumer,
//! which is all this workspace's engine topology (one receiver per worker
//! thread) requires.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// The sending half; cheap to clone, shareable across threads.
    pub struct Sender<T> {
        inner: Flavor<T>,
    }

    enum Flavor<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                Flavor::Bounded(s) => Flavor::Bounded(s.clone()),
                Flavor::Unbounded(s) => Flavor::Unbounded(s.clone()),
            };
            Self { inner }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Fails only
        /// when the receiver is gone, handing the message back.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Flavor::Bounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
                Flavor::Unbounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
            }
        }

        /// Non-blocking send: fails immediately when the channel is full or
        /// disconnected, handing the message back either way.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                Flavor::Bounded(s) => s.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                    mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
                }),
                Flavor::Unbounded(s) => s.send(msg).map_err(|e| TrySendError::Disconnected(e.0)),
            }
        }
    }

    /// The receiving half (single consumer in this stand-in).
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// A blocking iterator over received messages; ends when all senders
        /// are dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: Flavor::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: Flavor::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// The receiver disconnected; the unsent message is handed back.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Why a [`Sender::try_send`] failed; the message is handed back.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// The receiver is gone.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(m) | TrySendError::Disconnected(m) => m,
            }
        }

        /// Whether the failure was a full channel (backpressure).
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        /// Whether the failure was a disconnected receiver.
        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    /// All senders disconnected and the channel is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Why a [`Receiver::try_recv`] produced nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Why a [`Receiver::recv_timeout`] produced nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed first.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TrySendError};

    #[test]
    fn bounded_round_trip_and_iteration() {
        let (tx, rx) = bounded(8);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.into_iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn try_send_reports_full_and_hands_back() {
        let (tx, _rx) = bounded(1);
        tx.try_send(1).unwrap();
        match tx.try_send(2) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 2),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
        assert!(matches!(tx.try_send(5), Err(TrySendError::Disconnected(5))));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = bounded(4);
        let mut handles = Vec::new();
        for p in 0..4 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    tx.send(p * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 100);
    }
}
