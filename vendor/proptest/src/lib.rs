//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the
//! [`Strategy`] trait over ranges/tuples/`collection::vec`, `prop_map`,
//! `ProptestConfig::with_cases`, and the [`proptest!`]/[`prop_assert!`]
//! macros. Cases are generated from a fixed seed derived from the test
//! name, so failures are reproducible run-to-run; there is no shrinking —
//! a failing case panics with the assertion message directly.

use rand::rngs::StdRng;
use std::ops::Range;

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        use rand::Rng;
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.start..self.end)
            }
        }
    )+};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// A strategy generating `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the generated test bodies.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A deterministic RNG for the named property (stable across runs).
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::collection::SizeRange;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Map, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn` becomes a `#[test]` that draws its
/// arguments from the given strategies for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // Render the case before the body runs: the body may consume
                // the arguments by value.
                let case_desc = ::std::format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body }),
                );
                if let Err(payload) = outcome {
                    eprint!(
                        "proptest case {}/{} failed for `{}`:\n{}",
                        case + 1, config.cases, stringify!($name), case_desc,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0..5.0f64, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies(
            pairs in crate::collection::vec((0u64..4, -1.0..1.0f64), 1..20),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 20);
            for (a, b) in &pairs {
                prop_assert!(*a < 4);
                prop_assert!((-1.0..1.0).contains(b));
            }
        }

        #[test]
        fn prop_map_composes(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 20);
        }
    }

    #[test]
    fn reruns_are_deterministic() {
        use crate::Strategy;
        let s = crate::collection::vec(0u64..1000, 5..6);
        let mut r1 = crate::test_runner::rng_for("x");
        let mut r2 = crate::test_runner::rng_for("x");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
