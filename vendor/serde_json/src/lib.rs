//! Offline stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! model to JSON text and parses it back. Floats are written with `{:?}`
//! (shortest round-trip form), so serialize → deserialize is lossless;
//! non-finite floats become `null` and read back as NaN, matching the
//! tolerance the workspace's persistence layer needs.

use serde::{de::DeserializeOwned, Serialize, Value};
use std::fmt;

/// A JSON encode/decode failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn emit(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_string(key, out);
                out.push(':');
                emit(item, out);
            }
            out.push('}');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input came from &str, so the
                    // boundaries are trustworthy).
                    let start = self.pos;
                    let width = utf8_width(b);
                    self.pos += width;
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::Int)
                .or_else(|| text.parse::<f64>().ok().map(Value::Float))
                .ok_or_else(|| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::{from_str, parse, to_string};
    use serde::Value;

    #[test]
    fn scalar_round_trips() {
        for json in ["null", "true", "false", "42", "-17", "3.25", "\"hi\""] {
            let v = parse(json).unwrap();
            let mut out = String::new();
            super::emit(&v, &mut out);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn float_shortest_form_round_trips() {
        let v = Value::Float(0.1 + 0.2);
        let text = to_string(&(0.1 + 0.2)).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(Value::Float(back), v);
    }

    #[test]
    fn nested_structures() {
        let json = r#"{"a":[1,2.5,{"b":null}],"c":"x\ny"}"#;
        let v = parse(json).unwrap();
        let mut out = String::new();
        super::emit(&v, &mut out);
        assert_eq!(out, json);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v, Value::Str("é😀".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn typed_round_trip_via_traits() {
        let xs = vec![1.5f64, -2.0, 0.0];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }
}
