//! Offline stand-in for the `rand_distr` crate: the [`Normal`] distribution
//! and the [`Distribution`] trait, which is all this workspace samples.

use rand::Rng;

/// Types that can produce samples of `T` from a generic [`Rng`].
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Normal`] with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean was not finite.
    MeanTooSmall,
    /// The standard deviation was negative or not finite.
    BadVariance,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::MeanTooSmall => write!(f, "mean is not finite"),
            NormalError::BadVariance => {
                write!(f, "standard deviation is negative or not finite")
            }
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`, sampled with the
/// Box-Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Validated constructor; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !(std_dev.is_finite() && std_dev >= 0.0) {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller: u1 uniform in (0, 1] so ln(u1) is finite.
        let u1: f64 = 1.0 - f64::sample_uniform(rng);
        let u2: f64 = f64::sample_uniform(rng);
        let mag = (-2.0 * u1.ln()).sqrt();
        let z = mag * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Internal helper so `sample` can take `R: Rng + ?Sized` while the vendored
/// `Rng::gen` surface requires `Self: Sized`.
trait SampleUniform {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> f64;
}

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::{Distribution, Normal, NormalError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(Normal::new(0.0, -1.0), Err(NormalError::BadVariance));
        assert_eq!(Normal::new(0.0, f64::NAN), Err(NormalError::BadVariance));
        assert_eq!(
            Normal::new(f64::INFINITY, 1.0),
            Err(NormalError::MeanTooSmall)
        );
    }

    #[test]
    fn sample_moments_are_close() {
        let n = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let draws: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws.len() as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "variance {var}");
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let n = Normal::new(7.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng), 7.0);
        }
    }
}
