//! `ustream serve` — boot the multi-tenant serving front-end.
//!
//! Binds a TCP listener (port 0 for an ephemeral port), prints the bound
//! address on stdout — scripts and the CI smoke job parse that line — and
//! then supervises the server until either `--duration` elapses or a
//! client sends a wire `shutdown` request. Exit is always a graceful
//! drain: stop accepting, finish queued work, flush a final snapshot per
//! tenant, write the final `USRVMAP` checkpoint when `--checkpoint` is
//! set. A drain that outlives `--drain-timeout` exits non-zero with the
//! typed deadline error.

use crate::args::{CliError, Flags};
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use ustream_serve::tenant::AdmissionPolicy;
use ustream_serve::{ServeConfig, Server};

pub fn run(flags: &Flags) -> Result<(), CliError> {
    let addr = flags.get_str("addr", "127.0.0.1:7171");
    let mut config = ServeConfig {
        workers: flags.get("workers", 4usize)?,
        queue_capacity: flags.get("queue", 256usize)?,
        buckets: flags.get("buckets", 16usize)?,
        governor_poll_ms: flags.get("governor-ms", 100u64)?,
        checkpoint_path: flags.get_opt::<PathBuf>("checkpoint")?,
        restore_path: flags.get_opt::<PathBuf>("restore")?,
        ..ServeConfig::default()
    };
    config.admission = AdmissionPolicy {
        quota_points_per_sec: flags.get("quota", 1_000_000u64)?,
        ..AdmissionPolicy::default()
    };
    let duration = flags.get_opt::<u64>("duration")?.map(Duration::from_secs);
    let drain_timeout = Duration::from_millis(flags.get("drain-timeout", 10_000u64)?);

    let server = Server::bind(addr.as_str(), config)?;
    println!("listening on {}", server.addr());
    println!(
        "workers={} queue={} buckets={} quota={}pps",
        server.stats().workers,
        server.stats().queue_capacity,
        flags.get("buckets", 16usize)?,
        flags.get("quota", 1_000_000u64)?,
    );
    std::io::stdout().flush().ok();

    let started = Instant::now();
    loop {
        if server.shutdown_requested() {
            eprintln!("shutdown requested over the wire; draining");
            break;
        }
        if let Some(d) = duration {
            if started.elapsed() >= d {
                eprintln!("--duration elapsed; draining");
                break;
            }
        }
        // lint:allow(no-sleep): host supervision loop only polls exit conditions
        std::thread::sleep(Duration::from_millis(100));
    }

    let stats = server.shutdown_drain(drain_timeout)?;
    println!(
        "drained clean: {} tenants, {} frames, {} points, {} jobs rejected",
        stats.tenants, stats.frames, stats.points, stats.jobs_rejected
    );
    Ok(())
}
