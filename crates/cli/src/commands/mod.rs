//! Subcommand implementations.

pub mod classify;
pub mod cluster;
pub mod distrib;
pub mod drive;
pub mod evolve;
pub mod generate;
pub mod horizon;
pub mod inspect;
pub mod serve;
pub mod stream;

use crate::args::CliError;
use std::fs::File;
use std::path::Path;
use ustream_common::VecStream;

/// Opens and parses a stream CSV.
pub fn load_stream(path: &str) -> Result<VecStream, CliError> {
    let file = File::open(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    ustream_synth::io::read_stream(file).map_err(|e| format!("{path}: {e}").into())
}
