//! `ustream cluster` — run a clustering algorithm over a stream CSV and
//! report quality.

use crate::args::{CliError, Flags};
use crate::commands::load_stream;
use clustream::{
    CluStream, CluStreamConfig, DenStream, DenStreamConfig, StreamKMeans, StreamKMeansConfig,
};
use std::time::Instant;
use umicro::{ClusterQuery, UMicro, UMicroConfig};
use ustream_common::{AdditiveFeature, DataStream, UncertainPoint};
use ustream_eval::{
    adjusted_rand_index, normalized_mutual_information, simplified_silhouette, ClusterPurity,
    ClusterSummary, ContingencyTable,
};
use ustream_kmeans::MacroClustering;

/// Remaps a micro-level contingency table onto macro clusters via the
/// micro→macro assignment; micro-clusters evicted before the offline phase
/// keep their own (unmapped) ids so their points still count.
fn macro_table(micro: &ContingencyTable, mac: &MacroClustering) -> ContingencyTable {
    let lookup: std::collections::BTreeMap<u64, usize> =
        mac.micro_assignments.iter().copied().collect();
    let mut out = ContingencyTable::new();
    for (micro_id, hist) in micro.clusters() {
        let target = lookup
            .get(&micro_id)
            .map(|m| *m as u64)
            .unwrap_or(u64::MAX - micro_id);
        for (label, n) in hist {
            out.observe_many(target, *label, *n);
        }
    }
    out
}

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), CliError> {
    let input = flags.require("in")?;
    let algorithm = flags.get_str("algorithm", "umicro");
    let n_micro: usize = flags.get("n-micro", 100)?;
    let k: usize = flags.get("k", 5)?;
    let seed: u64 = flags.get("seed", 42)?;
    let epsilon: f64 = flags.get("epsilon", 0.5)?;

    let stream = load_stream(input)?;
    let dims = stream.dims();
    let points: Vec<UncertainPoint> = stream.collect();
    if points.is_empty() {
        return Err("stream is empty".into());
    }
    eprintln!(
        "clustering {} records ({dims} dims) with {algorithm}",
        points.len()
    );

    let started = Instant::now();
    let (summaries, purity) = match algorithm.as_str() {
        "umicro" => {
            let mut alg = UMicro::new(UMicroConfig::new(n_micro, dims)?);
            let mut purity = ClusterPurity::new();
            for p in &points {
                let out = alg.insert(p);
                if let Some(l) = p.label() {
                    purity.observe(out.cluster_id, l);
                }
            }
            // The offline phase goes through the unified read API — the
            // same `ClusterQuery` surface the server and eval suite use.
            let mac = ClusterQuery::macro_cluster(&mut alg, k, seed);
            print_macro(&mac.centroids, &mac.weights);
            print_macro_quality(&purity, &mac);
            print_model_vitals(&ClusterQuery::stats(&alg));
            (cluster_summaries_umicro(&alg), purity)
        }
        "clustream" => {
            let mut alg = CluStream::new(CluStreamConfig::new(n_micro, dims)?);
            let mut purity = ClusterPurity::new();
            for p in &points {
                let out = alg.insert(p);
                if let Some(l) = p.label() {
                    purity.observe(out.cluster_id, l);
                }
            }
            let mac = ClusterQuery::macro_cluster(&mut alg, k, seed);
            print_macro(&mac.centroids, &mac.weights);
            print_macro_quality(&purity, &mac);
            print_model_vitals(&ClusterQuery::stats(&alg));
            let summaries = alg
                .micro_clusters()
                .iter()
                .map(|c| ClusterSummary::new(c.cf.centroid(), c.cf.rms_radius(), c.cf.n()))
                .collect();
            (summaries, purity)
        }
        "denstream" => {
            let mut alg = DenStream::new(DenStreamConfig::new(dims, epsilon)?);
            let mut purity = ClusterPurity::new();
            for p in &points {
                alg.insert(p);
                // DenStream has no insert outcome; attribute by the nearest
                // potential cluster after insertion for the purity readout.
                if let Some(l) = p.label() {
                    if let Some(c) = alg.potential_clusters().iter().min_by(|a, b| {
                        let da = ustream_common::point::sq_euclidean(&a.centroid(), p.values());
                        let db = ustream_common::point::sq_euclidean(&b.centroid(), p.values());
                        da.total_cmp(&db)
                    }) {
                        purity.observe(c.id, l);
                    }
                }
            }
            let centroids = alg.offline_centroids();
            let weights = vec![0.0; centroids.len()];
            print_macro(&centroids, &weights);
            let summaries = alg
                .potential_clusters()
                .iter()
                .map(|c| ClusterSummary::new(c.centroid(), c.radius(), c.weight()))
                .collect();
            (summaries, purity)
        }
        "stream-kmeans" => {
            let chunk = (points.len() / 20).max(k + 1);
            let mut alg = StreamKMeans::new(StreamKMeansConfig::new(k, chunk, dims, seed)?);
            for p in &points {
                alg.insert(p);
            }
            let res = alg.query();
            let mut purity = ClusterPurity::new();
            for p in &points {
                if let Some(l) = p.label() {
                    let (idx, _) =
                        ustream_kmeans::sq_distance_to_nearest(p.values(), &res.centroids);
                    purity.observe(idx as u64, l);
                }
            }
            let weights = vec![0.0; res.centroids.len()];
            print_macro(&res.centroids, &weights);
            let summaries = res
                .centroids
                .iter()
                .map(|c| ClusterSummary::new(c.clone(), 0.0, 1.0))
                .collect();
            (summaries, purity)
        }
        other => return Err(format!("unknown algorithm: {other}").into()),
    };
    let elapsed = started.elapsed();

    println!(
        "\nthroughput: {:.0} points/sec ({} points in {:.2?})",
        points.len() as f64 / elapsed.as_secs_f64(),
        points.len(),
        elapsed
    );
    if purity.total() > 0 {
        println!(
            "purity: {:.4} (weighted {:.4})",
            purity.purity().unwrap_or(0.0),
            purity.weighted_purity().unwrap_or(0.0)
        );
        if let Some(nmi) = normalized_mutual_information(purity.table()) {
            println!("NMI: {nmi:.4}");
        }
        if let Some(ari) = adjusted_rand_index(purity.table()) {
            println!("ARI: {ari:.4}");
        }
    } else {
        println!("no labels in stream; skipping external quality metrics");
    }
    if let Some(s) = simplified_silhouette(&summaries) {
        println!("silhouette (micro-level): {s:.4}");
    }
    Ok(())
}

fn print_model_vitals(stats: &umicro::QueryStats) {
    println!(
        "model: {} points, {} micro-clusters, ~{} KiB resident",
        stats.points_processed,
        stats.num_clusters,
        stats.approx_memory_bytes / 1024
    );
}

fn cluster_summaries_umicro(alg: &UMicro) -> Vec<ClusterSummary> {
    alg.micro_clusters()
        .iter()
        .map(|c| ClusterSummary::new(c.ecf.centroid(), c.ecf.corrected_radius(), c.ecf.weight()))
        .collect()
}

fn print_macro_quality(purity: &ClusterPurity, mac: &MacroClustering) {
    if purity.total() == 0 || mac.k() == 0 {
        return;
    }
    let table = macro_table(purity.table(), mac);
    if let Some(p) = ustream_eval::purity::purity_of(&table) {
        print!("macro-level: purity {p:.4}");
        if let Some(nmi) = normalized_mutual_information(&table) {
            print!("  NMI {nmi:.4}");
        }
        if let Some(ari) = adjusted_rand_index(&table) {
            print!("  ARI {ari:.4}");
        }
        println!();
    }
}

fn print_macro(centroids: &[Vec<f64>], weights: &[f64]) {
    println!("clusters:");
    for (i, c) in centroids.iter().enumerate() {
        let head: Vec<String> = c.iter().take(5).map(|v| format!("{v:.3}")).collect();
        let w = weights.get(i).copied().unwrap_or(0.0);
        if w > 0.0 {
            println!(
                "  #{i}: weight {w:>10.1}  centroid [{}{}]",
                head.join(", "),
                if c.len() > 5 { ", …" } else { "" }
            );
        } else {
            println!(
                "  #{i}: centroid [{}{}]",
                head.join(", "),
                if c.len() > 5 { ", …" } else { "" }
            );
        }
    }
}
