//! `ustream horizon` — cluster a stream, record pyramidal snapshots, and
//! report the clusters of one or more trailing windows (§II-D of the paper
//! from the command line).

use crate::args::{CliError, Flags};
use crate::commands::load_stream;
use umicro::{HorizonAnalyzer, UMicro, UMicroConfig};
use ustream_common::DataStream;
use ustream_snapshot::PyramidConfig;

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), CliError> {
    let input = flags.require("in")?;
    let n_micro: usize = flags.get("n-micro", 100)?;
    let k: usize = flags.get("k", 5)?;
    let seed: u64 = flags.get("seed", 42)?;
    let alpha: u64 = flags.get("alpha", 2)?;
    let l: u32 = flags.get("l", 6)?;
    let horizons: Vec<u64> = flags
        .get_str("horizons", "1000,10000")
        .split(',')
        .map(|s| s.trim().parse().map_err(|e| format!("bad horizon: {e}")))
        .collect::<Result<_, _>>()?;

    let stream = load_stream(input)?;
    let dims = stream.dims();
    let mut alg = UMicro::new(UMicroConfig::new(n_micro, dims)?);
    let mut hz = HorizonAnalyzer::new(PyramidConfig::new(alpha, l)?);

    let mut now = 0;
    for p in stream {
        alg.insert(&p);
        now = p.timestamp();
        hz.record(now, &alg);
    }
    eprintln!(
        "processed up to tick {now}; {} snapshots retained (alpha={alpha}, l={l})",
        hz.store().len()
    );

    for h in horizons {
        match hz.horizon_clusters(now, h) {
            Ok(window) => {
                println!(
                    "\nwindow (last {h} ticks): {} micro-clusters, {:.0} points",
                    window.len(),
                    window.total_count()
                );
                match hz.macro_cluster_horizon(now, h, k, seed) {
                    Ok(mac) => {
                        for (i, (c, w)) in mac.centroids.iter().zip(&mac.weights).enumerate() {
                            let head: Vec<String> =
                                c.iter().take(5).map(|v| format!("{v:.3}")).collect();
                            println!(
                                "  #{i}: weight {w:>9.1}  centroid [{}{}]",
                                head.join(", "),
                                if c.len() > 5 { ", …" } else { "" }
                            );
                        }
                    }
                    Err(e) => println!("  macro clustering failed: {e}"),
                }
            }
            Err(e) => println!("\nwindow (last {h} ticks): unavailable ({e})"),
        }
    }
    Ok(())
}
