//! `ustream drive` — multi-tenant load driver for a running `ustream
//! serve` instance.
//!
//! Opens `--conns` connections, partitions `--tenants` simulated tenants
//! across them round-robin, and streams deterministic batches at the
//! server, interleaving a stats query per tenant per round so both the
//! ingest and query paths are exercised. Prints aggregate points/second
//! and exact (sorted, not estimated) p50/p99 per-request latencies, and
//! exits non-zero if any connection hits a transport error — which is
//! what the CI smoke job asserts on.

use crate::args::{CliError, Flags};
use std::time::{Duration, Instant};
use ustream_serve::protocol::{ErrorCode, Request, Response, TenantSpec, WirePoint};
use ustream_serve::ServeClient;

/// splitmix64 — deterministic workload synthesis without an RNG dep here.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One worker's tally, merged by the main thread.
#[derive(Default)]
struct DriveTally {
    points_offered: u64,
    accepted: u64,
    dropped: u64,
    overloaded: u64,
    ingest_us: Vec<u64>,
    query_us: Vec<u64>,
}

fn batch_for(tenant: usize, tick0: u64, len: usize, dims: usize, seed: u64) -> Vec<WirePoint> {
    (0..len as u64)
        .map(|i| {
            let t = tick0 + i;
            let values = (0..dims)
                .map(|d| {
                    let h = splitmix64(seed ^ (tenant as u64) << 32 ^ t << 8 ^ d as u64);
                    // Two well-separated modes per tenant so clustering has
                    // structure to find.
                    let base = if h & 1 == 0 { 0.0 } else { 8.0 };
                    base + (h >> 8) as f64 / u64::MAX as f64
                })
                .collect();
            WirePoint {
                values,
                errors: vec![0.2; dims],
                timestamp: t,
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn drive_conn(
    addr: &str,
    names: &[(usize, String)],
    spec: &TenantSpec,
    batch: usize,
    rounds: u64,
    duration: Option<Duration>,
    dims: usize,
    seed: u64,
) -> Result<DriveTally, CliError> {
    let mut client = ServeClient::connect(addr)?;
    let mut tally = DriveTally::default();
    for (_, name) in names {
        match client.request(&Request::CreateTenant {
            name: name.clone(),
            spec: spec.clone(),
        })? {
            Response::Created => {}
            // A rerun against a live server finds its tenants already there.
            Response::Error {
                code: ErrorCode::TenantExists,
                ..
            } => {}
            Response::Error { code, message } => {
                return Err(format!("create {name}: [{code}] {message}").into())
            }
            other => return Err(format!("create {name}: unexpected {other:?}").into()),
        }
    }
    let started = Instant::now();
    let mut round = 0u64;
    'outer: loop {
        match duration {
            Some(d) => {
                if started.elapsed() >= d {
                    break 'outer;
                }
            }
            None => {
                if round >= rounds {
                    break 'outer;
                }
            }
        }
        for (idx, name) in names {
            let points = batch_for(*idx, round * batch as u64 + 1, batch, dims, seed);
            tally.points_offered += points.len() as u64;
            let t0 = Instant::now();
            let resp = client.request(&Request::Ingest {
                name: name.clone(),
                points,
            })?;
            tally.ingest_us.push(t0.elapsed().as_micros() as u64);
            match resp {
                Response::Ingested {
                    accepted,
                    sampled_out,
                    shed,
                    rejected,
                    ..
                } => {
                    tally.accepted += accepted;
                    tally.dropped += sampled_out + shed + rejected;
                }
                Response::Error {
                    code: ErrorCode::Overloaded,
                    ..
                } => tally.overloaded += 1,
                Response::Error { code, message } => {
                    return Err(format!("ingest {name}: [{code}] {message}").into())
                }
                other => return Err(format!("ingest {name}: unexpected {other:?}").into()),
            }
            let t0 = Instant::now();
            let resp = client.request(&Request::TenantStats { name: name.clone() })?;
            tally.query_us.push(t0.elapsed().as_micros() as u64);
            match resp {
                Response::TenantStats { .. } => {}
                Response::Error {
                    code: ErrorCode::Overloaded,
                    ..
                } => tally.overloaded += 1,
                Response::Error { code, message } => {
                    return Err(format!("stats {name}: [{code}] {message}").into())
                }
                other => return Err(format!("stats {name}: unexpected {other:?}").into()),
            }
        }
        round += 1;
    }
    Ok(tally)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

pub fn run(flags: &Flags) -> Result<(), CliError> {
    let addr = flags.require("addr")?.to_string();
    let tenants = flags.get("tenants", 100usize)?.max(1);
    let conns = flags.get("conns", 4usize)?.max(1).min(tenants);
    let batch = flags.get("batch", 100usize)?.max(1);
    let rounds = flags.get("batches", 10u64)?;
    let duration = flags.get_opt::<u64>("duration")?.map(Duration::from_secs);
    let dims = flags.get("dims", 2usize)?.max(1);
    let n_micro = flags.get("n-micro", 16usize)?.max(1);
    let seed = flags.get("seed", 42u64)?;
    let spec = TenantSpec {
        snapshot_every: flags.get("snapshot-every", 256u64)?,
        ..TenantSpec::new(n_micro, dims)
    };

    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..conns {
        let names: Vec<(usize, String)> = (c..tenants)
            .step_by(conns)
            .map(|i| (i, format!("drive-{i}")))
            .collect();
        let addr = addr.clone();
        let spec = spec.clone();
        handles.push(std::thread::spawn(move || {
            drive_conn(&addr, &names, &spec, batch, rounds, duration, dims, seed)
                .map_err(|e| e.to_string())
        }));
    }

    let mut total = DriveTally::default();
    let mut failures = Vec::new();
    for (c, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(t)) => {
                total.points_offered += t.points_offered;
                total.accepted += t.accepted;
                total.dropped += t.dropped;
                total.overloaded += t.overloaded;
                total.ingest_us.extend(t.ingest_us);
                total.query_us.extend(t.query_us);
            }
            Ok(Err(e)) => failures.push(format!("conn {c}: {e}")),
            Err(_) => failures.push(format!("conn {c}: worker panicked")),
        }
    }
    let elapsed = started.elapsed().as_secs_f64();

    total.ingest_us.sort_unstable();
    total.query_us.sort_unstable();
    let pps = if elapsed > 0.0 {
        total.points_offered as f64 / elapsed
    } else {
        0.0
    };
    println!(
        "drive: {} tenants over {} conns, {} points in {:.1}s ({:.0} points/s)",
        tenants, conns, total.points_offered, elapsed, pps
    );
    println!(
        "  ingest: accepted {} dropped {} overloaded {}; latency p50 {}us p99 {}us",
        total.accepted,
        total.dropped,
        total.overloaded,
        percentile(&total.ingest_us, 0.50),
        percentile(&total.ingest_us, 0.99),
    );
    println!(
        "  query:  {} requests; latency p50 {}us p99 {}us",
        total.query_us.len(),
        percentile(&total.query_us, 0.50),
        percentile(&total.query_us, 0.99),
    );

    if !failures.is_empty() {
        return Err(failures.join("; ").into());
    }
    Ok(())
}
