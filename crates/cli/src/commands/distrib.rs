//! `ustream distrib-coord` / `ustream distrib-site` — the fault-tolerant
//! distributed tier from the command line.
//!
//! `distrib-coord` binds the coordinator, prints the bound address on
//! stdout (scripts parse that line, same contract as `ustream serve`) and
//! supervises it, printing a liveness report every `--stats-every`
//! seconds until `--duration` elapses (or forever).
//!
//! `distrib-site` replays a stream CSV through a local engine wrapped in a
//! [`Site`]: ECF deltas ship to the coordinator every `--delta-every`
//! records with bounded-backoff retry, rotated checkpoints cover crashes,
//! and `--resume` picks up from the newest readable checkpoint generation
//! — the replay skips the records that state already covers, so nothing
//! is double-counted after a respawn.

use crate::args::{CliError, Flags};
use crate::commands::load_stream;
use std::time::Duration;
use umicro::UMicroConfig;
use ustream_common::DataStream;
use ustream_distrib::{
    CheckpointPolicy, Coordinator, CoordinatorConfig, DurabilityPolicy, RetryPolicy, Site,
    SiteConfig,
};
use ustream_engine::EngineBuilder;

/// Runs `distrib-coord`.
pub fn run_coord(flags: &Flags) -> Result<(), CliError> {
    let addr = flags.get_str("addr", "127.0.0.1:7272");
    let wal_base: Option<String> = flags.get_opt("wal")?;
    let resume: bool = flags.get("resume", 0u8)? != 0;
    if resume && wal_base.is_none() {
        return Err("--resume requires --wal <base>".into());
    }
    let cfg = CoordinatorConfig {
        suspicion_timeout: Duration::from_millis(flags.get("suspicion-ms", 10_000u64)?),
        snapshot_every_epochs: flags.get("snapshot-epochs", 4u64)?,
        durability: wal_base.map(|base| DurabilityPolicy {
            base,
            generations: flags.get("wal-generations", 3u64).unwrap_or(3),
            snapshot_every_epochs: flags.get("wal-snapshot-epochs", 32u64).unwrap_or(32),
        }),
        ..CoordinatorConfig::default()
    };
    let duration = flags.get_opt::<u64>("duration")?.map(Duration::from_secs);
    let stats_every = Duration::from_secs(flags.get("stats-every", 10u64)?.max(1));

    let coord = if resume {
        Coordinator::resume(addr.as_str(), cfg)?
    } else {
        Coordinator::bind(addr.as_str(), cfg)?
    };
    println!("listening on {}", coord.addr());
    if let Some(rec) = coord.stats().recovery {
        println!(
            "resumed: snapshot-epochs={} wal-replayed={} wal-truncated={} wal-dropped={}B corrupt-generations={}",
            rec.snapshot_epochs,
            rec.wal_records_replayed,
            rec.wal_truncated,
            rec.wal_bytes_dropped,
            rec.corrupt_generations_skipped,
        );
    }

    let started = std::time::Instant::now();
    let mut last_report = std::time::Instant::now();
    loop {
        // lint:allow(no-sleep): coordinator supervision cadence, bounded per tick
        std::thread::sleep(Duration::from_millis(200));
        if started.elapsed() >= duration.unwrap_or(Duration::MAX) {
            break;
        }
        if last_report.elapsed() >= stats_every {
            last_report = std::time::Instant::now();
            let s = coord.stats();
            if !s.sites.is_empty() {
                let suspects = s.sites.iter().filter(|h| h.suspect).count();
                println!(
                    "sites={} suspects={} epochs={} dups={} gaps={} rejected={} clusters={} points={} wal-records={} wal-bytes={} snapshots={} snapshot-age={}",
                    s.sites.len(),
                    suspects,
                    s.epochs_applied,
                    s.duplicates_dropped,
                    s.gaps_nacked,
                    s.frames_rejected,
                    s.global_clusters,
                    s.total_points,
                    s.wal_records,
                    s.wal_bytes,
                    s.snapshots_written,
                    s.last_snapshot_age_epochs,
                );
                for h in &s.sites {
                    println!(
                        "  site={} applied={} points={} tick={} heard={}ms suspect={}",
                        h.site, h.last_applied, h.points, h.last_tick, h.last_heard_ms, h.suspect,
                    );
                }
            }
        }
    }
    let final_stats = coord.shutdown();
    println!(
        "final: sites={} epochs={} dups={} gaps={} rejected={} clusters={} points={}",
        final_stats.sites.len(),
        final_stats.epochs_applied,
        final_stats.duplicates_dropped,
        final_stats.gaps_nacked,
        final_stats.frames_rejected,
        final_stats.global_clusters,
        final_stats.total_points,
    );
    Ok(())
}

/// Runs `distrib-site`.
pub fn run_site(flags: &Flags) -> Result<(), CliError> {
    let input = flags.require("in")?.to_string();
    let coord_addr = flags.require("coord")?.to_string();
    let site_id: u64 = flags.get("site", 0u64)?;
    let n_micro: usize = flags.get("n-micro", 100)?;
    let shards: usize = flags.get("shards", 1)?;
    let delta_every: u64 = flags.get("delta-every", 256u64)?;
    let deadline_ms: u64 = flags.get("deadline-ms", 5_000u64)?;
    let retries: u32 = flags.get("retries", 5u32)?;
    let checkpoint: Option<String> = flags.get_opt("checkpoint")?;
    let checkpoint_every: u64 = flags.get("checkpoint-every", 10_000u64)?;
    let generations: u64 = flags.get("checkpoint-generations", 3u64)?;
    let resume: bool = flags.get("resume", 0u8)? != 0;
    if resume && checkpoint.is_none() {
        return Err("--resume requires --checkpoint <base>".into());
    }

    let stream = load_stream(&input)?;
    let dims = stream.dims();
    if dims == 0 {
        return Err(format!("{input}: empty stream").into());
    }

    let mut cfg = SiteConfig::new(site_id, &coord_addr);
    cfg.delta_every = delta_every;
    cfg.io_deadline = Duration::from_millis(deadline_ms);
    cfg.retry = RetryPolicy {
        max_attempts: retries,
        ..RetryPolicy::default()
    };
    cfg.checkpoint = checkpoint.map(|base| CheckpointPolicy {
        base,
        generations,
        every_points: checkpoint_every,
    });

    let (mut site, skip) = if resume {
        let (site, covered) = Site::resume(cfg)?;
        println!("resumed site {site_id}: checkpoint covers {covered} records");
        (site, covered)
    } else {
        let engine =
            EngineBuilder::new(UMicroConfig::new(n_micro, dims).map_err(|e| e.to_string())?)
                .shards(shards)
                .build()?;
        (Site::attach(engine, cfg)?, 0)
    };

    let started = std::time::Instant::now();
    for point in stream.skip(skip as usize) {
        site.push(point)?;
    }
    let stats = site.finish()?;
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    println!(
        "site {site_id}: {} records in {:.2}s ({:.0} rec/s)",
        stats.points,
        secs,
        (stats.points.saturating_sub(skip)) as f64 / secs,
    );
    println!(
        "epochs={} resyncs={} retries={} sync-failures={} checkpoints={} wire={}B in {} frames",
        stats.epochs_acked,
        stats.full_resyncs,
        stats.send_retries,
        stats.sync_failures,
        stats.checkpoints_written,
        stats.bytes_sent,
        stats.frames_sent,
    );
    Ok(())
}
