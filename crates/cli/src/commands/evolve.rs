//! `ustream evolve` — evolution report between the two most recent windows
//! of a stream: which clusters emerged, faded, persisted, and how far the
//! persisted ones drifted.

use crate::args::{CliError, Flags};
use crate::commands::load_stream;
use umicro::{compare_windows, ClusterChange, HorizonAnalyzer, UMicro, UMicroConfig};
use ustream_common::DataStream;
use ustream_snapshot::PyramidConfig;

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), CliError> {
    let input = flags.require("in")?;
    let n_micro: usize = flags.get("n-micro", 100)?;
    let window: u64 = flags.get("window", 10_000)?;
    let min_weight: f64 = flags.get("min-weight", 5.0)?;

    let stream = load_stream(input)?;
    let dims = stream.dims();
    let mut alg = UMicro::new(UMicroConfig::new(n_micro, dims)?);
    let mut hz = HorizonAnalyzer::new(PyramidConfig::new(2, 6)?);
    let mut now = 0;
    for p in stream {
        alg.insert(&p);
        now = p.timestamp();
        hz.record(now, &alg);
    }

    let recent = hz
        .horizon_clusters(now, window)
        .map_err(|e| format!("recent window: {e}"))?;
    let earlier_end = now.saturating_sub(window);
    let earlier = match hz.horizon_clusters(earlier_end, window) {
        Ok(w) => w,
        Err(_) => hz
            .clusters_at(earlier_end)
            .cloned()
            .ok_or("nothing recorded before the earlier window")?,
    };

    let report = compare_windows(&earlier, &recent, min_weight);
    println!(
        "evolution between (t-{}..t-{window}] and (t-{window}..t] at t={now}:",
        2 * window
    );
    println!(
        "  emerged {}  faded {}  persisted {}  mean drift {:.4}  turbulence {:.2}",
        report.emerged(),
        report.faded(),
        report.persisted(),
        report.mean_drift,
        report.turbulence()
    );
    for change in report.changes.iter().take(30) {
        match change {
            ClusterChange::Emerged { id, weight } => {
                println!("  + cluster {id}: emerged with weight {weight:.1}")
            }
            ClusterChange::Faded { id, weight } => {
                println!("  - cluster {id}: faded (had weight {weight:.1})")
            }
            ClusterChange::Persisted {
                id,
                weight_before,
                weight_after,
                centroid_shift,
            } => println!(
                "  = cluster {id}: {weight_before:.1} -> {weight_after:.1}, drifted {centroid_shift:.4}"
            ),
        }
    }
    if report.changes.len() > 30 {
        println!("  … ({} more changes)", report.changes.len() - 30);
    }
    Ok(())
}
