//! `ustream stream` — replay a stream CSV through the sharded
//! [`StreamEngine`]: concurrent ingestion, periodic exact ECF merges,
//! novelty alerts and a per-shard throughput breakdown from the command
//! line.

use crate::args::{CliError, Flags};
use crate::commands::load_stream;
use std::time::Duration;
use umicro::UMicroConfig;
use ustream_common::DataStream;
use ustream_engine::{
    ClusterQuery, EngineBuilder, EngineConfig, LoadPolicy, LoadStage, SnapshotBudget, StreamEngine,
    ValidationPolicy, WatchdogConfig,
};
use ustream_snapshot::PyramidConfig;

fn parse_validation(s: &str) -> Result<Option<ValidationPolicy>, CliError> {
    match s {
        "reject" => Ok(Some(ValidationPolicy::Reject)),
        "clamp" => Ok(Some(ValidationPolicy::Clamp)),
        "quarantine" => Ok(Some(ValidationPolicy::Quarantine)),
        "off" => Ok(None),
        other => {
            Err(format!("--validation must be reject|clamp|quarantine|off (got {other})").into())
        }
    }
}

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), CliError> {
    let input = flags.require("in")?;
    let shards: usize = flags.get("shards", 4)?;
    let n_micro: usize = flags.get("n-micro", 100)?;
    let k: usize = flags.get("k", 5)?;
    let seed: u64 = flags.get("seed", 42)?;
    let snapshot_every: u64 = flags.get("snapshot-every", 1_024)?;
    let batch: usize = flags.get("batch", 4_096)?;
    let novelty: f64 = flags.get("novelty-factor", 8.0)?;
    let alpha: u64 = flags.get("alpha", 2)?;
    let l: u32 = flags.get("l", 6)?;
    let horizon: Option<u64> = flags.get_opt("horizon")?;
    let validation = parse_validation(&flags.get_str("validation", "reject"))?;
    let checkpoint: Option<String> = flags.get_opt("checkpoint")?;
    let checkpoint_every: Option<u64> = flags.get_opt("checkpoint-every")?;
    let checkpoint_generations: u64 = flags.get("checkpoint-generations", 1)?;
    let resume: Option<String> = flags.get_opt("resume")?;
    let load_policy = match flags.get_str("load-policy", "off").as_str() {
        "off" => None,
        "on" => Some(LoadPolicy::default()),
        other => {
            return Err(format!("--load-policy must be on|off (got {other})").into());
        }
    };
    let keep_per_mille: Option<u64> = flags.get_opt("keep-per-mille")?;
    let watchdog_ms: Option<u64> = flags.get_opt("watchdog")?;
    let budget_snapshots: Option<usize> = flags.get_opt("snapshot-budget")?;
    let budget_bytes: Option<u64> = flags.get_opt("snapshot-budget-bytes")?;
    let drain_timeout: Option<u64> = flags.get_opt("drain-timeout")?;
    if shards == 0 || shards > 1 << 16 {
        return Err(format!("--shards must be in 1..={} (got {shards})", 1u32 << 16).into());
    }
    if snapshot_every == 0 {
        return Err("--snapshot-every must be positive".into());
    }
    if checkpoint_every.is_some() && checkpoint.is_none() {
        return Err("--checkpoint-every needs --checkpoint <path>".into());
    }
    if !(1..=64).contains(&checkpoint_generations) {
        return Err(format!(
            "--checkpoint-generations must be in 1..=64 (got {checkpoint_generations})"
        )
        .into());
    }
    if keep_per_mille.is_some_and(|k| !(1..=1000).contains(&k)) {
        return Err("--keep-per-mille must be in 1..=1000".into());
    }
    if keep_per_mille.is_some() && load_policy.is_none() {
        return Err("--keep-per-mille needs --load-policy on".into());
    }

    let stream = load_stream(input)?;
    let dims = stream.dims();
    let points: Vec<_> = stream.collect();

    let mut engine = match resume {
        Some(ref path) => {
            // The checkpoint carries the full engine configuration; the
            // clustering flags are ignored on resume.
            let engine = StreamEngine::restore(path)
                .map_err(|e| format!("cannot resume from {path}: {e}"))?;
            println!(
                "resumed from {path}: {} records already processed",
                engine.points_processed()
            );
            engine
        }
        None => {
            let mut config = EngineConfig::new(UMicroConfig::new(n_micro, dims)?)
                .with_shards(shards)
                .with_snapshot_every(snapshot_every)
                .with_pyramid(PyramidConfig::new(alpha, l)?)
                .with_validation(validation);
            config = if novelty > 1.0 {
                config.with_novelty_factor(Some(novelty))
            } else {
                config.with_novelty_factor(None)
            };
            if let (Some(every), Some(path)) = (checkpoint_every, checkpoint.as_deref()) {
                if every == 0 {
                    return Err("--checkpoint-every must be positive".into());
                }
                config = config
                    .with_auto_checkpoint(every, path)
                    .with_checkpoint_generations(checkpoint_generations);
            }
            if let Some(mut policy) = load_policy {
                if let Some(keep) = keep_per_mille {
                    policy.keep_per_mille = keep;
                }
                config = config.with_load_policy(policy);
            }
            if let Some(ms) = watchdog_ms {
                if ms == 0 {
                    return Err("--watchdog must be a positive stall deadline in ms".into());
                }
                config = config.with_watchdog(WatchdogConfig {
                    stall_deadline_ms: ms,
                    ..WatchdogConfig::default()
                });
            }
            if budget_snapshots.is_some() || budget_bytes.is_some() {
                config = config.with_snapshot_budget(SnapshotBudget {
                    max_snapshots: budget_snapshots,
                    max_bytes: budget_bytes,
                });
            }
            EngineBuilder::from_config(config)
                .build()
                .map_err(|e| format!("cannot start engine: {e}"))?
        }
    };
    for part in points.chunks(batch) {
        engine
            .push_slice(part)
            .map_err(|e| format!("ingestion failed: {e}"))?;
    }
    engine.flush();
    if let Some(ref path) = checkpoint {
        engine
            .checkpoint(path)
            .map_err(|e| format!("checkpoint failed: {e}"))?;
        println!("checkpoint written to {path}");
    }

    // All read-side queries below go through the unified `ClusterQuery`
    // surface — the same API the serving front-end answers over the wire.
    let mac = ClusterQuery::macro_cluster(&mut engine, k, seed);
    println!("macro-clusters (k = {k}):");
    for (i, (c, w)) in mac.centroids.iter().zip(&mac.weights).enumerate() {
        let head: Vec<String> = c.iter().take(5).map(|v| format!("{v:.3}")).collect();
        println!(
            "  #{i}: weight {w:>9.1}  centroid [{}{}]",
            head.join(", "),
            if c.len() > 5 { ", …" } else { "" }
        );
    }

    if let Some(h) = horizon {
        match ClusterQuery::horizon_clusters(&mut engine, h) {
            Ok(window) => println!(
                "\nwindow (last {h} ticks): {} micro-clusters, {:.0} points",
                window.len(),
                window.total_count()
            ),
            Err(e) => println!("\nwindow (last {h} ticks): unavailable ({e})"),
        }
    }

    let alerts = engine.drain_alerts();
    if !alerts.is_empty() {
        println!("\nnovelty alerts: {}", alerts.len());
        for a in alerts.iter().take(5) {
            println!(
                "  tick {:>8}: isolation {:.2} (baseline {:.2})",
                a.timestamp, a.isolation, a.baseline
            );
        }
    }

    let quarantined = engine.drain_quarantine();
    if !quarantined.is_empty() {
        println!("\nquarantined records: {}", quarantined.len());
        for q in quarantined.iter().take(5) {
            println!("  tick {:>8}: {}", q.point.timestamp(), q.fault);
        }
    }

    let report = match drain_timeout {
        Some(ms) => {
            let outcome = engine.shutdown_drain(Duration::from_millis(ms));
            println!(
                "\ndrain: {} ms ({} the {ms} ms deadline)",
                outcome.drain_millis,
                if outcome.deadline_met {
                    "met"
                } else {
                    "MISSED"
                }
            );
            outcome.report
        }
        None => engine.shutdown(),
    };
    println!(
        "\nprocessed {} records to tick {}; {} live micro-clusters, \
         {} snapshots retained",
        report.points_processed, report.last_tick, report.live_clusters, report.snapshots_retained
    );
    println!("health: {}", report.health);
    if report.points_rejected + report.points_clamped + report.points_quarantined > 0 {
        println!(
            "validation: {} rejected, {} clamped, {} quarantined ({} dropped from quarantine)",
            report.points_rejected,
            report.points_clamped,
            report.points_quarantined,
            report.quarantine_dropped
        );
    }
    if report.checkpoints_written > 0 {
        println!("auto-checkpoints written: {}", report.checkpoints_written);
    }
    if !report.load_transitions.is_empty() || report.load_stage != LoadStage::Normal {
        println!(
            "degradation ladder: final stage {}, {} shed, {} sampled out (keep {}‰)",
            report.load_stage,
            report.points_shed,
            report.points_sampled_out,
            report.sampling_keep_per_mille
        );
        for tr in &report.load_transitions {
            println!(
                "  {:>8} ms: {} -> {} (pressure {:.2})",
                tr.at_ms, tr.from, tr.to, tr.pressure
            );
        }
    }
    if report.stalls_detected > 0 {
        println!(
            "watchdog: {} stall(s) detected and rescued",
            report.stalls_detected
        );
    }
    if report.snapshot_budget_evictions > 0 {
        println!(
            "snapshot budget: {} evictions, {} bytes retained, horizon error bound {:.3}",
            report.snapshot_budget_evictions, report.snapshot_bytes, report.horizon_error_bound
        );
    }
    if let Some(e) = &report.last_checkpoint_error {
        println!("last checkpoint error: {e}");
    }
    println!(
        "{} shard(s), {} exact merges @ {:.0} µs mean:",
        report.per_shard.len(),
        report.merges,
        report.mean_merge_micros
    );
    for s in &report.per_shard {
        println!(
            "  shard {}: {:>9} records ({:>9.0} pts/s), {:>4} live clusters, {} alerts",
            s.shard, s.processed, s.points_per_sec, s.live_clusters, s.alerts_raised
        );
    }
    Ok(())
}
