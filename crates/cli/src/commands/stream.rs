//! `ustream stream` — replay a stream CSV through the sharded
//! [`StreamEngine`]: concurrent ingestion, periodic exact ECF merges,
//! novelty alerts and a per-shard throughput breakdown from the command
//! line.

use crate::args::{CliError, Flags};
use crate::commands::load_stream;
use umicro::UMicroConfig;
use ustream_common::DataStream;
use ustream_engine::{EngineConfig, StreamEngine};
use ustream_snapshot::PyramidConfig;

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), CliError> {
    let input = flags.require("in")?;
    let shards: usize = flags.get("shards", 4)?;
    let n_micro: usize = flags.get("n-micro", 100)?;
    let k: usize = flags.get("k", 5)?;
    let seed: u64 = flags.get("seed", 42)?;
    let snapshot_every: u64 = flags.get("snapshot-every", 1_024)?;
    let batch: usize = flags.get("batch", 4_096)?;
    let novelty: f64 = flags.get("novelty-factor", 8.0)?;
    let alpha: u64 = flags.get("alpha", 2)?;
    let l: u32 = flags.get("l", 6)?;
    let horizon: Option<u64> = flags.get_opt("horizon")?;
    if shards == 0 || shards > 1 << 16 {
        return Err(format!("--shards must be in 1..={} (got {shards})", 1u32 << 16).into());
    }
    if snapshot_every == 0 {
        return Err("--snapshot-every must be positive".into());
    }

    let stream = load_stream(input)?;
    let dims = stream.dims();
    let points: Vec<_> = stream.collect();

    let mut config = EngineConfig::new(UMicroConfig::new(n_micro, dims)?)
        .with_shards(shards)
        .with_snapshot_every(snapshot_every)
        .with_pyramid(PyramidConfig::new(alpha, l)?);
    config = if novelty > 1.0 {
        config.with_novelty_factor(Some(novelty))
    } else {
        config.with_novelty_factor(None)
    };

    let engine = StreamEngine::start(config);
    for part in points.chunks(batch) {
        engine
            .push_slice(part)
            .map_err(|e| format!("ingestion failed: {e}"))?;
    }
    engine.flush();

    let mac = engine.macro_clusters(k, seed);
    println!("macro-clusters (k = {k}):");
    for (i, (c, w)) in mac.centroids.iter().zip(&mac.weights).enumerate() {
        let head: Vec<String> = c.iter().take(5).map(|v| format!("{v:.3}")).collect();
        println!(
            "  #{i}: weight {w:>9.1}  centroid [{}{}]",
            head.join(", "),
            if c.len() > 5 { ", …" } else { "" }
        );
    }

    if let Some(h) = horizon {
        match engine.horizon_clusters(h) {
            Ok(window) => println!(
                "\nwindow (last {h} ticks): {} micro-clusters, {:.0} points",
                window.len(),
                window.total_count()
            ),
            Err(e) => println!("\nwindow (last {h} ticks): unavailable ({e})"),
        }
    }

    let alerts = engine.drain_alerts();
    if !alerts.is_empty() {
        println!("\nnovelty alerts: {}", alerts.len());
        for a in alerts.iter().take(5) {
            println!(
                "  tick {:>8}: isolation {:.2} (baseline {:.2})",
                a.timestamp, a.isolation, a.baseline
            );
        }
    }

    let report = engine.shutdown();
    println!(
        "\nprocessed {} records to tick {}; {} live micro-clusters, \
         {} snapshots retained",
        report.points_processed, report.last_tick, report.live_clusters, report.snapshots_retained
    );
    println!(
        "{} shard(s), {} exact merges @ {:.0} µs mean:",
        report.per_shard.len(),
        report.merges,
        report.mean_merge_micros
    );
    for s in &report.per_shard {
        println!(
            "  shard {}: {:>9} records ({:>9.0} pts/s), {:>4} live clusters, {} alerts",
            s.shard, s.processed, s.points_per_sec, s.live_clusters, s.alerts_raised
        );
    }
    Ok(())
}
