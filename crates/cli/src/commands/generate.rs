//! `ustream generate` — synthesize an uncertain stream to CSV.

use crate::args::{CliError, Flags};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use ustream_synth::io::write_stream;
use ustream_synth::profiles::profile_stream;
use ustream_synth::{DatasetProfile, NoiseVariant, NoisyStream};

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), CliError> {
    let profile_name = flags.get_str("profile", "syndrift");
    let profile = DatasetProfile::from_name(&profile_name)
        .ok_or_else(|| format!("unknown profile: {profile_name}"))?;
    let eta: f64 = flags.get("eta", 0.5)?;
    let len: usize = flags.get("len", 100_000)?;
    let seed: u64 = flags.get("seed", 42)?;
    let out_path = flags.require("out")?;
    let per_record: Option<f64> = flags.get_opt("per-record")?;

    if !(0.0..=10.0).contains(&eta) {
        return Err(format!("--eta {eta} out of range [0, 10]").into());
    }

    let clean = profile_stream(profile, len, seed);
    let mut noisy = NoisyStream::new(clean, eta, StdRng::seed_from_u64(seed ^ 0x0e7a));
    if let Some(spread) = per_record {
        if !(0.0..1.0).contains(&spread) {
            return Err(format!("--per-record {spread} must be in [0, 1)").into());
        }
        noisy = noisy.with_variant(NoiseVariant::PerRecord { spread });
    }

    let file = File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?;
    let written = write_stream(noisy, file)?;
    eprintln!(
        "wrote {written} records ({}, {} dims, eta={eta}) to {out_path}",
        profile.name(),
        profile.dims()
    );
    Ok(())
}
