//! `ustream inspect` — print structural statistics of a stream CSV.

use crate::args::{CliError, Flags};
use crate::commands::load_stream;
use std::collections::BTreeMap;
use ustream_common::stats::DimStats;
use ustream_common::{ClassLabel, DataStream};

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), CliError> {
    let input = flags.require("in")?;
    let stream = load_stream(input)?;
    let dims = stream.dims();

    let mut value_stats = DimStats::new(dims);
    let mut error_stats = DimStats::new(dims);
    let mut classes: BTreeMap<ClassLabel, u64> = BTreeMap::new();
    let mut unlabelled = 0u64;
    let mut count = 0u64;
    let mut first_t = u64::MAX;
    let mut last_t = 0u64;

    for p in stream {
        count += 1;
        value_stats.push(p.values());
        error_stats.push(p.errors());
        match p.label() {
            Some(l) => *classes.entry(l).or_insert(0) += 1,
            None => unlabelled += 1,
        }
        first_t = first_t.min(p.timestamp());
        last_t = last_t.max(p.timestamp());
    }
    if count == 0 {
        return Err("stream is empty".into());
    }

    println!("records: {count} ({dims} dims, ticks {first_t}..{last_t})");
    println!("classes:");
    for (label, n) in &classes {
        println!("  {label}: {n} ({:.1}%)", 100.0 * *n as f64 / count as f64);
    }
    if unlabelled > 0 {
        println!("  unlabelled: {unlabelled}");
    }

    let vm = value_stats.means();
    let vs = value_stats.std_devs();
    let em = error_stats.means();
    println!("per-dimension [mean ± std | mean ψ | relative noise ψ/σ]:");
    for j in 0..dims.min(20) {
        let rel = if vs[j] > 0.0 { em[j] / vs[j] } else { 0.0 };
        println!(
            "  dim {j:>2}: {:>12.4} ± {:<12.4} | ψ {:>10.4} | {:.2}",
            vm[j], vs[j], em[j], rel
        );
    }
    if dims > 20 {
        println!("  … ({} more dimensions)", dims - 20);
    }
    Ok(())
}
