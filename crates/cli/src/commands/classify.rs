//! `ustream classify` — train/evaluate the per-class micro-cluster
//! classifier on a labelled stream CSV.

use crate::args::{CliError, Flags};
use crate::commands::load_stream;
use std::collections::BTreeMap;
use umicro::{MicroClassifier, UMicroConfig};
use ustream_common::{ClassLabel, DataStream, UncertainPoint};

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), CliError> {
    let input = flags.require("in")?;
    let budget: usize = flags.get("budget", 25)?;
    let train_frac: f64 = flags.get("train-frac", 0.7)?;
    if !(0.0 < train_frac && train_frac < 1.0) {
        return Err(format!("--train-frac {train_frac} must be in (0, 1)").into());
    }

    let stream = load_stream(input)?;
    let dims = stream.dims();
    let points: Vec<UncertainPoint> = stream.collect();
    let labelled = points.iter().filter(|p| p.label().is_some()).count();
    if labelled < points.len() {
        return Err(format!(
            "classification needs a fully labelled stream ({labelled}/{} labelled)",
            points.len()
        )
        .into());
    }
    if points.len() < 10 {
        return Err("stream too short for a train/test split".into());
    }

    let split = (points.len() as f64 * train_frac) as usize;
    let mut clf = MicroClassifier::new(UMicroConfig::new(budget, dims)?);
    for p in &points[..split] {
        clf.train_labelled(p);
    }
    eprintln!(
        "trained on {split} records, {} classes, {budget} micro-clusters per class",
        clf.classes().count()
    );

    let mut per_class: BTreeMap<ClassLabel, (usize, usize)> = BTreeMap::new();
    let mut correct = 0usize;
    let mut confidence_sum = 0.0;
    let test = &points[split..];
    for p in test {
        let truth = p.label().expect("labelled");
        let entry = per_class.entry(truth).or_insert((0, 0));
        entry.1 += 1;
        if let Some(c) = clf.classify(p) {
            confidence_sum += c.confidence();
            if c.label == truth {
                correct += 1;
                entry.0 += 1;
            }
        }
    }

    println!(
        "accuracy: {:.4} over {} held-out records (mean confidence {:.3})",
        correct as f64 / test.len() as f64,
        test.len(),
        confidence_sum / test.len() as f64
    );
    println!("per-class recall:");
    for (label, (ok, total)) in per_class {
        println!(
            "  {label}: {:.4} ({ok}/{total})",
            ok as f64 / total.max(1) as f64
        );
    }
    Ok(())
}
