//! Flag parsing for the `ustream` CLI (no external dependency; a handful of
//! typed `--key value` flags per subcommand).

use std::collections::BTreeMap;

/// The CLI's error type: a plain message.
pub type CliError = Box<dyn std::error::Error>;

/// Parsed `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
}

impl Flags {
    /// Parses the remaining argv after the subcommand.
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Result<Self, CliError> {
        let mut values = BTreeMap::new();
        while let Some(arg) = argv.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected positional argument: {arg}"))?;
            let value = argv
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            values.insert(key.to_string(), value);
        }
        Ok(Self { values })
    }

    /// A required string flag.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}").into())
    }

    /// An optional string flag with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A typed flag with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            Some(v) => v
                .parse()
                .map_err(|e| format!("flag --{key}={v} invalid: {e}").into()),
            None => Ok(default),
        }
    }

    /// An optional typed flag.
    pub fn get_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|e| format!("flag --{key}={v} invalid: {e}").into()),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Flags, CliError> {
        Flags::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_typed_flags() {
        let f = parse("--len 100 --eta 0.5 --out x.csv").unwrap();
        assert_eq!(f.get("len", 0usize).unwrap(), 100);
        assert_eq!(f.get("eta", 0.0f64).unwrap(), 0.5);
        assert_eq!(f.require("out").unwrap(), "x.csv");
        assert_eq!(f.get_str("profile", "syndrift"), "syndrift");
        assert_eq!(f.get_opt::<f64>("per-record").unwrap(), None);
    }

    #[test]
    fn missing_required_flag() {
        let f = parse("").unwrap();
        assert!(f.require("in").is_err());
    }

    #[test]
    fn bad_value_reports_flag() {
        let f = parse("--len abc").unwrap();
        let err = f.get("len", 0usize).unwrap_err();
        assert!(err.to_string().contains("--len"));
    }

    #[test]
    fn positional_rejected() {
        assert!(parse("generate").is_err());
        assert!(parse("--eta").is_err());
    }
}
