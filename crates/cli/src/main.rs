//! `ustream` — command-line front end for the uncertain-streams workspace.
//!
//! ```text
//! ustream generate --profile syndrift --eta 0.5 --len 100000 --out stream.csv
//! ustream cluster  --in stream.csv --algorithm umicro --n-micro 100 --k 5
//! ustream classify --in stream.csv --budget 25 --train-frac 0.7
//! ustream inspect  --in stream.csv
//! ```
//!
//! Streams are the CSV dialect of `ustream_synth::io` (values + ψ columns);
//! `generate` writes them, every other command reads them, so workloads are
//! reproducible artifacts rather than in-process state.

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
ustream <command> [--flag value]...

commands:
  generate   synthesize an uncertain stream to CSV
             --profile syndrift|network|forest|donation  (default syndrift)
             --eta <f64>           noise level               (default 0.5)
             --len <usize>         records                   (default 100000)
             --seed <u64>          RNG seed                  (default 42)
             --per-record <f64>    per-record psi spread in [0,1) (default: off)
             --out <path>          output CSV                (required)
  cluster    cluster a stream and report quality
             --in <path>           input CSV                 (required)
             --algorithm umicro|clustream|denstream|stream-kmeans (default umicro)
             --n-micro <usize>     micro-cluster budget      (default 100)
             --k <usize>           macro clusters            (default 5)
             --epsilon <f64>       DenStream radius          (default 0.5)
             --seed <u64>          macro k-means seed        (default 42)
  classify   train/test a per-class micro-cluster classifier
             --in <path>           labelled input CSV        (required)
             --budget <usize>      micro-clusters per class  (default 25)
             --train-frac <f64>    training fraction         (default 0.7)
  horizon    cluster and answer trailing-window queries (pyramidal frame)
             --in <path>           input CSV                 (required)
             --horizons <list>     comma-separated tick horizons (default 1000,10000)
             --n-micro <usize>     micro-cluster budget      (default 100)
             --k <usize>           macro clusters per window (default 5)
             --alpha <u64> --l <u32>  pyramid geometry       (default 2, 6)
  evolve     evolution report between the last two windows
             --in <path>           input CSV                 (required)
             --window <u64>        window length in ticks    (default 10000)
             --min-weight <f64>    ignore lighter clusters   (default 5)
  stream     replay through the sharded analytics engine
             --in <path>           input CSV                 (required)
             --shards <usize>      ingestion shard workers   (default 4)
             --n-micro <usize>     global micro-cluster budget (default 100)
             --k <usize>           macro clusters            (default 5)
             --snapshot-every <u64> ticks between merges     (default 1024)
             --novelty-factor <f64> alert threshold; <=1 disables (default 8)
             --horizon <u64>       also report a trailing window (default: off)
             --batch <usize>       push-slice batch size     (default 4096)
             --alpha <u64> --l <u32>  pyramid geometry       (default 2, 6)
             --validation reject|clamp|quarantine|off  malformed-record policy (default reject)
             --checkpoint <path>   write engine state after the replay
             --checkpoint-every <u64>  also auto-checkpoint every n records
             --checkpoint-generations <u64>  rotate auto-checkpoints across n files (default 1)
             --resume <path>       restore engine state before the replay
             --load-policy on|off  degradation ladder under channel pressure (default off)
             --keep-per-mille <u64>  sampling admission rate on the ladder (default 500)
             --watchdog <u64>      stall watchdog deadline in ms (default: off)
             --snapshot-budget <usize>  cap retained snapshots (default: off)
             --snapshot-budget-bytes <u64>  cap retained snapshot bytes (default: off)
             --drain-timeout <u64> graceful drain deadline in ms before shutdown
  serve      boot the multi-tenant serving front-end (USRV protocol)
             --addr <host:port>    bind address; port 0 = ephemeral (default 127.0.0.1:7171)
             --workers <usize>     request worker threads    (default 4)
             --queue <usize>       request queue bound       (default 256)
             --buckets <usize>     tenant-map lock shards    (default 16)
             --quota <u64>         per-tenant points/sec quota (default 1000000)
             --governor-ms <u64>   admission governor poll interval (default 100)
             --checkpoint <path>   USRVMAP tenant-map checkpoint target
             --restore <path>      restore the tenant map at boot
             --duration <u64>      serve for n seconds, then drain (default: until shutdown)
             --drain-timeout <u64> graceful drain deadline in ms (default 10000)
  drive      multi-tenant load driver against a running serve instance
             --addr <host:port>    server address            (required)
             --tenants <usize>     simulated tenants         (default 100)
             --conns <usize>       client connections        (default 4)
             --batch <usize>       points per ingest batch   (default 100)
             --batches <u64>       rounds per tenant         (default 10)
             --duration <u64>      drive for n seconds instead of a round count
             --dims <usize>        point dimensionality      (default 2)
             --n-micro <usize>     per-tenant micro-cluster budget (default 16)
             --seed <u64>          workload seed             (default 42)
  distrib-coord  boot the distributed-tier coordinator (exact ECF delta merge)
             --addr <host:port>    bind address; port 0 = ephemeral (default 127.0.0.1:7272)
             --suspicion-ms <u64>  flag sites silent longer than this (default 10000)
             --snapshot-epochs <u64>  pyramidal snapshot cadence in epochs (default 4)
             --stats-every <u64>   liveness report interval in seconds (default 10)
             --duration <u64>      run for n seconds, then report and exit (default: forever)
             --wal <base>          epoch-commit WAL at <base>.wal, snapshots at <base>.N
             --resume <0|1>        recover from the newest snapshot + WAL tail (needs --wal)
             --wal-generations <u64>  snapshot rotation slots (default 3)
             --wal-snapshot-epochs <u64>  epochs between durable snapshots (default 32)
  distrib-site   replay a stream CSV as one distributed site
             --in <path>           input CSV                 (required)
             --coord <host:port>   coordinator address       (required)
             --site <u64>          site id, unique per coordinator (default 0)
             --n-micro <usize>     micro-cluster budget      (default 100)
             --shards <usize>      local ingestion shards    (default 1)
             --delta-every <u64>   records between delta epochs (default 256)
             --deadline-ms <u64>   per-operation socket deadline (default 5000)
             --retries <u32>       ship retries before an epoch rides the next (default 5)
             --checkpoint <base>   rotate engine checkpoints at <base>.N
             --checkpoint-every <u64>  records between checkpoints (default 10000)
             --checkpoint-generations <u64>  rotation slots (default 3)
             --resume 1            restore from the newest checkpoint generation and
                                   skip the records it covers (full resync on reconnect)
  inspect    print stream statistics
             --in <path>           input CSV                 (required)
";

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let command = match argv.next() {
        Some(c) => c,
        None => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let flags = match args::Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    // Downstream tools (`ustream inspect | head`) may close stdout early;
    // treat the resulting broken-pipe print panic as a clean exit, and keep
    // its backtrace out of stderr.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("Broken pipe") {
            default_hook(info);
        }
    }));
    let outcome = std::panic::catch_unwind(|| match command.as_str() {
        "generate" => commands::generate::run(&flags),
        "cluster" => commands::cluster::run(&flags),
        "classify" => commands::classify::run(&flags),
        "horizon" => commands::horizon::run(&flags),
        "evolve" => commands::evolve::run(&flags),
        "stream" => commands::stream::run(&flags),
        "serve" => commands::serve::run(&flags),
        "drive" => commands::drive::run(&flags),
        "distrib-coord" => commands::distrib::run_coord(&flags),
        "distrib-site" => commands::distrib::run_site(&flags),
        "inspect" => commands::inspect::run(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command: {other}").into()),
    });

    match outcome {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if msg.contains("Broken pipe") {
                ExitCode::SUCCESS
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}
