//! Statistical simulators of the paper's real datasets.
//!
//! The evaluation uses three real datasets we cannot redistribute: Network
//! Intrusion (KDD Cup'99), Forest CoverType (UCI) and Charitable Donation
//! (KDD Cup'98). Each profile below reproduces the statistical properties
//! the paper's *analysis* actually leans on — dimensionality, number of
//! classes, class skew, burstiness and per-dimension scale diversity — so
//! the relative algorithm behaviour (who wins, and by how much) carries
//! over. See DESIGN.md §3 for the substitution table. When the real files
//! are available, [`crate::loader`] parses them instead.

use crate::mixture::{ArrivalModel, ClusterSpec, MixtureConfig, MixtureStream};
use crate::syndrift::SynDriftConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ustream_common::ClassLabel;

/// The four workloads of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetProfile {
    /// SynDrift — drifting synthetic clusters (Figures 2, 5, 8).
    SynDrift,
    /// Network Intrusion / KDD'99-like (Figures 3, 6, 9).
    NetworkIntrusion,
    /// Forest CoverType-like (Figures 7, 10).
    ForestCover,
    /// Charitable Donation / KDD'98-like (Figure 4).
    CharitableDonation,
}

impl DatasetProfile {
    /// Human-readable name used in result tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetProfile::SynDrift => "SynDrift",
            DatasetProfile::NetworkIntrusion => "Network",
            DatasetProfile::ForestCover => "ForestCover",
            DatasetProfile::CharitableDonation => "Donation",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "syndrift" | "synthetic" => Some(DatasetProfile::SynDrift),
            "network" | "kdd99" | "intrusion" => Some(DatasetProfile::NetworkIntrusion),
            "forest" | "forestcover" | "covtype" => Some(DatasetProfile::ForestCover),
            "donation" | "charitable" | "kdd98" => Some(DatasetProfile::CharitableDonation),
            _ => None,
        }
    }

    /// Dimensionality of the profile's stream.
    pub fn dims(&self) -> usize {
        match self {
            DatasetProfile::SynDrift => 20,
            // 34 continuous attributes, as the paper uses for KDD'99.
            DatasetProfile::NetworkIntrusion => 34,
            // The 10 quantitative CoverType variables.
            DatasetProfile::ForestCover => 10,
            // KDD'98 quantitative fields (following [3], 54 are used here).
            DatasetProfile::CharitableDonation => 54,
        }
    }

    /// Number of ground-truth classes.
    pub fn classes(&self) -> usize {
        match self {
            DatasetProfile::SynDrift => 10,
            DatasetProfile::NetworkIntrusion => 5, // normal + 4 attack types
            DatasetProfile::ForestCover => 7,
            DatasetProfile::CharitableDonation => 6,
        }
    }

    /// Default stream length used by the figure regenerators.
    pub fn default_len(&self) -> usize {
        match self {
            DatasetProfile::SynDrift => 600_000,
            DatasetProfile::NetworkIntrusion => 494_021,
            DatasetProfile::ForestCover => 581_012,
            DatasetProfile::CharitableDonation => 95_412,
        }
    }
}

/// Builds the clean (zero-error) stream for a profile. The caller wraps it
/// in [`crate::NoisyStream`] to add the η uncertainty.
pub fn profile_stream(
    profile: DatasetProfile,
    len: usize,
    seed: u64,
) -> Box<dyn ustream_common::DataStream + Send> {
    match profile {
        DatasetProfile::SynDrift => {
            let mut cfg = SynDriftConfig::paper();
            cfg.len = len;
            Box::new(cfg.build(seed))
        }
        DatasetProfile::NetworkIntrusion => Box::new(network_intrusion(len, seed)),
        DatasetProfile::ForestCover => Box::new(forest_cover(len, seed)),
        DatasetProfile::CharitableDonation => Box::new(charitable_donation(len, seed)),
    }
}

/// Heavy-tailed per-dimension scale factors: network features span orders
/// of magnitude (durations in seconds vs byte counts in the millions).
fn heavy_tailed_scales(dims: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..dims)
        .map(|_| {
            let z: f64 = rng.gen_range(-1.5..2.5);
            10f64.powf(z) // scales from ~0.03 to ~300
        })
        .collect()
}

/// KDD'99-like stream: 34 continuous dimensions, 5 classes dominated by
/// `normal` (~60%), with attacks arriving in bursts. The small UMicro
/// advantage the paper reports on this dataset comes precisely from the
/// dominant-class skew, which this simulator reproduces.
pub fn network_intrusion(len: usize, seed: u64) -> MixtureStream {
    let dims = DatasetProfile::NetworkIntrusion.dims();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6b64_6439);
    let scales = heavy_tailed_scales(dims, &mut rng);

    // (class, fraction, how many sub-clusters, spread multiplier)
    // normal, dos, probe, r2l, u2r — proportions inspired by the 10% KDD set
    // but with normal dominant as the paper describes for the full stream.
    let blueprint: [(u32, f64, usize, f64); 5] = [
        (0, 0.60, 3, 1.0), // normal traffic, a few modes
        (1, 0.25, 2, 0.6), // DOS: tight, voluminous bursts
        (2, 0.08, 2, 0.8), // probing
        (3, 0.05, 1, 0.7), // r2l
        (4, 0.02, 1, 0.5), // u2r: rare
    ];

    let mut clusters = Vec::new();
    for (class, fraction, subs, spread) in blueprint {
        for _ in 0..subs {
            let centroid: Vec<f64> = scales.iter().map(|s| rng.gen_range(0.0..1.0) * s).collect();
            let radii: Vec<f64> = scales
                .iter()
                .map(|s| rng.gen_range(0.02..0.12) * s * spread)
                .collect();
            clusters.push(ClusterSpec::new(
                centroid,
                radii,
                fraction / subs as f64,
                ClassLabel(class),
            ));
        }
    }

    MixtureConfig {
        clusters,
        len,
        arrivals: ArrivalModel::Bursty {
            burst_prob: 0.0015,
            mean_len: 150.0,
        },
    }
    .build(seed)
}

/// Forest CoverType-like stream: 10 quantitative dimensions, 7 classes with
/// the real dataset's class proportions (two dominant, five minor) and
/// moderate per-dimension scale diversity. The diverse class distribution
/// is what drives the larger UMicro gap on this dataset.
pub fn forest_cover(len: usize, seed: u64) -> MixtureStream {
    let dims = DatasetProfile::ForestCover.dims();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x636f_7674);
    // Real covtype class proportions.
    let fractions = [0.365, 0.488, 0.062, 0.005, 0.016, 0.030, 0.034];
    // Elevation-like scales: some dimensions span thousands of metres,
    // others are small angles.
    let scales: Vec<f64> = (0..dims)
        .map(|j| {
            if j < 3 {
                1000.0
            } else {
                50.0 * (j as f64 + 1.0)
            }
        })
        .collect();

    let mut clusters = Vec::new();
    for (class, &fraction) in fractions.iter().enumerate() {
        // Each cover type gets two terrain modes.
        for _ in 0..2 {
            let centroid: Vec<f64> = scales.iter().map(|s| rng.gen_range(0.2..0.8) * s).collect();
            let radii: Vec<f64> = scales
                .iter()
                .map(|s| rng.gen_range(0.02..0.10) * s)
                .collect();
            clusters.push(ClusterSpec::new(
                centroid,
                radii,
                fraction / 2.0,
                ClassLabel(class as u32),
            ));
        }
    }

    MixtureConfig {
        clusters,
        len,
        arrivals: ArrivalModel::Iid,
    }
    .build(seed)
}

/// KDD'98 Charitable-Donation-like stream: 54 quantitative dimensions, six
/// donor sub-populations with mixed skew.
pub fn charitable_donation(len: usize, seed: u64) -> MixtureStream {
    let dims = DatasetProfile::CharitableDonation.dims();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x646f_6e61);
    let fractions = [0.35, 0.25, 0.15, 0.12, 0.08, 0.05];
    let scales: Vec<f64> = (0..dims)
        .map(|_| 10f64.powf(rng.gen_range(-0.5..1.5)))
        .collect();

    let mut clusters = Vec::new();
    for (class, &fraction) in fractions.iter().enumerate() {
        let centroid: Vec<f64> = scales.iter().map(|s| rng.gen_range(0.0..1.0) * s).collect();
        let radii: Vec<f64> = scales
            .iter()
            .map(|s| rng.gen_range(0.03..0.15) * s)
            .collect();
        clusters.push(ClusterSpec::new(
            centroid,
            radii,
            fraction,
            ClassLabel(class as u32),
        ));
    }

    MixtureConfig {
        clusters,
        len,
        arrivals: ArrivalModel::Iid,
    }
    .build(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use ustream_common::DataStream;

    fn class_fractions(
        stream: impl Iterator<Item = ustream_common::UncertainPoint>,
    ) -> BTreeMap<ClassLabel, f64> {
        let mut counts: BTreeMap<ClassLabel, usize> = BTreeMap::new();
        let mut total = 0usize;
        for p in stream {
            *counts.entry(p.label().unwrap()).or_insert(0) += 1;
            total += 1;
        }
        counts
            .into_iter()
            .map(|(k, v)| (k, v as f64 / total as f64))
            .collect()
    }

    #[test]
    fn profile_metadata() {
        assert_eq!(DatasetProfile::NetworkIntrusion.dims(), 34);
        assert_eq!(DatasetProfile::NetworkIntrusion.classes(), 5);
        assert_eq!(DatasetProfile::ForestCover.dims(), 10);
        assert_eq!(DatasetProfile::ForestCover.classes(), 7);
        assert_eq!(DatasetProfile::SynDrift.dims(), 20);
        assert_eq!(DatasetProfile::CharitableDonation.dims(), 54);
    }

    #[test]
    fn from_name_round_trip() {
        for p in [
            DatasetProfile::SynDrift,
            DatasetProfile::NetworkIntrusion,
            DatasetProfile::ForestCover,
            DatasetProfile::CharitableDonation,
        ] {
            assert_eq!(DatasetProfile::from_name(p.name()), Some(p));
        }
        assert_eq!(
            DatasetProfile::from_name("kdd99"),
            Some(DatasetProfile::NetworkIntrusion)
        );
        assert_eq!(DatasetProfile::from_name("nope"), None);
    }

    #[test]
    fn network_dominated_by_normal_class() {
        let s = network_intrusion(30_000, 7);
        let fr = class_fractions(s);
        assert!(
            fr[&ClassLabel(0)] > 0.45,
            "normal class should dominate: {:?}",
            fr
        );
        assert_eq!(fr.len(), 5, "all 5 classes present: {fr:?}");
    }

    #[test]
    fn forest_has_seven_classes_with_real_skew() {
        let s = forest_cover(50_000, 8);
        let fr = class_fractions(s);
        assert_eq!(fr.len(), 7);
        // Class 1 (lodgepole pine) is the largest.
        let max_class = fr.iter().max_by(|a, b| a.1.total_cmp(b.1)).unwrap();
        assert_eq!(*max_class.0, ClassLabel(1));
        assert!((fr[&ClassLabel(1)] - 0.488).abs() < 0.03);
    }

    #[test]
    fn donation_six_subpopulations() {
        let s = charitable_donation(20_000, 9);
        let fr = class_fractions(s);
        assert_eq!(fr.len(), 6);
    }

    #[test]
    fn profile_stream_dims_agree() {
        for p in [
            DatasetProfile::SynDrift,
            DatasetProfile::NetworkIntrusion,
            DatasetProfile::ForestCover,
            DatasetProfile::CharitableDonation,
        ] {
            let s = profile_stream(p, 100, 1);
            assert_eq!(s.dims(), p.dims(), "{}", p.name());
            assert_eq!(s.count(), 100);
        }
    }

    #[test]
    fn network_scales_are_heavy_tailed() {
        let s = network_intrusion(1, 3);
        let radii0: Vec<f64> = s.specs()[0].radii.clone();
        let max = radii0.iter().cloned().fold(0.0, f64::max);
        let min = radii0.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 20.0,
            "network dimensions should span scales: max={max}, min={min}"
        );
    }
}
