//! The η uncertainty model (§III of the paper).
//!
//! > "We used a noise parameter η to determine the amount of noise to be
//! > added to each dimension in the data. ... we first defined the standard
//! > deviation σ_i along dimension i as a uniform random variable drawn
//! > from the range [0, 2·η·σ_i⁰]. Then, for the dimension i, we add error
//! > from a random distribution with standard deviation σ_i."
//!
//! `σ_i⁰` is the base standard deviation of the clean data along dimension
//! `i`. The expected noise level per dimension is therefore `η·σ_i⁰`, and
//! — crucially for the dimension-counting similarity — different dimensions
//! get *different* noise levels, so some dimensions stay informative while
//! others drown.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use ustream_common::stats::DimStats;
use ustream_common::{DataStream, UncertainPoint};

/// How per-record error levels relate to the frozen per-dimension sigmas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseVariant {
    /// The paper's model: every record on dimension `i` carries the same
    /// `ψ_i = σ_i`.
    Fixed,
    /// Heteroscedastic records: each record draws a multiplier
    /// `u ~ U[1 − spread, 1 + spread]` per dimension, is perturbed with
    /// `σ_i·u` and reports `ψ_i = σ_i·u`. Models sensor fleets whose
    /// per-reading error estimates genuinely differ — the setting where a
    /// per-record ψ carries information beyond the per-dimension level.
    PerRecord {
        /// Relative spread of the multiplier, in `[0, 1)`.
        spread: f64,
    },
}

/// Per-dimension error standard deviations, frozen for a whole stream.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    sigmas: Vec<f64>,
    eta: f64,
}

impl NoiseModel {
    /// Draws `σ_i ~ U[0, 2·η·σ_i⁰]` per dimension.
    pub fn from_base_sigmas<R: Rng>(eta: f64, base_sigmas: &[f64], rng: &mut R) -> Self {
        assert!(eta >= 0.0 && eta.is_finite(), "eta must be non-negative");
        let sigmas = base_sigmas
            .iter()
            .map(|s0| {
                let hi = 2.0 * eta * s0.max(0.0);
                if hi > 0.0 {
                    rng.gen_range(0.0..hi)
                } else {
                    0.0
                }
            })
            .collect();
        Self { sigmas, eta }
    }

    /// A zero-noise model (η = 0).
    pub fn noiseless(dims: usize) -> Self {
        Self {
            sigmas: vec![0.0; dims],
            eta: 0.0,
        }
    }

    /// The frozen per-dimension error standard deviations.
    pub fn sigmas(&self) -> &[f64] {
        &self.sigmas
    }

    /// The η the model was drawn with.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.sigmas.len()
    }

    /// Perturbs a clean point in place and returns the error vector `ψ` the
    /// algorithm will be told about (equal to the true noise std-devs).
    pub fn perturb<R: Rng>(&self, values: &mut [f64], rng: &mut R) -> Vec<f64> {
        self.perturb_with(values, rng, NoiseVariant::Fixed)
    }

    /// Perturbs under an explicit [`NoiseVariant`], returning the ψ vector
    /// the record will report (always equal to the std-dev of the noise
    /// actually injected).
    pub fn perturb_with<R: Rng>(
        &self,
        values: &mut [f64],
        rng: &mut R,
        variant: NoiseVariant,
    ) -> Vec<f64> {
        debug_assert_eq!(values.len(), self.sigmas.len());
        let mut psis = Vec::with_capacity(self.sigmas.len());
        for (v, &s) in values.iter_mut().zip(&self.sigmas) {
            let psi = match variant {
                NoiseVariant::Fixed => s,
                NoiseVariant::PerRecord { spread } => {
                    debug_assert!((0.0..1.0).contains(&spread));
                    if s > 0.0 {
                        s * rng.gen_range(1.0 - spread..=1.0 + spread)
                    } else {
                        0.0
                    }
                }
            };
            if psi > 0.0 {
                let n = Normal::new(0.0, psi).expect("positive finite std-dev");
                *v += n.sample(rng);
            }
            psis.push(psi);
        }
        psis
    }
}

/// Stream adapter that applies the η noise model to a clean labelled stream.
///
/// The base standard deviations `σ_i⁰` are estimated from the first
/// `calibration_len` points (which are buffered, perturbed and then
/// re-emitted, so no data is lost and the stream stays one-pass for the
/// consumer).
#[derive(Debug)]
pub struct NoisyStream<S, R> {
    inner: S,
    rng: R,
    eta: f64,
    calibration_len: usize,
    variant: NoiseVariant,
    state: State,
}

#[derive(Debug)]
enum State {
    /// Still filling the calibration buffer.
    Calibrating { buffer: Vec<UncertainPoint> },
    /// Calibrated: replaying the buffered prefix, then passing through.
    Running {
        model: NoiseModel,
        replay: std::vec::IntoIter<UncertainPoint>,
    },
}

impl<S: DataStream, R: Rng> NoisyStream<S, R> {
    /// Wraps `inner` with noise level `eta`, calibrating `σ⁰` on the first
    /// 2 000 points.
    pub fn new(inner: S, eta: f64, rng: R) -> Self {
        Self::with_calibration(inner, eta, rng, 2_000)
    }

    /// Wraps with an explicit calibration length.
    pub fn with_calibration(inner: S, eta: f64, rng: R, calibration_len: usize) -> Self {
        assert!(calibration_len > 0, "calibration length must be positive");
        Self {
            inner,
            rng,
            eta,
            calibration_len,
            variant: NoiseVariant::Fixed,
            state: State::Calibrating { buffer: Vec::new() },
        }
    }

    /// Switches to heteroscedastic per-record error levels.
    pub fn with_variant(mut self, variant: NoiseVariant) -> Self {
        if let NoiseVariant::PerRecord { spread } = variant {
            assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
        }
        self.variant = variant;
        self
    }

    /// The frozen noise model, once calibration has completed.
    pub fn model(&self) -> Option<&NoiseModel> {
        match &self.state {
            State::Running { model, .. } => Some(model),
            State::Calibrating { .. } => None,
        }
    }

    fn calibrate(&mut self, buffer: Vec<UncertainPoint>) -> Option<UncertainPoint> {
        let mut stats = DimStats::new(self.inner.dims());
        for p in &buffer {
            stats.push(p.values());
        }
        let model = NoiseModel::from_base_sigmas(self.eta, &stats.std_devs(), &mut self.rng);
        let variant = self.variant;
        let perturbed: Vec<UncertainPoint> = buffer
            .into_iter()
            .map(|p| apply(&model, p, &mut self.rng, variant))
            .collect();
        let mut replay = perturbed.into_iter();
        let first = replay.next();
        self.state = State::Running { model, replay };
        first
    }
}

fn apply<R: Rng>(
    model: &NoiseModel,
    p: UncertainPoint,
    rng: &mut R,
    variant: NoiseVariant,
) -> UncertainPoint {
    let mut values = p.values().to_vec();
    let errors = model.perturb_with(&mut values, rng, variant);
    UncertainPoint::new(values, errors, p.timestamp(), p.label())
}

impl<S: DataStream, R: Rng> Iterator for NoisyStream<S, R> {
    type Item = UncertainPoint;

    fn next(&mut self) -> Option<UncertainPoint> {
        loop {
            match &mut self.state {
                State::Calibrating { buffer } => match self.inner.next() {
                    Some(p) => {
                        buffer.push(p);
                        if buffer.len() >= self.calibration_len {
                            let buf = std::mem::take(buffer);
                            return self.calibrate(buf);
                        }
                    }
                    None => {
                        // Short stream: calibrate on whatever arrived.
                        let buf = std::mem::take(buffer);
                        if buf.is_empty() {
                            return None;
                        }
                        return self.calibrate(buf);
                    }
                },
                State::Running { model, replay } => {
                    if let Some(p) = replay.next() {
                        return Some(p);
                    }
                    let p = self.inner.next()?;
                    let model = model.clone();
                    let variant = self.variant;
                    return Some(apply(&model, p, &mut self.rng, variant));
                }
            }
        }
    }
}

impl<S: DataStream, R: Rng> DataStream for NoisyStream<S, R> {
    fn dims(&self) -> usize {
        self.inner.dims()
    }

    fn len_hint(&self) -> Option<usize> {
        let buffered = match &self.state {
            State::Calibrating { buffer } => buffer.len(),
            State::Running { replay, .. } => replay.len(),
        };
        self.inner.len_hint().map(|n| n + buffered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ustream_common::VecStream;

    fn clean_stream(n: usize) -> VecStream {
        // Two dimensions: dim 0 varies (σ⁰ ≈ 1), dim 1 constant (σ⁰ = 0).
        let pts = (0..n)
            .map(|i| {
                let x = if i % 2 == 0 { -1.0 } else { 1.0 };
                UncertainPoint::certain(vec![x, 5.0], i as u64, None)
            })
            .collect();
        VecStream::new(pts)
    }

    #[test]
    fn sigma_range_respects_eta() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let m = NoiseModel::from_base_sigmas(0.5, &[1.0, 2.0, 0.0], &mut rng);
            assert!(m.sigmas()[0] >= 0.0 && m.sigmas()[0] < 1.0);
            assert!(m.sigmas()[1] >= 0.0 && m.sigmas()[1] < 2.0);
            assert_eq!(m.sigmas()[2], 0.0);
        }
    }

    #[test]
    fn eta_zero_is_noiseless() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = NoiseModel::from_base_sigmas(0.0, &[1.0, 1.0], &mut rng);
        assert_eq!(m.sigmas(), &[0.0, 0.0]);
        let mut vals = vec![3.0, 4.0];
        let errs = m.perturb(&mut vals, &mut rng);
        assert_eq!(vals, vec![3.0, 4.0]);
        assert_eq!(errs, vec![0.0, 0.0]);
    }

    #[test]
    fn perturbation_statistics_match_sigma() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = NoiseModel {
            sigmas: vec![2.0],
            eta: 1.0,
        };
        let mut acc = ustream_common::stats::RunningStats::new();
        for _ in 0..20_000 {
            let mut v = vec![0.0];
            m.perturb(&mut v, &mut rng);
            acc.push(v[0]);
        }
        assert!(acc.mean().abs() < 0.05, "mean {}", acc.mean());
        assert!((acc.std_dev() - 2.0).abs() < 0.05, "std {}", acc.std_dev());
    }

    #[test]
    fn noisy_stream_preserves_count_order_and_labels() {
        let pts: Vec<UncertainPoint> = (0..100)
            .map(|i| {
                UncertainPoint::certain(vec![i as f64], i as u64, None)
                    .with_label(ustream_common::ClassLabel((i % 3) as u32))
            })
            .collect();
        let inner = VecStream::new(pts);
        let rng = StdRng::seed_from_u64(4);
        let noisy = NoisyStream::with_calibration(inner, 0.5, rng, 10);
        let out: Vec<UncertainPoint> = noisy.collect();
        assert_eq!(out.len(), 100);
        for (i, p) in out.iter().enumerate() {
            assert_eq!(p.timestamp(), i as u64);
            assert_eq!(p.label(), Some(ustream_common::ClassLabel((i % 3) as u32)));
        }
    }

    #[test]
    fn errors_reported_match_injected_noise_level() {
        let inner = clean_stream(5_000);
        let rng = StdRng::seed_from_u64(5);
        let mut noisy = NoisyStream::with_calibration(inner, 1.0, rng, 500);
        let first = noisy.next().unwrap();
        let model = noisy.model().unwrap().clone();
        // ψ on each record equals the frozen per-dimension sigma.
        assert_eq!(first.errors(), model.sigmas());
        // Dim 1 was constant → σ⁰ = 0 → no noise there.
        assert_eq!(model.sigmas()[1], 0.0);
        // Dim 0 had σ⁰ ≈ 1 → σ ∈ [0, 2).
        assert!(model.sigmas()[0] < 2.0);
        // Actual perturbations on dim 0 match the reported sigma.
        let mut acc = ustream_common::stats::RunningStats::new();
        for (i, p) in (1usize..).zip(noisy.by_ref().take(3_000)) {
            let clean = if i.is_multiple_of(2) { -1.0 } else { 1.0 };
            acc.push(p.values()[0] - clean);
        }
        let expected = model.sigmas()[0];
        assert!(
            (acc.std_dev() - expected).abs() < 0.1 * expected.max(0.1),
            "injected std {} vs reported {}",
            acc.std_dev(),
            expected
        );
    }

    #[test]
    fn per_record_variant_varies_psi() {
        let inner = clean_stream(2_000);
        let rng = StdRng::seed_from_u64(11);
        let mut noisy = NoisyStream::with_calibration(inner, 1.0, rng, 200)
            .with_variant(NoiseVariant::PerRecord { spread: 0.5 });
        let first = noisy.next().unwrap();
        let base = noisy.model().unwrap().sigmas().to_vec();
        let mut distinct = std::collections::BTreeSet::new();
        let mut within_band = true;
        for p in noisy.take(500) {
            let psi = p.errors()[0];
            distinct.insert((psi * 1e9) as i64);
            if base[0] > 0.0 && !(0.5 * base[0] <= psi && psi <= 1.5 * base[0]) {
                within_band = false;
            }
        }
        assert!(distinct.len() > 100, "psi should vary per record");
        assert!(within_band, "psi must stay within the spread band");
        // The constant dimension stays noiseless even per-record.
        assert_eq!(first.errors()[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "spread must be in [0, 1)")]
    fn per_record_spread_validated() {
        let inner = clean_stream(10);
        let rng = StdRng::seed_from_u64(12);
        let _ =
            NoisyStream::new(inner, 0.5, rng).with_variant(NoiseVariant::PerRecord { spread: 1.0 });
    }

    #[test]
    fn short_stream_still_calibrates() {
        let inner = clean_stream(5);
        let rng = StdRng::seed_from_u64(6);
        let noisy = NoisyStream::with_calibration(inner, 0.5, rng, 1_000);
        assert_eq!(noisy.count(), 5);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let inner = VecStream::new(vec![]);
        let rng = StdRng::seed_from_u64(7);
        let mut noisy = NoisyStream::new(inner, 0.5, rng);
        assert!(noisy.next().is_none());
    }

    #[test]
    fn len_hint_consistent() {
        let inner = clean_stream(50);
        let rng = StdRng::seed_from_u64(8);
        let mut noisy = NoisyStream::with_calibration(inner, 0.5, rng, 10);
        assert_eq!(noisy.len_hint(), Some(50));
        let _ = noisy.next();
        assert_eq!(noisy.len_hint(), Some(49));
    }
}
