//! Labelled Gaussian-mixture stream machinery.
//!
//! Every synthetic workload in the evaluation is, at its core, a mixture of
//! multivariate Gaussian clusters with per-dimension radii, a class label
//! per cluster, and an arrival model (i.i.d. sampling, or bursty arrivals
//! for the network-intrusion profile where attacks come in runs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use ustream_common::{ClassLabel, DataStream, Timestamp, UncertainPoint};

/// One generating cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Cluster centre.
    pub centroid: Vec<f64>,
    /// Per-dimension standard deviations.
    pub radii: Vec<f64>,
    /// Relative arrival fraction (normalised internally).
    pub fraction: f64,
    /// Ground-truth class emitted with each point. Several clusters may
    /// share a class (e.g. sub-clusters of one attack category).
    pub class: ClassLabel,
}

impl ClusterSpec {
    /// Validated constructor.
    pub fn new(centroid: Vec<f64>, radii: Vec<f64>, fraction: f64, class: ClassLabel) -> Self {
        assert_eq!(
            centroid.len(),
            radii.len(),
            "centroid/radii length mismatch"
        );
        assert!(
            fraction > 0.0 && fraction.is_finite(),
            "fraction must be positive"
        );
        assert!(
            radii.iter().all(|r| *r >= 0.0),
            "radii must be non-negative"
        );
        Self {
            centroid,
            radii,
            fraction,
            class,
        }
    }
}

/// How points from different clusters interleave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Each point drawn independently by cluster fraction.
    Iid,
    /// Mostly i.i.d., but with probability `burst_prob` per point the
    /// stream locks onto one *non-dominant* cluster for a geometric-length
    /// run with the given mean — the bursty attack pattern of network
    /// traffic ("occasionally there could be a burst of attacks").
    Bursty {
        /// Per-point probability of entering a burst.
        burst_prob: f64,
        /// Mean burst length (geometric distribution).
        mean_len: f64,
    },
}

/// Mixture stream configuration.
#[derive(Debug, Clone)]
pub struct MixtureConfig {
    /// The generating clusters.
    pub clusters: Vec<ClusterSpec>,
    /// Total number of points to emit.
    pub len: usize,
    /// Arrival model.
    pub arrivals: ArrivalModel,
}

impl MixtureConfig {
    /// Builds the stream with a seed.
    pub fn build(self, seed: u64) -> MixtureStream {
        MixtureStream::new(self, seed)
    }
}

/// The labelled clean (zero-error) stream; wrap in
/// [`crate::NoisyStream`] to apply the η uncertainty model.
#[derive(Debug)]
pub struct MixtureStream {
    specs: Vec<ClusterSpec>,
    cumulative: Vec<f64>,
    dims: usize,
    len: usize,
    emitted: usize,
    clock: Timestamp,
    rng: StdRng,
    arrivals: ArrivalModel,
    /// Index of the dominant (largest-fraction) cluster — bursts lock onto
    /// the others.
    dominant: usize,
    burst_remaining: usize,
    burst_target: usize,
}

impl MixtureStream {
    /// Creates the stream.
    ///
    /// # Panics
    /// Panics on empty cluster lists or mismatched dimensionalities.
    pub fn new(config: MixtureConfig, seed: u64) -> Self {
        assert!(
            !config.clusters.is_empty(),
            "mixture needs at least one cluster"
        );
        let dims = config.clusters[0].centroid.len();
        assert!(
            config.clusters.iter().all(|c| c.centroid.len() == dims),
            "all clusters must share one dimensionality"
        );
        let total: f64 = config.clusters.iter().map(|c| c.fraction).sum();
        let mut acc = 0.0;
        let cumulative = config
            .clusters
            .iter()
            .map(|c| {
                acc += c.fraction / total;
                acc
            })
            .collect();
        let dominant = config
            .clusters
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.fraction.total_cmp(&b.1.fraction))
            .map(|(i, _)| i)
            .expect("cluster list asserted non-empty above");
        Self {
            specs: config.clusters,
            cumulative,
            dims,
            len: config.len,
            emitted: 0,
            clock: 0,
            rng: StdRng::seed_from_u64(seed),
            arrivals: config.arrivals,
            dominant,
            burst_remaining: 0,
            burst_target: 0,
        }
    }

    /// The generating specs (tests verify sampling statistics against them).
    pub fn specs(&self) -> &[ClusterSpec] {
        &self.specs
    }

    fn pick_cluster(&mut self) -> usize {
        if let ArrivalModel::Bursty {
            burst_prob,
            mean_len,
        } = self.arrivals
        {
            if self.burst_remaining > 0 {
                self.burst_remaining -= 1;
                return self.burst_target;
            }
            if self.specs.len() > 1 && self.rng.gen::<f64>() < burst_prob {
                // Enter a burst on a uniformly chosen non-dominant cluster.
                let mut idx = self.rng.gen_range(0..self.specs.len() - 1);
                if idx >= self.dominant {
                    idx += 1;
                }
                self.burst_target = idx;
                // Geometric length with the requested mean.
                let p = 1.0 / mean_len.max(1.0);
                let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                self.burst_remaining = ((u.ln() / (1.0 - p).ln()).ceil() as usize).max(1);
                self.burst_remaining -= 1;
                return self.burst_target;
            }
        }
        let u: f64 = self.rng.gen();
        match self.cumulative.iter().position(|&c| u <= c) {
            Some(i) => i,
            None => self.specs.len() - 1,
        }
    }

    fn sample(&mut self, cluster: usize) -> UncertainPoint {
        let spec = &self.specs[cluster];
        let mut values = Vec::with_capacity(self.dims);
        for j in 0..self.dims {
            let base = spec.centroid[j];
            let r = spec.radii[j];
            let v = if r > 0.0 {
                let n = Normal::new(base, r).expect("finite positive radius");
                n.sample(&mut self.rng)
            } else {
                base
            };
            values.push(v);
        }
        self.clock += 1;
        UncertainPoint::certain(values, self.clock, Some(spec.class))
    }
}

impl Iterator for MixtureStream {
    type Item = UncertainPoint;

    fn next(&mut self) -> Option<UncertainPoint> {
        if self.emitted >= self.len {
            return None;
        }
        self.emitted += 1;
        let cluster = self.pick_cluster();
        Some(self.sample(cluster))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.emitted;
        (rem, Some(rem))
    }
}

impl DataStream for MixtureStream {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.len - self.emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn two_cluster_config(len: usize, arrivals: ArrivalModel) -> MixtureConfig {
        MixtureConfig {
            clusters: vec![
                ClusterSpec::new(vec![0.0, 0.0], vec![0.1, 0.1], 0.8, ClassLabel(0)),
                ClusterSpec::new(vec![10.0, 10.0], vec![0.1, 0.1], 0.2, ClassLabel(1)),
            ],
            len,
            arrivals,
        }
    }

    #[test]
    fn emits_exactly_len_points() {
        let s = two_cluster_config(500, ArrivalModel::Iid).build(1);
        assert_eq!(s.count(), 500);
    }

    #[test]
    fn fractions_respected_iid() {
        let s = two_cluster_config(20_000, ArrivalModel::Iid).build(2);
        let mut counts: BTreeMap<ClassLabel, usize> = BTreeMap::new();
        for p in s {
            *counts.entry(p.label().unwrap()).or_insert(0) += 1;
        }
        let frac0 = counts[&ClassLabel(0)] as f64 / 20_000.0;
        assert!((frac0 - 0.8).abs() < 0.02, "class 0 fraction {frac0}");
    }

    #[test]
    fn samples_concentrate_near_centroids() {
        let s = two_cluster_config(2_000, ArrivalModel::Iid).build(3);
        for p in s {
            let near0 = p.values()[0].abs() < 1.0;
            let near10 = (p.values()[0] - 10.0).abs() < 1.0;
            assert!(near0 || near10, "stray point: {:?}", p.values());
            // Label agrees with location.
            let expect = if near0 { ClassLabel(0) } else { ClassLabel(1) };
            assert_eq!(p.label(), Some(expect));
        }
    }

    #[test]
    fn timestamps_are_sequential() {
        let s = two_cluster_config(50, ArrivalModel::Iid).build(4);
        for (i, p) in s.enumerate() {
            assert_eq!(p.timestamp(), (i + 1) as u64);
        }
    }

    #[test]
    fn bursty_arrivals_produce_runs() {
        let s = two_cluster_config(
            50_000,
            ArrivalModel::Bursty {
                burst_prob: 0.002,
                mean_len: 100.0,
            },
        )
        .build(5);
        // Measure the longest run of the minority class; bursts should make
        // it far longer than i.i.d. sampling would.
        let mut longest = 0usize;
        let mut run = 0usize;
        let mut minority_total = 0usize;
        for p in s {
            if p.label() == Some(ClassLabel(1)) {
                run += 1;
                minority_total += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        assert!(
            longest >= 30,
            "bursty stream should contain long minority runs, longest={longest}"
        );
        assert!(minority_total > 0);
    }

    #[test]
    fn zero_radius_cluster_emits_exact_centroid() {
        let cfg = MixtureConfig {
            clusters: vec![ClusterSpec::new(
                vec![3.0, -1.0],
                vec![0.0, 0.0],
                1.0,
                ClassLabel(0),
            )],
            len: 10,
            arrivals: ArrivalModel::Iid,
        };
        for p in cfg.build(6) {
            assert_eq!(p.values(), &[3.0, -1.0]);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<_> = two_cluster_config(100, ArrivalModel::Iid)
            .build(42)
            .map(|p| p.values().to_vec())
            .collect();
        let b: Vec<_> = two_cluster_config(100, ArrivalModel::Iid)
            .build(42)
            .map(|p| p.values().to_vec())
            .collect();
        assert_eq!(a, b);
        let c: Vec<_> = two_cluster_config(100, ArrivalModel::Iid)
            .build(43)
            .map(|p| p.values().to_vec())
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_mixture_panics() {
        let cfg = MixtureConfig {
            clusters: vec![],
            len: 10,
            arrivals: ArrivalModel::Iid,
        };
        let _ = cfg.build(0);
    }

    #[test]
    fn len_and_size_hints() {
        let mut s = two_cluster_config(10, ArrivalModel::Iid).build(7);
        assert_eq!(s.len_hint(), Some(10));
        assert_eq!(s.size_hint(), (10, Some(10)));
        let _ = s.next();
        assert_eq!(s.len_hint(), Some(9));
    }
}
