//! Uncertain-stream serialization: a simple CSV dialect carrying the error
//! vectors alongside the values, so generated workloads can be recorded,
//! shared with other tools and replayed bit-for-bit.
//!
//! Format (one record per line):
//!
//! ```text
//! t,label,v_1,…,v_d,psi_1,…,psi_d
//! ```
//!
//! `label` is the integer class id or the empty string for unlabelled
//! records. The header line `t,label,v:<d>,psi:<d>` pins the
//! dimensionality so readers can validate.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use ustream_common::{ClassLabel, DataStream, Result, UStreamError, UncertainPoint, VecStream};

/// Writes a stream to CSV, returning the number of records written.
pub fn write_stream<S, W>(mut stream: S, writer: W) -> Result<u64>
where
    S: DataStream,
    W: Write,
{
    let dims = stream.dims();
    let mut out = BufWriter::new(writer);
    writeln!(out, "t,label,v:{dims},psi:{dims}")?;
    let mut written = 0u64;
    for p in stream.by_ref() {
        debug_assert_eq!(p.dims(), dims);
        let label = p.label().map(|l| l.id().to_string()).unwrap_or_default();
        write!(out, "{},{label}", p.timestamp())?;
        for v in p.values() {
            write!(out, ",{v}")?;
        }
        for e in p.errors() {
            write!(out, ",{e}")?;
        }
        writeln!(out)?;
        written += 1;
    }
    out.flush()?;
    Ok(written)
}

/// Reads a stream previously written by [`write_stream`].
pub fn read_stream<R: Read>(reader: R) -> Result<VecStream> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| UStreamError::Dataset("empty stream file".into()))??;
    let dims = parse_header(&header)?;

    let mut points = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let expected = 2 + 2 * dims;
        if fields.len() != expected {
            return Err(UStreamError::Dataset(format!(
                "line {}: expected {} fields, got {}",
                lineno + 2,
                expected,
                fields.len()
            )));
        }
        let t: u64 = fields[0].parse().map_err(|e| {
            UStreamError::Dataset(format!("line {}: bad timestamp: {e}", lineno + 2))
        })?;
        let label = if fields[1].is_empty() {
            None
        } else {
            Some(ClassLabel(fields[1].parse().map_err(|e| {
                UStreamError::Dataset(format!("line {}: bad label: {e}", lineno + 2))
            })?))
        };
        let parse_f64 = |s: &str, what: &str| -> Result<f64> {
            s.parse()
                .map_err(|e| UStreamError::Dataset(format!("line {}: bad {what}: {e}", lineno + 2)))
        };
        let mut values = Vec::with_capacity(dims);
        for f in &fields[2..2 + dims] {
            values.push(parse_f64(f, "value")?);
        }
        let mut errors = Vec::with_capacity(dims);
        for f in &fields[2 + dims..] {
            let psi = parse_f64(f, "error")?;
            // Validate here (rather than letting the UncertainPoint
            // constructor assert) so a malformed row is a recoverable
            // Dataset error naming its line, not a panic.
            if !psi.is_finite() || psi < 0.0 {
                return Err(UStreamError::Dataset(format!(
                    "line {}: error magnitude must be finite and non-negative, got {psi}",
                    lineno + 2
                )));
            }
            errors.push(psi);
        }
        points.push(UncertainPoint::new(values, errors, t, label));
    }
    Ok(VecStream::new(points))
}

fn parse_header(header: &str) -> Result<usize> {
    let parts: Vec<&str> = header.trim().split(',').collect();
    if parts.len() != 4 || parts[0] != "t" || parts[1] != "label" {
        return Err(UStreamError::Dataset(format!(
            "unrecognised stream header: {header:?}"
        )));
    }
    let dims_v = parts[2]
        .strip_prefix("v:")
        .and_then(|d| d.parse::<usize>().ok());
    let dims_p = parts[3]
        .strip_prefix("psi:")
        .and_then(|d| d.parse::<usize>().ok());
    match (dims_v, dims_p) {
        // dims 0 is legal: an empty stream has no dimensionality to pin.
        (Some(a), Some(b)) if a == b => Ok(a),
        _ => Err(UStreamError::Dataset(format!(
            "inconsistent dimensionality in header: {header:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoisyStream, SynDriftConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_points() -> Vec<UncertainPoint> {
        vec![
            UncertainPoint::new(vec![1.5, -2.0], vec![0.1, 0.0], 1, Some(ClassLabel(0))),
            UncertainPoint::new(vec![0.0, 3.25], vec![0.5, 0.25], 2, None),
            UncertainPoint::new(vec![-7.0, 0.125], vec![0.0, 1.0], 5, Some(ClassLabel(3))),
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let mut buf = Vec::new();
        let n = write_stream(VecStream::new(sample_points()), &mut buf).unwrap();
        assert_eq!(n, 3);
        let restored: Vec<UncertainPoint> = read_stream(buf.as_slice()).unwrap().collect();
        assert_eq!(restored, sample_points());
    }

    #[test]
    fn generated_noisy_stream_round_trips() {
        let stream = NoisyStream::with_calibration(
            SynDriftConfig::small_test().build(3),
            0.5,
            StdRng::seed_from_u64(4),
            100,
        );
        let original: Vec<UncertainPoint> = stream.take(500).collect();
        let mut buf = Vec::new();
        write_stream(VecStream::new(original.clone()), &mut buf).unwrap();
        let restored: Vec<UncertainPoint> = read_stream(buf.as_slice()).unwrap().collect();
        assert_eq!(restored.len(), 500);
        for (a, b) in original.iter().zip(&restored) {
            assert_eq!(a.timestamp(), b.timestamp());
            assert_eq!(a.label(), b.label());
            assert_eq!(a.values(), b.values());
            assert_eq!(a.errors(), b.errors());
        }
    }

    #[test]
    fn empty_stream_round_trips() {
        let mut buf = Vec::new();
        write_stream(VecStream::new(vec![]), &mut buf).unwrap();
        let restored = read_stream(buf.as_slice()).unwrap();
        assert_eq!(restored.count(), 0);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_stream("nope\n".as_bytes()).is_err());
        assert!(read_stream("t,label,v:2,psi:3\n".as_bytes()).is_err());
        assert!(read_stream("".as_bytes()).is_err());
    }

    #[test]
    fn rejects_short_record() {
        let input = "t,label,v:2,psi:2\n1,0,1.0,2.0,0.1\n";
        let err = read_stream(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn rejects_bad_number() {
        let input = "t,label,v:1,psi:1\n1,0,abc,0.1\n";
        assert!(read_stream(input.as_bytes()).is_err());
    }
}
