//! The paper's *SynDrift* generator (§III):
//!
//! > "The synthetic data sets were generated using continuously drifting
//! > clusters. The relative fraction of data points which belong to the
//! > cluster i is denoted by f_i. The relative value of f_i is drawn as a
//! > uniform random variable in the range [0, 1]. ... The centroids of each
//! > of the clusters are initially chosen from the unit cube. Subsequently,
//! > each centroid drifts along a dimension by an amount which is drawn
//! > from the uniform distribution in the range [−ε, ε]. The radius of each
//! > cluster along a given dimension is chosen as a variable which is
//! > picked as an instantiation of the uniform random variable in the range
//! > [0, 0.3]. A 20-dimensional data stream containing 600,000 points was
//! > generated using this methodology."
//!
//! The class label of each point is the generating-cluster index ("the
//! class label was assumed to be the cluster identifier").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use ustream_common::{ClassLabel, DataStream, Timestamp, UncertainPoint};

/// SynDrift configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SynDriftConfig {
    /// Dimensionality (paper: 20).
    pub dims: usize,
    /// Number of drifting clusters (the paper does not state it; we default
    /// to 10, large enough for diverse class structure under 100
    /// micro-clusters).
    pub n_clusters: usize,
    /// Stream length (paper: 600 000).
    pub len: usize,
    /// Per-step drift amplitude ε: every `drift_interval` points each
    /// centroid moves by `U[−ε, ε]` along every dimension.
    pub epsilon: f64,
    /// Points between drift steps.
    pub drift_interval: usize,
    /// Upper bound of the per-dimension radius range `U[0, max_radius]`
    /// (paper: 0.3).
    pub max_radius: f64,
}

impl Default for SynDriftConfig {
    fn default() -> Self {
        Self {
            dims: 20,
            n_clusters: 10,
            len: 600_000,
            epsilon: 0.002,
            drift_interval: 100,
            max_radius: 0.3,
        }
    }
}

impl SynDriftConfig {
    /// The paper's full-size stream.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A scaled-down preset for unit tests and examples: 5 dimensions,
    /// 4 clusters, 10 000 points.
    pub fn small_test() -> Self {
        Self {
            dims: 5,
            n_clusters: 4,
            len: 10_000,
            epsilon: 0.002,
            drift_interval: 50,
            max_radius: 0.15,
        }
    }

    /// Builds the (clean) stream; wrap in [`crate::NoisyStream`] for the η
    /// uncertainty model.
    pub fn build(self, seed: u64) -> SynDriftStream {
        SynDriftStream::new(self, seed)
    }
}

/// The drifting-cluster stream.
#[derive(Debug)]
pub struct SynDriftStream {
    config: SynDriftConfig,
    centroids: Vec<Vec<f64>>,
    radii: Vec<Vec<f64>>,
    cumulative: Vec<f64>,
    emitted: usize,
    clock: Timestamp,
    rng: StdRng,
}

impl SynDriftStream {
    /// Instantiates cluster fractions, centroids and radii from the seed.
    pub fn new(config: SynDriftConfig, seed: u64) -> Self {
        assert!(config.dims > 0 && config.n_clusters > 0 && config.len > 0);
        assert!(config.drift_interval > 0);
        let mut rng = StdRng::seed_from_u64(seed);

        // f_i ~ U[0,1], normalised. Reject near-zero fractions so every
        // class actually appears.
        let mut fractions: Vec<f64> = (0..config.n_clusters)
            .map(|_| rng.gen_range(0.05..1.0))
            .collect();
        let total: f64 = fractions.iter().sum();
        for f in &mut fractions {
            *f /= total;
        }
        let mut acc = 0.0;
        let cumulative = fractions
            .iter()
            .map(|f| {
                acc += f;
                acc
            })
            .collect();

        let centroids = (0..config.n_clusters)
            .map(|_| (0..config.dims).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let radii = (0..config.n_clusters)
            .map(|_| {
                (0..config.dims)
                    .map(|_| rng.gen_range(0.0..config.max_radius))
                    .collect()
            })
            .collect();

        Self {
            config,
            centroids,
            radii,
            cumulative,
            emitted: 0,
            clock: 0,
            rng,
        }
    }

    /// Current cluster centroids (tests verify drift).
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Number of generating clusters.
    pub fn n_clusters(&self) -> usize {
        self.config.n_clusters
    }

    fn drift(&mut self) {
        let eps = self.config.epsilon;
        for c in &mut self.centroids {
            for v in c.iter_mut() {
                *v += self.rng.gen_range(-eps..=eps);
                // Reflect at the unit cube so clusters stay in range over
                // very long streams.
                if *v < 0.0 {
                    *v = -*v;
                }
                if *v > 1.0 {
                    *v = 2.0 - *v;
                }
            }
        }
    }
}

impl Iterator for SynDriftStream {
    type Item = UncertainPoint;

    fn next(&mut self) -> Option<UncertainPoint> {
        if self.emitted >= self.config.len {
            return None;
        }
        if self.emitted > 0 && self.emitted.is_multiple_of(self.config.drift_interval) {
            self.drift();
        }
        self.emitted += 1;
        self.clock += 1;

        let u: f64 = self.rng.gen();
        let cluster = self
            .cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.config.n_clusters - 1);

        let mut values = Vec::with_capacity(self.config.dims);
        for j in 0..self.config.dims {
            let r = self.radii[cluster][j];
            let base = self.centroids[cluster][j];
            let v = if r > 0.0 {
                Normal::new(base, r)
                    .expect("finite radius")
                    .sample(&mut self.rng)
            } else {
                base
            };
            values.push(v);
        }
        Some(UncertainPoint::certain(
            values,
            self.clock,
            Some(ClassLabel(cluster as u32)),
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.config.len - self.emitted;
        (rem, Some(rem))
    }
}

impl DataStream for SynDriftStream {
    fn dims(&self) -> usize {
        self.config.dims
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.config.len - self.emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn paper_defaults() {
        let c = SynDriftConfig::paper();
        assert_eq!(c.dims, 20);
        assert_eq!(c.len, 600_000);
        assert!((c.max_radius - 0.3).abs() < 1e-12);
    }

    #[test]
    fn emits_len_points_with_labels() {
        let s = SynDriftConfig::small_test().build(1);
        let pts: Vec<_> = s.collect();
        assert_eq!(pts.len(), 10_000);
        let mut classes: BTreeMap<ClassLabel, usize> = BTreeMap::new();
        for p in &pts {
            assert_eq!(p.dims(), 5);
            *classes.entry(p.label().unwrap()).or_insert(0) += 1;
        }
        // Every cluster contributes points.
        assert_eq!(classes.len(), 4);
    }

    #[test]
    fn centroids_start_inside_unit_cube() {
        let s = SynDriftConfig::small_test().build(2);
        for c in s.centroids() {
            assert!(c.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn centroids_drift_over_time() {
        let mut s = SynDriftConfig::small_test().build(3);
        let initial = s.centroids().to_vec();
        for _ in 0..5_000 {
            let _ = s.next();
        }
        let moved = s
            .centroids()
            .iter()
            .zip(&initial)
            .any(|(a, b)| ustream_common::point::sq_euclidean(a, b) > 1e-8);
        assert!(moved, "centroids never drifted");
        // But remain in the unit cube (reflection).
        for c in s.centroids() {
            assert!(c.iter().all(|v| (-1e-9..=1.0 + 1e-9).contains(v)));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<_> = SynDriftConfig::small_test()
            .build(9)
            .take(200)
            .map(|p| p.values().to_vec())
            .collect();
        let b: Vec<_> = SynDriftConfig::small_test()
            .build(9)
            .take(200)
            .map(|p| p.values().to_vec())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn points_near_generating_centroids() {
        // With small radii, most points lie within a few radii of *some*
        // initial centroid early in the stream.
        let mut cfg = SynDriftConfig::small_test();
        cfg.max_radius = 0.05;
        let mut s = cfg.build(4);
        let centroids = s.centroids().to_vec();
        for p in (&mut s).take(500) {
            let nearest = centroids
                .iter()
                .map(|c| ustream_common::point::sq_euclidean(c, p.values()))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 0.5, "point far from every centroid: {nearest}");
        }
    }

    #[test]
    fn size_hints() {
        let mut s = SynDriftConfig::small_test().build(5);
        assert_eq!(s.len_hint(), Some(10_000));
        let _ = s.next();
        assert_eq!(s.size_hint(), (9_999, Some(9_999)));
    }
}
