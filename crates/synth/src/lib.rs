//! # ustream-synth
//!
//! Workload generation for the uncertain-stream clustering evaluation:
//!
//! * [`NoiseModel`] / [`NoisyStream`] — the paper's η uncertainty model
//!   (§III): per dimension `i` an error standard deviation
//!   `σ_i ~ U[0, 2·η·σ_i⁰]` is drawn (where `σ_i⁰` is the base standard
//!   deviation of the data along dimension `i`), then every record's
//!   dimension-`i` value is perturbed with zero-mean Gaussian noise of that
//!   standard deviation, and `ψ_i = σ_i` is reported to the algorithm;
//! * [`SynDriftConfig`] — the paper's *SynDrift* generator: continuously
//!   drifting Gaussian clusters in the unit cube;
//! * [`profiles`] — statistical simulators of the paper's real datasets
//!   (Network Intrusion / KDD'99, Forest CoverType, Charitable Donation) —
//!   see DESIGN.md §3 for the substitution argument;
//! * [`loader`] — parsers for the real `kddcup.data` / `covtype.data`
//!   files, used automatically when present.

pub mod io;
pub mod loader;
pub mod mixture;
pub mod noise;
pub mod profiles;
pub mod syndrift;

pub use mixture::{ArrivalModel, ClusterSpec, MixtureConfig, MixtureStream};
pub use noise::{NoiseModel, NoiseVariant, NoisyStream};
pub use profiles::DatasetProfile;
pub use syndrift::{SynDriftConfig, SynDriftStream};
