//! Loaders for the real evaluation datasets, used when the files exist.
//!
//! * KDD Cup'99 Network Intrusion (`kddcup.data` / `kddcup.data_10_percent`):
//!   comma-separated, 41 features + label. The paper uses the continuous
//!   attributes; we keep every numeric column (the symbolic columns
//!   `protocol_type`, `service`, `flag` and binary land-type flags are
//!   skipped by a numeric-parse probe on the first record) and map the
//!   attack label onto the five categories (normal, DOS, R2L, U2R, PROBE).
//! * UCI Forest CoverType (`covtype.data`): comma-separated, 54 features +
//!   label; the paper uses the first 10 quantitative variables.
//!
//! Both return in-memory [`VecStream`]s with arrival index as timestamp;
//! wrap them in [`crate::NoisyStream`] for the η model.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;
use ustream_common::{ClassLabel, Result, UStreamError, UncertainPoint, VecStream};

/// Maps a KDD'99 attack name to the paper's five categories:
/// 0 = normal, 1 = DOS, 2 = PROBE, 3 = R2L, 4 = U2R.
pub fn kdd99_category(label: &str) -> ClassLabel {
    let name = label.trim_end_matches('.').trim();
    let id = match name {
        "normal" => 0,
        // DOS
        "back" | "land" | "neptune" | "pod" | "smurf" | "teardrop" | "apache2" | "udpstorm"
        | "processtable" | "mailbomb" => 1,
        // PROBE
        "satan" | "ipsweep" | "nmap" | "portsweep" | "mscan" | "saint" => 2,
        // R2L
        "guess_passwd" | "ftp_write" | "imap" | "phf" | "multihop" | "warezmaster"
        | "warezclient" | "spy" | "xlock" | "xsnoop" | "snmpguess" | "snmpgetattack"
        | "httptunnel" | "sendmail" | "named" => 3,
        // U2R
        "buffer_overflow" | "loadmodule" | "rootkit" | "perl" | "sqlattack" | "xterm" | "ps" => 4,
        // Unknown attack names: bucket as DOS-like anomalies.
        _ => 1,
    };
    ClassLabel(id)
}

/// Loads a KDD'99 file into a labelled stream. `limit` caps the record
/// count (0 = everything).
pub fn load_kdd99(path: &Path, limit: usize) -> Result<VecStream> {
    let file =
        File::open(path).map_err(|e| UStreamError::Dataset(format!("{}: {e}", path.display())))?;
    let reader = BufReader::new(file);

    let mut numeric_cols: Option<Vec<usize>> = None;
    let mut points = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 2 {
            return Err(UStreamError::Dataset(format!(
                "{}:{}: too few fields",
                path.display(),
                lineno + 1
            )));
        }
        let (attrs, label) = fields.split_at(fields.len() - 1);
        // Probe the first record for numeric columns.
        let cols = numeric_cols.get_or_insert_with(|| {
            attrs
                .iter()
                .enumerate()
                .filter(|(_, f)| f.parse::<f64>().is_ok())
                .map(|(i, _)| i)
                .collect()
        });
        let mut values = Vec::with_capacity(cols.len());
        for &c in cols.iter() {
            let v: f64 = attrs.get(c).and_then(|f| f.parse().ok()).ok_or_else(|| {
                UStreamError::Dataset(format!(
                    "{}:{}: non-numeric value in column {c}",
                    path.display(),
                    lineno + 1
                ))
            })?;
            values.push(v);
        }
        let class = kdd99_category(label[0]);
        points.push(UncertainPoint::certain(
            values,
            (points.len() + 1) as u64,
            Some(class),
        ));
        if limit > 0 && points.len() >= limit {
            break;
        }
    }
    Ok(VecStream::new(points))
}

/// Loads the UCI CoverType file (first `quantitative_dims` columns + last
/// column as 1-based class). `limit` caps the record count (0 = all).
pub fn load_covtype(path: &Path, quantitative_dims: usize, limit: usize) -> Result<VecStream> {
    let file =
        File::open(path).map_err(|e| UStreamError::Dataset(format!("{}: {e}", path.display())))?;
    let reader = BufReader::new(file);
    let mut points = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < quantitative_dims + 1 {
            return Err(UStreamError::Dataset(format!(
                "{}:{}: expected at least {} fields, got {}",
                path.display(),
                lineno + 1,
                quantitative_dims + 1,
                fields.len()
            )));
        }
        let mut values = Vec::with_capacity(quantitative_dims);
        for f in &fields[..quantitative_dims] {
            values.push(f.parse::<f64>().map_err(|e| {
                UStreamError::Dataset(format!("{}:{}: {e}", path.display(), lineno + 1))
            })?);
        }
        let class: u32 = fields[fields.len() - 1].parse().map_err(|e| {
            UStreamError::Dataset(format!("{}:{}: bad label: {e}", path.display(), lineno + 1))
        })?;
        points.push(UncertainPoint::certain(
            values,
            (points.len() + 1) as u64,
            Some(ClassLabel(class.saturating_sub(1))),
        ));
        if limit > 0 && points.len() >= limit {
            break;
        }
    }
    Ok(VecStream::new(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use ustream_common::DataStream;

    fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("ustream_loader_test_{name}"));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path
    }

    #[test]
    fn kdd99_category_mapping() {
        assert_eq!(kdd99_category("normal."), ClassLabel(0));
        assert_eq!(kdd99_category("smurf."), ClassLabel(1));
        assert_eq!(kdd99_category("ipsweep."), ClassLabel(2));
        assert_eq!(kdd99_category("guess_passwd."), ClassLabel(3));
        assert_eq!(kdd99_category("rootkit."), ClassLabel(4));
        assert_eq!(kdd99_category("future_attack."), ClassLabel(1));
    }

    #[test]
    fn loads_kdd_like_file() {
        // 6 attrs: 0 duration, 1 protocol (symbolic), 2 service (symbolic),
        // 3 src_bytes, 4 dst_bytes, 5 rate.
        let path = temp_file(
            "kdd.csv",
            "0,tcp,http,181,5450,0.5,normal.\n\
             2,udp,dns,10,0,0.1,smurf.\n\
             5,tcp,http,0,0,0.0,ipsweep.\n",
        );
        let mut s = load_kdd99(&path, 0).unwrap();
        assert_eq!(s.dims(), 4); // symbolic columns skipped.
        let p1 = s.next().unwrap();
        assert_eq!(p1.values(), &[0.0, 181.0, 5450.0, 0.5]);
        assert_eq!(p1.label(), Some(ClassLabel(0)));
        assert_eq!(p1.timestamp(), 1);
        let p2 = s.next().unwrap();
        assert_eq!(p2.label(), Some(ClassLabel(1)));
        let p3 = s.next().unwrap();
        assert_eq!(p3.label(), Some(ClassLabel(2)));
        assert!(s.next().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kdd_limit_respected() {
        let path = temp_file(
            "kdd_limit.csv",
            "1,a,2,normal.\n2,b,3,smurf.\n3,c,4,normal.\n",
        );
        let s = load_kdd99(&path, 2).unwrap();
        assert_eq!(s.count(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loads_covtype_like_file() {
        let path = temp_file(
            "cov.csv",
            "2596,51,3,258,0,510,221,232,148,6279,1,0,0,5\n\
             2590,56,2,212,-6,390,220,235,151,6225,0,1,0,2\n",
        );
        let mut s = load_covtype(&path, 10, 0).unwrap();
        assert_eq!(s.dims(), 10);
        let p1 = s.next().unwrap();
        assert_eq!(p1.values()[0], 2596.0);
        assert_eq!(p1.label(), Some(ClassLabel(4))); // 5 → zero-based 4.
        let p2 = s.next().unwrap();
        assert_eq!(p2.label(), Some(ClassLabel(1)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_dataset_error() {
        let err = load_kdd99(Path::new("/nonexistent/kdd.data"), 0).unwrap_err();
        assert!(matches!(err, UStreamError::Dataset(_)));
    }

    #[test]
    fn corrupt_covtype_reports_line() {
        let path = temp_file("cov_bad.csv", "1,2,3\n");
        let err = load_covtype(&path, 10, 0).unwrap_err();
        assert!(err.to_string().contains(":1"));
        std::fs::remove_file(&path).ok();
    }
}
