//! Within-cluster sum-of-squares diagnostics over raw points.

use ustream_common::point::sq_euclidean;

/// Sum over points of the squared distance to their assigned centroid.
///
/// `assignments[i]` indexes into `centroids`; points and centroids must
/// agree on dimensionality.
pub fn ssq(points: &[Vec<f64>], assignments: &[usize], centroids: &[Vec<f64>]) -> f64 {
    debug_assert_eq!(points.len(), assignments.len());
    points
        .iter()
        .zip(assignments)
        .map(|(p, &a)| sq_euclidean(p, &centroids[a]))
        .sum()
}

/// SSQ with each point assigned to its *nearest* centroid (the usual
/// clustering objective).
pub fn ssq_nearest(points: &[Vec<f64>], centroids: &[Vec<f64>]) -> f64 {
    if centroids.is_empty() {
        return 0.0;
    }
    points
        .iter()
        .map(|p| {
            centroids
                .iter()
                .map(|c| sq_euclidean(p, c))
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigned_ssq() {
        let pts = vec![vec![0.0], vec![2.0], vec![10.0]];
        let cents = vec![vec![1.0], vec![10.0]];
        let got = ssq(&pts, &[0, 0, 1], &cents);
        assert!((got - (1.0 + 1.0 + 0.0)).abs() < 1e-12);
    }

    #[test]
    fn nearest_ssq_le_assigned() {
        let pts = vec![vec![0.0], vec![9.0]];
        let cents = vec![vec![0.0], vec![10.0]];
        // Deliberately bad assignment.
        let bad = ssq(&pts, &[1, 0], &cents);
        let best = ssq_nearest(&pts, &cents);
        assert!(best < bad);
        assert!((best - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(ssq(&[], &[], &[vec![0.0]]), 0.0);
        assert_eq!(ssq_nearest(&[vec![1.0]], &[]), 0.0);
    }
}
