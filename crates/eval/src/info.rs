//! Information-theoretic clustering quality: entropy and normalized mutual
//! information (NMI). Purity rewards many tiny clusters; NMI penalises
//! over-fragmentation, so EXPERIMENTS.md reports both.

use crate::confusion::ContingencyTable;

/// Shannon entropy (nats) of a count distribution.
pub fn entropy(counts: impl Iterator<Item = u64>) -> f64 {
    let counts: Vec<u64> = counts.filter(|c| *c > 0).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    -counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Normalized mutual information between the cluster assignment and the
/// class labels: `NMI = 2·I(C; K) / (H(C) + H(K))`, in `[0, 1]`.
///
/// Returns `None` for an empty table; 1.0 when either partition has zero
/// entropy *and* the table is consistent with perfect agreement (single
/// cluster + single class), else the standard formula.
pub fn normalized_mutual_information(table: &ContingencyTable) -> Option<f64> {
    let n = table.total();
    if n == 0 {
        return None;
    }
    let n = n as f64;
    let cluster_totals = table.cluster_totals();
    let class_totals = table.class_totals();

    let h_cluster = entropy(cluster_totals.values().copied());
    let h_class = entropy(class_totals.values().copied());
    if h_cluster + h_class <= 0.0 {
        // One cluster and one class: trivially perfect agreement.
        return Some(1.0);
    }

    let mut mi = 0.0;
    for (cid, hist) in table.clusters() {
        let nc = cluster_totals[&cid] as f64;
        for (label, &count) in hist {
            if count == 0 {
                continue;
            }
            let nk = class_totals[label] as f64;
            let nij = count as f64;
            mi += (nij / n) * ((n * nij) / (nc * nk)).ln();
        }
    }
    Some((2.0 * mi / (h_cluster + h_class)).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_common::ClassLabel;

    fn l(i: u32) -> ClassLabel {
        ClassLabel(i)
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy([].into_iter()), 0.0);
        assert_eq!(entropy([10].into_iter()), 0.0);
        // Uniform over 2: ln 2.
        assert!((entropy([5, 5].into_iter()) - (2.0f64).ln()).abs() < 1e-12);
        // Skewed distribution has lower entropy than uniform.
        assert!(entropy([9, 1].into_iter()) < entropy([5, 5].into_iter()));
    }

    #[test]
    fn nmi_perfect_agreement() {
        let mut t = ContingencyTable::new();
        for _ in 0..10 {
            t.observe(1, l(0));
            t.observe(2, l(1));
        }
        assert!((normalized_mutual_information(&t).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nmi_independent_partitions_near_zero() {
        let mut t = ContingencyTable::new();
        // Every cluster sees both classes equally: MI = 0.
        for _ in 0..10 {
            t.observe(1, l(0));
            t.observe(1, l(1));
            t.observe(2, l(0));
            t.observe(2, l(1));
        }
        assert!(normalized_mutual_information(&t).unwrap() < 1e-9);
    }

    #[test]
    fn nmi_penalises_fragmentation_less_than_purity_rewards_it() {
        // Splitting a pure class into many singleton clusters keeps purity
        // at 1.0 but drops NMI below 1.0.
        let mut t = ContingencyTable::new();
        for i in 0..10u64 {
            t.observe(i, l(0));
        }
        for i in 10..20u64 {
            t.observe(i, l(1));
        }
        let nmi = normalized_mutual_information(&t).unwrap();
        assert!(nmi < 1.0, "fragmented NMI should be < 1: {nmi}");
        assert!(nmi > 0.0);
    }

    #[test]
    fn nmi_empty_and_trivial() {
        let t = ContingencyTable::new();
        assert_eq!(normalized_mutual_information(&t), None);
        let mut t = ContingencyTable::new();
        t.observe(1, l(0));
        t.observe(1, l(0));
        assert_eq!(normalized_mutual_information(&t), Some(1.0));
    }
}
