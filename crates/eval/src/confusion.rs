//! Cluster × class contingency counts.

use std::collections::BTreeMap;
use ustream_common::ClassLabel;

/// Sparse contingency table: for every cluster id, how many points of each
/// ground-truth class it received.
#[derive(Debug, Clone, Default)]
pub struct ContingencyTable {
    counts: BTreeMap<u64, BTreeMap<ClassLabel, u64>>,
    total: u64,
}

impl ContingencyTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one point of class `label` landing in cluster `cluster_id`.
    pub fn observe(&mut self, cluster_id: u64, label: ClassLabel) {
        self.observe_many(cluster_id, label, 1);
    }

    /// Records `n` points at once (bulk attribution, e.g. when remapping a
    /// micro-level table onto macro clusters).
    pub fn observe_many(&mut self, cluster_id: u64, label: ClassLabel, n: u64) {
        if n == 0 {
            return;
        }
        *self
            .counts
            .entry(cluster_id)
            .or_default()
            .entry(label)
            .or_insert(0) += n;
        self.total += n;
    }

    /// Forgets a cluster (e.g. after eviction) — its points no longer count.
    pub fn remove_cluster(&mut self, cluster_id: u64) {
        if let Some(hist) = self.counts.remove(&cluster_id) {
            let removed: u64 = hist.values().sum();
            self.total -= removed;
        }
    }

    /// Clears everything (start of a new evaluation segment).
    pub fn reset(&mut self) {
        self.counts.clear();
        self.total = 0;
    }

    /// Total observed points.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of non-empty clusters.
    pub fn cluster_count(&self) -> usize {
        self.counts.len()
    }

    /// Iterates `(cluster_id, class histogram)`.
    pub fn clusters(&self) -> impl Iterator<Item = (u64, &BTreeMap<ClassLabel, u64>)> {
        self.counts.iter().map(|(id, h)| (*id, h))
    }

    /// Per-class totals across all clusters.
    pub fn class_totals(&self) -> BTreeMap<ClassLabel, u64> {
        let mut out: BTreeMap<ClassLabel, u64> = BTreeMap::new();
        for hist in self.counts.values() {
            for (label, n) in hist {
                *out.entry(*label).or_insert(0) += n;
            }
        }
        out
    }

    /// Per-cluster totals.
    pub fn cluster_totals(&self) -> BTreeMap<u64, u64> {
        self.counts
            .iter()
            .map(|(id, h)| (*id, h.values().sum()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> ClassLabel {
        ClassLabel(i)
    }

    #[test]
    fn observe_and_totals() {
        let mut t = ContingencyTable::new();
        t.observe(1, l(0));
        t.observe(1, l(0));
        t.observe(1, l(1));
        t.observe(2, l(1));
        assert_eq!(t.total(), 4);
        assert_eq!(t.cluster_count(), 2);
        assert_eq!(t.class_totals()[&l(0)], 2);
        assert_eq!(t.class_totals()[&l(1)], 2);
        assert_eq!(t.cluster_totals()[&1], 3);
    }

    #[test]
    fn remove_cluster_updates_total() {
        let mut t = ContingencyTable::new();
        t.observe(1, l(0));
        t.observe(2, l(1));
        t.observe(2, l(1));
        t.remove_cluster(2);
        assert_eq!(t.total(), 1);
        assert_eq!(t.cluster_count(), 1);
        // Removing again is a no-op.
        t.remove_cluster(2);
        assert_eq!(t.total(), 1);
    }

    #[test]
    fn observe_many_bulk() {
        let mut t = ContingencyTable::new();
        t.observe_many(1, l(0), 5);
        t.observe_many(1, l(0), 0);
        assert_eq!(t.total(), 5);
        assert_eq!(t.class_totals()[&l(0)], 5);
    }

    #[test]
    fn reset_clears() {
        let mut t = ContingencyTable::new();
        t.observe(1, l(0));
        t.reset();
        assert_eq!(t.total(), 0);
        assert_eq!(t.cluster_count(), 0);
    }
}
