//! Cluster purity — the paper's accuracy metric.
//!
//! "We computed the percentage presence of the dominant class label in the
//! different clusters and averaged them over all clusters. We refer to this
//! measure as *cluster purity*."
//!
//! Note the *unweighted* average over clusters (not over points): a tiny
//! impure cluster drags the score as much as a huge one, matching the
//! paper's definition.

use crate::confusion::ContingencyTable;
use ustream_common::ClassLabel;

/// Streaming purity accumulator built on a [`ContingencyTable`].
#[derive(Debug, Clone, Default)]
pub struct ClusterPurity {
    table: ContingencyTable,
}

impl ClusterPurity {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one labelled point landing in a cluster.
    pub fn observe(&mut self, cluster_id: u64, label: ClassLabel) {
        self.table.observe(cluster_id, label);
    }

    /// Forgets an evicted cluster.
    pub fn remove_cluster(&mut self, cluster_id: u64) {
        self.table.remove_cluster(cluster_id);
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.table.reset();
    }

    /// Number of points currently attributed.
    pub fn total(&self) -> u64 {
        self.table.total()
    }

    /// The underlying contingency table.
    pub fn table(&self) -> &ContingencyTable {
        &self.table
    }

    /// Average over clusters of the dominant-class fraction; `None` when no
    /// points have been observed.
    pub fn purity(&self) -> Option<f64> {
        purity_of(&self.table)
    }

    /// Point-weighted purity (fraction of all points whose cluster's
    /// dominant class matches theirs) — a common alternative reported for
    /// comparison in EXPERIMENTS.md, not the paper's headline metric.
    pub fn weighted_purity(&self) -> Option<f64> {
        if self.table.total() == 0 {
            return None;
        }
        let mut dominant = 0u64;
        for (_, hist) in self.table.clusters() {
            dominant += hist.values().copied().max().unwrap_or(0);
        }
        Some(dominant as f64 / self.table.total() as f64)
    }
}

/// Unweighted-average purity of a contingency table.
pub fn purity_of(table: &ContingencyTable) -> Option<f64> {
    if table.cluster_count() == 0 {
        return None;
    }
    let mut acc = 0.0;
    let mut clusters = 0usize;
    for (_, hist) in table.clusters() {
        let total: u64 = hist.values().sum();
        if total == 0 {
            continue;
        }
        let dominant = hist.values().copied().max().unwrap_or(0);
        acc += dominant as f64 / total as f64;
        clusters += 1;
    }
    if clusters == 0 {
        None
    } else {
        Some(acc / clusters as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> ClassLabel {
        ClassLabel(i)
    }

    #[test]
    fn perfect_purity() {
        let mut p = ClusterPurity::new();
        for _ in 0..5 {
            p.observe(1, l(0));
            p.observe(2, l(1));
        }
        assert_eq!(p.purity(), Some(1.0));
        assert_eq!(p.weighted_purity(), Some(1.0));
    }

    #[test]
    fn mixed_cluster_purity() {
        let mut p = ClusterPurity::new();
        // Cluster 1: 3 of class 0, 1 of class 1 → 0.75.
        for _ in 0..3 {
            p.observe(1, l(0));
        }
        p.observe(1, l(1));
        // Cluster 2: pure → 1.0.
        p.observe(2, l(1));
        let got = p.purity().unwrap();
        assert!((got - (0.75 + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn unweighted_vs_weighted() {
        let mut p = ClusterPurity::new();
        // Huge pure cluster + tiny 50/50 cluster.
        for _ in 0..98 {
            p.observe(1, l(0));
        }
        p.observe(2, l(0));
        p.observe(2, l(1));
        let unweighted = p.purity().unwrap();
        let weighted = p.weighted_purity().unwrap();
        assert!((unweighted - 0.75).abs() < 1e-12);
        assert!((weighted - 0.99).abs() < 1e-12);
    }

    #[test]
    fn empty_gives_none() {
        let p = ClusterPurity::new();
        assert_eq!(p.purity(), None);
        assert_eq!(p.weighted_purity(), None);
    }

    #[test]
    fn eviction_removes_contribution() {
        let mut p = ClusterPurity::new();
        p.observe(1, l(0));
        p.observe(2, l(0));
        p.observe(2, l(1));
        p.remove_cluster(2);
        assert_eq!(p.purity(), Some(1.0));
        assert_eq!(p.total(), 1);
    }

    #[test]
    fn reset_clears() {
        let mut p = ClusterPurity::new();
        p.observe(1, l(0));
        p.reset();
        assert_eq!(p.purity(), None);
    }
}
