//! Label-free (internal) clustering quality: simplified silhouette and the
//! Davies–Bouldin index.
//!
//! The paper evaluates with labelled purity, but a production library needs
//! internal metrics for streams without ground truth. Both metrics here
//! operate on centroid summaries (micro- or macro-clusters) rather than raw
//! points, which is the only thing a one-pass algorithm retains.

use ustream_common::point::sq_euclidean;

/// A weighted cluster summary for internal metrics: centroid, RMS radius
/// and weight.
#[derive(Debug, Clone)]
pub struct ClusterSummary {
    /// Cluster centroid.
    pub centroid: Vec<f64>,
    /// RMS deviation of members about the centroid.
    pub radius: f64,
    /// Number of points (or decayed weight).
    pub weight: f64,
}

impl ClusterSummary {
    /// Convenience constructor.
    pub fn new(centroid: Vec<f64>, radius: f64, weight: f64) -> Self {
        debug_assert!(radius >= 0.0 && weight >= 0.0);
        Self {
            centroid,
            radius,
            weight,
        }
    }
}

/// Simplified silhouette over cluster summaries: for each cluster, compare
/// its radius `a` (intra-cluster cohesion proxy) with the distance `b` to
/// the nearest other centroid; silhouette = `(b − a)/max(a, b)`, averaged
/// with cluster weights. Result in `[−1, 1]`, higher is better-separated.
///
/// Returns `None` with fewer than two clusters.
pub fn simplified_silhouette(clusters: &[ClusterSummary]) -> Option<f64> {
    if clusters.len() < 2 {
        return None;
    }
    let mut acc = 0.0;
    let mut weight = 0.0;
    for (i, c) in clusters.iter().enumerate() {
        if c.weight <= 0.0 {
            continue;
        }
        let b = clusters
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, o)| sq_euclidean(&c.centroid, &o.centroid))
            .fold(f64::INFINITY, f64::min)
            .sqrt();
        let a = c.radius;
        let denom = a.max(b);
        let s = if denom > 0.0 { (b - a) / denom } else { 0.0 };
        acc += c.weight * s;
        weight += c.weight;
    }
    if weight <= 0.0 {
        None
    } else {
        Some(acc / weight)
    }
}

/// Davies–Bouldin index over cluster summaries:
/// `DB = (1/k) Σ_i max_{j≠i} (r_i + r_j) / d(c_i, c_j)`.
/// Lower is better; 0 for perfectly separated point clusters.
///
/// Returns `None` with fewer than two clusters; coincident centroids yield
/// `f64::INFINITY` contributions (maximally confusable).
pub fn davies_bouldin(clusters: &[ClusterSummary]) -> Option<f64> {
    let live: Vec<&ClusterSummary> = clusters.iter().filter(|c| c.weight > 0.0).collect();
    if live.len() < 2 {
        return None;
    }
    let mut acc = 0.0;
    for (i, c) in live.iter().enumerate() {
        let mut worst: f64 = 0.0;
        for (j, o) in live.iter().enumerate() {
            if i == j {
                continue;
            }
            let d = sq_euclidean(&c.centroid, &o.centroid).sqrt();
            let ratio = if d > 0.0 {
                (c.radius + o.radius) / d
            } else if c.radius + o.radius > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            worst = worst.max(ratio);
        }
        acc += worst;
    }
    Some(acc / live.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(x: f64, y: f64, r: f64, w: f64) -> ClusterSummary {
        ClusterSummary::new(vec![x, y], r, w)
    }

    #[test]
    fn well_separated_scores_high_silhouette() {
        let tight = vec![summary(0.0, 0.0, 0.1, 10.0), summary(100.0, 0.0, 0.1, 10.0)];
        let s = simplified_silhouette(&tight).unwrap();
        assert!(s > 0.99, "tight separation should be ~1: {s}");
    }

    #[test]
    fn overlapping_scores_low_silhouette() {
        let blurred = vec![summary(0.0, 0.0, 5.0, 10.0), summary(1.0, 0.0, 5.0, 10.0)];
        let s = simplified_silhouette(&blurred).unwrap();
        assert!(s < 0.0, "overlap should score negative: {s}");
    }

    #[test]
    fn silhouette_ranking_matches_geometry() {
        let good = vec![summary(0.0, 0.0, 0.5, 5.0), summary(10.0, 0.0, 0.5, 5.0)];
        let bad = vec![summary(0.0, 0.0, 3.0, 5.0), summary(4.0, 0.0, 3.0, 5.0)];
        assert!(simplified_silhouette(&good).unwrap() > simplified_silhouette(&bad).unwrap());
    }

    #[test]
    fn silhouette_needs_two_clusters() {
        assert_eq!(simplified_silhouette(&[summary(0.0, 0.0, 1.0, 1.0)]), None);
        assert_eq!(simplified_silhouette(&[]), None);
    }

    #[test]
    fn davies_bouldin_lower_for_better_clusterings() {
        let good = vec![summary(0.0, 0.0, 0.5, 5.0), summary(10.0, 0.0, 0.5, 5.0)];
        let bad = vec![summary(0.0, 0.0, 3.0, 5.0), summary(4.0, 0.0, 3.0, 5.0)];
        let db_good = davies_bouldin(&good).unwrap();
        let db_bad = davies_bouldin(&bad).unwrap();
        assert!(db_good < db_bad, "good {db_good} vs bad {db_bad}");
        assert!((db_good - 0.1).abs() < 1e-9); // (0.5+0.5)/10
    }

    #[test]
    fn davies_bouldin_coincident_centroids_infinite() {
        let degenerate = vec![summary(1.0, 1.0, 0.5, 2.0), summary(1.0, 1.0, 0.5, 2.0)];
        assert_eq!(davies_bouldin(&degenerate), Some(f64::INFINITY));
    }

    #[test]
    fn zero_weight_clusters_skipped() {
        let clusters = vec![
            summary(0.0, 0.0, 0.2, 5.0),
            summary(50.0, 0.0, 0.2, 5.0),
            summary(25.0, 25.0, 99.0, 0.0), // ghost cluster
        ];
        let s = simplified_silhouette(&clusters).unwrap();
        assert!(s > 0.9);
        let db = davies_bouldin(&clusters).unwrap();
        assert!(db < 0.1);
    }
}
