//! Trailing-window throughput measurement.
//!
//! The paper reports "the number of points processed per second at
//! particular points of the data stream progression ... computed by using
//! the average number of points processed per second in the last 2
//! seconds". [`ThroughputMeter`] reproduces that: it logs `(t, n)` samples
//! and reports the rate over a trailing window.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Points/second meter over a trailing wall-clock window.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    window: Duration,
    samples: VecDeque<(Instant, u64)>,
    total: u64,
    started: Instant,
}

impl ThroughputMeter {
    /// Meter with the paper's 2-second trailing window.
    pub fn new() -> Self {
        Self::with_window(Duration::from_secs(2))
    }

    /// Meter with a custom trailing window.
    pub fn with_window(window: Duration) -> Self {
        let now = Instant::now();
        Self {
            window,
            samples: VecDeque::new(),
            total: 0,
            started: now,
        }
    }

    /// Records that `n` points were processed "now".
    pub fn record(&mut self, n: u64) {
        self.record_at(Instant::now(), n);
    }

    /// Records with an explicit timestamp (tests inject virtual clocks).
    pub fn record_at(&mut self, at: Instant, n: u64) {
        self.total += n;
        self.samples.push_back((at, n));
        self.evict(at);
    }

    /// Total points recorded since construction.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Points/second over the trailing window ending "now".
    pub fn rate(&mut self) -> f64 {
        self.rate_at(Instant::now())
    }

    /// Points/second over the trailing window ending at `at`.
    pub fn rate_at(&mut self, at: Instant) -> f64 {
        self.evict(at);
        let in_window: u64 = self.samples.iter().map(|(_, n)| n).sum();
        // Use the true covered span (≤ window) so early readings are not
        // diluted by the empty part of the window.
        let span = match self.samples.front() {
            Some((first, _)) => at.saturating_duration_since(*first),
            None => return 0.0,
        };
        let span = span.max(Duration::from_millis(1)).min(self.window);
        in_window as f64 / span.as_secs_f64()
    }

    /// Average points/second since construction.
    pub fn overall_rate(&self) -> f64 {
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        self.total as f64 / elapsed
    }

    fn evict(&mut self, now: Instant) {
        while let Some((t, _)) = self.samples.front() {
            if now.saturating_duration_since(*t) > self.window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_over_virtual_clock() {
        let mut m = ThroughputMeter::with_window(Duration::from_secs(2));
        let t0 = Instant::now();
        // 1000 points spread over 1 second, in 10 batches.
        for i in 0..10 {
            m.record_at(t0 + Duration::from_millis(i * 100), 100);
        }
        let rate = m.rate_at(t0 + Duration::from_millis(1000));
        assert!(
            (rate - 1000.0).abs() < 150.0,
            "expected ≈1000 pts/s, got {rate}"
        );
        assert_eq!(m.total(), 1000);
    }

    #[test]
    fn old_samples_evicted() {
        let mut m = ThroughputMeter::with_window(Duration::from_secs(2));
        let t0 = Instant::now();
        m.record_at(t0, 1_000_000);
        // 10 seconds later the burst is outside the window.
        let rate = m.rate_at(t0 + Duration::from_secs(10));
        assert_eq!(rate, 0.0);
        assert_eq!(m.total(), 1_000_000);
    }

    #[test]
    fn steady_stream_rate() {
        let mut m = ThroughputMeter::with_window(Duration::from_secs(2));
        let t0 = Instant::now();
        // 500 pts per 100 ms for 4 s → 5000 pts/s steady.
        for i in 0..40 {
            m.record_at(t0 + Duration::from_millis(i * 100), 500);
        }
        let rate = m.rate_at(t0 + Duration::from_millis(4000));
        assert!(
            (rate - 5000.0).abs() < 600.0,
            "expected ≈5000 pts/s, got {rate}"
        );
    }

    #[test]
    fn empty_meter() {
        let mut m = ThroughputMeter::new();
        assert_eq!(m.rate(), 0.0);
        assert_eq!(m.total(), 0);
    }
}
