//! Checkpointed purity along the stream — the x-axis of Figures 2–4.
//!
//! The tracker accumulates (cluster, class) observations and, every
//! `checkpoint_interval` points, records the purity of the segment since
//! the previous checkpoint and starts a fresh segment. Segment-local purity
//! is what makes the progression curves meaningful on evolving streams: a
//! cluster that was pure an hour ago but is now absorbing a different class
//! should show up as a drop *now*.

use crate::confusion::ContingencyTable;
use crate::purity::purity_of;
use ustream_common::ClassLabel;

/// One recorded checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressionPoint {
    /// Stream position (total points processed when the checkpoint fired).
    pub points: u64,
    /// Segment purity at this checkpoint (unweighted over clusters).
    pub purity: f64,
    /// Number of distinct clusters that received points in the segment.
    pub clusters: usize,
}

/// Accumulates per-segment purity checkpoints.
#[derive(Debug, Clone)]
pub struct ProgressionTracker {
    interval: u64,
    seen: u64,
    segment: ContingencyTable,
    history: Vec<ProgressionPoint>,
}

impl ProgressionTracker {
    /// Tracker that checkpoints every `interval` points.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "checkpoint interval must be positive");
        Self {
            interval,
            seen: 0,
            segment: ContingencyTable::new(),
            history: Vec::new(),
        }
    }

    /// Records one labelled point; unlabelled points still advance the
    /// stream position (pass `None`).
    pub fn observe(&mut self, cluster_id: u64, label: Option<ClassLabel>) {
        self.seen += 1;
        if let Some(l) = label {
            self.segment.observe(cluster_id, l);
        }
        if self.seen.is_multiple_of(self.interval) {
            self.checkpoint();
        }
    }

    /// Forces a checkpoint now (used at stream end for the partial tail).
    pub fn checkpoint(&mut self) {
        if let Some(purity) = purity_of(&self.segment) {
            self.history.push(ProgressionPoint {
                points: self.seen,
                purity,
                clusters: self.segment.cluster_count(),
            });
        }
        self.segment.reset();
    }

    /// Recorded checkpoints so far.
    pub fn history(&self) -> &[ProgressionPoint] {
        &self.history
    }

    /// Points observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Mean purity across all recorded checkpoints (the "accuracy over the
    /// entire data stream" of Figures 5–7).
    pub fn mean_purity(&self) -> Option<f64> {
        if self.history.is_empty() {
            return None;
        }
        Some(self.history.iter().map(|p| p.purity).sum::<f64>() / self.history.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> ClassLabel {
        ClassLabel(i)
    }

    #[test]
    fn checkpoints_fire_on_interval() {
        let mut t = ProgressionTracker::new(10);
        for i in 0..35u64 {
            t.observe(i % 2, Some(l((i % 2) as u32)));
        }
        assert_eq!(t.history().len(), 3);
        assert_eq!(t.history()[0].points, 10);
        assert_eq!(t.history()[2].points, 30);
        assert_eq!(t.seen(), 35);
        // Pure assignment → purity 1 at every checkpoint.
        assert!(t.history().iter().all(|p| (p.purity - 1.0).abs() < 1e-12));
        assert_eq!(t.mean_purity(), Some(1.0));
    }

    #[test]
    fn final_checkpoint_flushes_tail() {
        let mut t = ProgressionTracker::new(100);
        for _ in 0..5 {
            t.observe(1, Some(l(0)));
        }
        assert!(t.history().is_empty());
        t.checkpoint();
        assert_eq!(t.history().len(), 1);
        assert_eq!(t.history()[0].points, 5);
    }

    #[test]
    fn segments_are_independent() {
        let mut t = ProgressionTracker::new(4);
        // Segment 1: pure. Segment 2: 50/50 in one cluster.
        for _ in 0..4 {
            t.observe(1, Some(l(0)));
        }
        for i in 0..4u64 {
            t.observe(1, Some(l((i % 2) as u32)));
        }
        assert_eq!(t.history().len(), 2);
        assert!((t.history()[0].purity - 1.0).abs() < 1e-12);
        assert!((t.history()[1].purity - 0.5).abs() < 1e-12);
        assert_eq!(t.mean_purity(), Some(0.75));
    }

    #[test]
    fn unlabelled_points_advance_position_only() {
        let mut t = ProgressionTracker::new(3);
        t.observe(1, None);
        t.observe(1, None);
        t.observe(1, None);
        // Checkpoint fired but had no labelled data → no history entry.
        assert!(t.history().is_empty());
        assert_eq!(t.seen(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let _ = ProgressionTracker::new(0);
    }
}
