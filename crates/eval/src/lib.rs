//! # ustream-eval
//!
//! Evaluation suite for stream clustering:
//!
//! * [`ClusterPurity`] — the paper's quality metric: "the percentage
//!   presence of the dominant class label in the different clusters ...
//!   averaged over all clusters";
//! * [`ContingencyTable`] — cluster × class counts underlying purity, NMI
//!   and the adjusted Rand index;
//! * [`ThroughputMeter`] — points/second over a trailing window, matching
//!   the paper's "average number of points processed per second in the last
//!   2 seconds";
//! * [`ProgressionTracker`] — checkpointed purity along the stream
//!   (x-axis of Figures 2–4);
//! * [`ssq`] — within-cluster sum of squares diagnostics.

pub mod confusion;
pub mod info;
pub mod internal;
pub mod progression;
pub mod purity;
pub mod rand_index;
pub mod ssq;
pub mod throughput;

pub use confusion::ContingencyTable;
pub use info::{entropy, normalized_mutual_information};
pub use internal::{davies_bouldin, simplified_silhouette, ClusterSummary};
pub use progression::{ProgressionPoint, ProgressionTracker};
pub use purity::ClusterPurity;
pub use rand_index::adjusted_rand_index;
pub use throughput::ThroughputMeter;
