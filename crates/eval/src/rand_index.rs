//! Adjusted Rand index over a contingency table.

use crate::confusion::ContingencyTable;

#[inline]
fn choose2(n: u64) -> f64 {
    let n = n as f64;
    n * (n - 1.0) / 2.0
}

/// Adjusted Rand index: chance-corrected pairwise agreement between the
/// cluster assignment and the class labels. 1.0 = identical partitions,
/// ≈0 = random, can be negative for worse-than-random.
///
/// Returns `None` when fewer than two points have been observed.
pub fn adjusted_rand_index(table: &ContingencyTable) -> Option<f64> {
    let n = table.total();
    if n < 2 {
        return None;
    }

    let sum_ij: f64 = table
        .clusters()
        .flat_map(|(_, hist)| hist.values())
        .map(|&c| choose2(c))
        .sum();
    let sum_i: f64 = table.cluster_totals().values().map(|&c| choose2(c)).sum();
    let sum_j: f64 = table.class_totals().values().map(|&c| choose2(c)).sum();
    let total_pairs = choose2(n);

    let expected = sum_i * sum_j / total_pairs;
    let max_index = 0.5 * (sum_i + sum_j);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate: both partitions trivial (all-one-cluster, all-one-class).
        return Some(1.0);
    }
    Some((sum_ij - expected) / (max_index - expected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_common::ClassLabel;

    fn l(i: u32) -> ClassLabel {
        ClassLabel(i)
    }

    #[test]
    fn perfect_partition() {
        let mut t = ContingencyTable::new();
        for _ in 0..20 {
            t.observe(1, l(0));
            t.observe(2, l(1));
        }
        assert!((adjusted_rand_index(&t).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_partition_near_zero() {
        let mut t = ContingencyTable::new();
        for _ in 0..50 {
            t.observe(1, l(0));
            t.observe(1, l(1));
            t.observe(2, l(0));
            t.observe(2, l(1));
        }
        let ari = adjusted_rand_index(&t).unwrap();
        assert!(ari.abs() < 0.05, "ARI for independent split: {ari}");
    }

    #[test]
    fn too_few_points() {
        let mut t = ContingencyTable::new();
        assert_eq!(adjusted_rand_index(&t), None);
        t.observe(1, l(0));
        assert_eq!(adjusted_rand_index(&t), None);
    }

    #[test]
    fn degenerate_single_cluster_single_class() {
        let mut t = ContingencyTable::new();
        for _ in 0..5 {
            t.observe(1, l(0));
        }
        assert_eq!(adjusted_rand_index(&t), Some(1.0));
    }

    #[test]
    fn better_clustering_scores_higher() {
        // Clean split vs noisy split of the same data.
        let mut clean = ContingencyTable::new();
        let mut noisy = ContingencyTable::new();
        for _ in 0..40 {
            clean.observe(1, l(0));
            clean.observe(2, l(1));
            noisy.observe(1, l(0));
            noisy.observe(2, l(1));
        }
        for _ in 0..10 {
            noisy.observe(1, l(1));
            noisy.observe(2, l(0));
        }
        assert!(adjusted_rand_index(&clean).unwrap() > adjusted_rand_index(&noisy).unwrap());
    }
}
