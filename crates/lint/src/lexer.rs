//! A string/char/comment-aware Rust tokenizer.
//!
//! `ustream-lint` deliberately does not parse Rust — a full grammar would
//! need an external parser crate, and the workspace policy is vendored-only
//! dependencies. The rules in [`crate::rules`] only need a *faithful token
//! stream*: one where `unwrap` inside a string literal, a `==` inside a doc
//! comment, or a `'a` lifetime masquerading as a char literal can never
//! produce a false diagnostic. The lexer therefore handles, precisely:
//!
//! * line comments, nested block comments, and doc comments (kept as tokens
//!   so rules can see suppressions and `relaxed-ok:` justifications),
//! * string / raw string / byte string / C string literals with escapes,
//! * char literals vs. lifetimes (`'x'` vs. `'x`),
//! * numeric literals, including float detection, tuple-index fields
//!   (`pair.0.1` never lexes `0.1` as a float), and suffixes,
//! * multi-char operators (`==`, `!=`, `::`, `->`, `..=`, …) as single
//!   tokens so rules can match them without reassembling punctuation.
//!
//! Every token carries a 1-indexed `line` / `col` for diagnostics.

/// What a single token is. Comment variants keep their raw text (including
/// the `//` / `/*` sigils) so rules can inspect suppression annotations.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unwrap`, `Ordering`, …).
    Ident(String),
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// An integer literal (any base), raw text preserved.
    Int(String),
    /// A float literal (has a decimal point, exponent, or `f32`/`f64`
    /// suffix), raw text preserved.
    Float(String),
    /// A string literal of any flavour; raw source text preserved so rules
    /// can look inside attribute strings like `feature = "failpoints"`.
    Str(String),
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// An operator or punctuation token; multi-char operators arrive as one
    /// token (`"=="`, `"::"`, `"->"`, …).
    Op(String),
    /// A `//`-style comment, raw text preserved (`///` and `//!` doc
    /// comments included — check the prefix).
    LineComment(String),
    /// A `/* */`-style comment (nesting handled), raw text preserved.
    BlockComment(String),
}

/// One lexed token with its 1-indexed source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokKind,
    /// 1-indexed source line of the token's first character.
    pub line: u32,
    /// 1-indexed column (in chars) of the token's first character.
    pub col: u32,
}

impl Token {
    /// The identifier text if this token is an [`TokKind::Ident`].
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The operator text if this token is an [`TokKind::Op`].
    pub fn op(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Op(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when the token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment(_) | TokKind::BlockComment(_)
        )
    }

    /// True when the token is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub fn is_doc_comment(&self) -> bool {
        match &self.kind {
            TokKind::LineComment(s) => s.starts_with("///") || s.starts_with("//!"),
            TokKind::BlockComment(s) => s.starts_with("/**") || s.starts_with("/*!"),
            _ => false,
        }
    }
}

/// Multi-char operators, longest first so greedy matching is correct.
const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "..", "->", "=>", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, off: usize) -> Option<char> {
        self.chars.get(self.i + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, buf: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if pred(c) {
                buf.push(c);
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. The lexer never fails: malformed trailing input
/// degrades to single-char `Op` tokens, which at worst makes a rule miss —
/// it can never invent an identifier out of a string or comment.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out: Vec<Token> = Vec::new();
    // Tracks whether the previous significant token was a lone `.`, which
    // puts the lexer in tuple-field position: `p.0.1` is Ident(p) . 0 . 1,
    // not Ident(p) . Float(0.1).
    let mut after_dot = false;

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            cur.eat_while(&mut text, |c| c != '\n');
            out.push(Token {
                kind: TokKind::LineComment(text),
                line,
                col,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0u32;
            loop {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push('/');
                        text.push('*');
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        text.push('*');
                        text.push('/');
                        cur.bump();
                        cur.bump();
                        if depth == 0 {
                            break;
                        }
                    }
                    (Some(ch), _) => {
                        text.push(ch);
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            out.push(Token {
                kind: TokKind::BlockComment(text),
                line,
                col,
            });
            continue;
        }

        // Identifiers — with string-prefix detection (r", br#", b", c", cr").
        if is_ident_start(c) {
            let mut name = String::new();
            cur.eat_while(&mut name, is_ident_continue);
            let next = cur.peek(0);
            let raw_capable = matches!(name.as_str(), "r" | "br" | "cr");
            let plain_capable = matches!(name.as_str(), "b" | "c");
            if (raw_capable && (next == Some('"') || next == Some('#')))
                || (plain_capable && next == Some('"'))
            {
                if let Some(text) = lex_string_tail(&mut cur, &name, raw_capable) {
                    out.push(Token {
                        kind: TokKind::Str(text),
                        line,
                        col,
                    });
                    after_dot = false;
                    continue;
                }
            }
            out.push(Token {
                kind: TokKind::Ident(name),
                line,
                col,
            });
            after_dot = false;
            continue;
        }

        // Plain string literal.
        if c == '"' {
            if let Some(text) = lex_string_tail(&mut cur, "", false) {
                out.push(Token {
                    kind: TokKind::Str(text),
                    line,
                    col,
                });
            }
            after_dot = false;
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            let is_char = match cur.peek(1) {
                Some('\\') => true,
                Some(_) => cur.peek(2) == Some('\''),
                None => false,
            };
            if is_char {
                cur.bump(); // opening '
                if cur.peek(0) == Some('\\') {
                    cur.bump();
                    cur.bump(); // escape head; \u{..} tails lex harmlessly
                } else {
                    cur.bump();
                }
                // Consume up to the closing quote (covers \u{...} tails).
                while let Some(ch) = cur.peek(0) {
                    cur.bump();
                    if ch == '\'' {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokKind::Char,
                    line,
                    col,
                });
            } else {
                cur.bump();
                let mut name = String::new();
                cur.eat_while(&mut name, is_ident_continue);
                out.push(Token {
                    kind: TokKind::Lifetime,
                    line,
                    col,
                });
            }
            after_dot = false;
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let kind = lex_number(&mut cur, after_dot);
            out.push(Token { kind, line, col });
            after_dot = false;
            continue;
        }

        // Operators / punctuation, longest match first.
        let mut matched = None;
        for op in MULTI_OPS {
            let n = op.chars().count();
            if (0..n).all(|k| cur.peek(k) == op.chars().nth(k)) {
                matched = Some(*op);
                break;
            }
        }
        if let Some(op) = matched {
            for _ in 0..op.chars().count() {
                cur.bump();
            }
            out.push(Token {
                kind: TokKind::Op(op.to_string()),
                line,
                col,
            });
            after_dot = false;
            continue;
        }
        cur.bump();
        after_dot = c == '.';
        out.push(Token {
            kind: TokKind::Op(c.to_string()),
            line,
            col,
        });
    }
    out
}

/// Lexes the remainder of a string literal whose prefix (possibly empty)
/// has already been consumed. `raw` selects raw-string rules (`r#".."#`).
/// Returns the full literal text including prefix and quotes.
fn lex_string_tail(cur: &mut Cursor, prefix: &str, raw: bool) -> Option<String> {
    let mut text = String::from(prefix);
    if raw {
        let mut hashes = 0usize;
        while cur.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            cur.bump();
        }
        if cur.peek(0) != Some('"') {
            return None;
        }
        text.push('"');
        cur.bump();
        loop {
            let ch = cur.bump()?;
            text.push(ch);
            if ch == '"' && (0..hashes).all(|k| cur.peek(k) == Some('#')) {
                for _ in 0..hashes {
                    text.push('#');
                    cur.bump();
                }
                return Some(text);
            }
        }
    }
    // Cooked string: handle escapes.
    if cur.peek(0) != Some('"') {
        return None;
    }
    text.push('"');
    cur.bump();
    loop {
        let ch = cur.bump()?;
        text.push(ch);
        match ch {
            '\\' => {
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            '"' => return Some(text),
            _ => {}
        }
    }
}

/// Lexes a numeric literal. In tuple-field position (`after_dot`) only bare
/// digits are consumed so `p.0.1` yields two integer fields.
fn lex_number(cur: &mut Cursor, after_dot: bool) -> TokKind {
    let mut text = String::new();
    if after_dot {
        cur.eat_while(&mut text, |c| c.is_ascii_digit());
        return TokKind::Int(text);
    }
    // Radix prefixes.
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        text.push('0');
        cur.bump();
        let radix = cur.bump().unwrap_or('x');
        text.push(radix);
        cur.eat_while(&mut text, |c| c.is_ascii_hexdigit() || c == '_');
        // Integer suffix (u8..usize).
        cur.eat_while(&mut text, is_ident_continue);
        return TokKind::Int(text);
    }
    cur.eat_while(&mut text, |c| c.is_ascii_digit() || c == '_');
    let mut is_float = false;
    if cur.peek(0) == Some('.') {
        match cur.peek(1) {
            Some(d) if d.is_ascii_digit() => {
                is_float = true;
                text.push('.');
                cur.bump();
                cur.eat_while(&mut text, |c| c.is_ascii_digit() || c == '_');
            }
            Some('.') => {}                    // range: 1..n
            Some(d) if is_ident_start(d) => {} // method call: 1.max(..)
            _ => {
                // Trailing-dot float: `1.`
                is_float = true;
                text.push('.');
                cur.bump();
            }
        }
    }
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let exp_ok = match cur.peek(1) {
            Some(d) if d.is_ascii_digit() => true,
            Some('+' | '-') => matches!(cur.peek(2), Some(d) if d.is_ascii_digit()),
            _ => false,
        };
        if exp_ok {
            is_float = true;
            text.push('e');
            cur.bump();
            if matches!(cur.peek(0), Some('+' | '-')) {
                if let Some(s) = cur.bump() {
                    text.push(s);
                }
            }
            cur.eat_while(&mut text, |c| c.is_ascii_digit() || c == '_');
        }
    }
    // Type suffix: f32/f64 force float, u*/i* keep int.
    let mut suffix = String::new();
    cur.eat_while(&mut suffix, is_ident_continue);
    if suffix.starts_with('f') {
        is_float = true;
    }
    text.push_str(&suffix);
    if is_float {
        TokKind::Float(text)
    } else {
        TokKind::Int(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_ops() {
        let k = kinds("a.unwrap() == b");
        assert_eq!(
            k,
            vec![
                TokKind::Ident("a".into()),
                TokKind::Op(".".into()),
                TokKind::Ident("unwrap".into()),
                TokKind::Op("(".into()),
                TokKind::Op(")".into()),
                TokKind::Op("==".into()),
                TokKind::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let k = kinds(r#"let s = "a.unwrap() == 1.0";"#);
        assert!(!k
            .iter()
            .any(|t| matches!(t, TokKind::Ident(s) if s == "unwrap")));
        assert!(!k.iter().any(|t| matches!(t, TokKind::Float(_))));
    }

    #[test]
    fn raw_and_byte_strings() {
        let k = kinds(r###"let s = r#"x "inner" y"#; let b = b"bytes"; let c = br#"raw"#;"###);
        let strs = k.iter().filter(|t| matches!(t, TokKind::Str(_))).count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn char_vs_lifetime() {
        let k = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = k.iter().filter(|t| matches!(t, TokKind::Lifetime)).count();
        let chars = k.iter().filter(|t| matches!(t, TokKind::Char)).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn tuple_fields_are_not_floats() {
        let k = kinds("p.0.1");
        assert_eq!(
            k,
            vec![
                TokKind::Ident("p".into()),
                TokKind::Op(".".into()),
                TokKind::Int("0".into()),
                TokKind::Op(".".into()),
                TokKind::Int("1".into()),
            ]
        );
    }

    #[test]
    fn float_shapes() {
        assert_eq!(kinds("1.0"), vec![TokKind::Float("1.0".into())]);
        assert_eq!(kinds("1e-3"), vec![TokKind::Float("1e-3".into())]);
        assert_eq!(kinds("2f64"), vec![TokKind::Float("2f64".into())]);
        assert_eq!(kinds("0xff_u32"), vec![TokKind::Int("0xff_u32".into())]);
        // `1..n` is a range, `1.max(2)` a method call — both keep the int.
        assert!(matches!(kinds("1..9")[0], TokKind::Int(_)));
        assert!(matches!(kinds("1.max(2)")[0], TokKind::Int(_)));
    }

    #[test]
    fn nested_block_comments() {
        let k = kinds("/* outer /* inner */ still */ x");
        assert_eq!(k.len(), 2);
        assert!(matches!(&k[0], TokKind::BlockComment(s) if s.contains("inner")));
        assert_eq!(k[1], TokKind::Ident("x".into()));
    }

    #[test]
    fn doc_comment_detection() {
        let toks = lex("/// doc\n//! inner\n// plain\nfn f() {}");
        assert!(toks[0].is_doc_comment());
        assert!(toks[1].is_doc_comment());
        assert!(!toks[2].is_doc_comment());
    }

    #[test]
    fn positions_are_one_indexed() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn multichar_ops_are_single_tokens() {
        let k = kinds("a ..= b :: c -> d != e");
        let ops: Vec<_> = k
            .iter()
            .filter_map(|t| match t {
                TokKind::Op(s) => Some(s.as_str().to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["..=", "::", "->", "!="]);
    }

    #[test]
    fn raw_strings_with_multiple_hashes() {
        // r##"..."## may contain a bare `"#` without terminating.
        let src = "let s = r##\"has \"# inside\"##; done";
        let k = kinds(src);
        assert!(
            matches!(&k[3], TokKind::Str(s) if s.contains("has \"# inside")),
            "got {:?}",
            k[3]
        );
        assert_eq!(*k.last().unwrap(), TokKind::Ident("done".into()));

        // Hash-count mismatch: r#"..."## closes at the first `"#` and the
        // trailing `#` lexes as an ordinary op, not part of the string.
        let k = kinds("r#\"x\"## y");
        assert!(matches!(&k[0], TokKind::Str(_)));
        assert_eq!(k[1], TokKind::Op("#".into()));
        assert_eq!(k[2], TokKind::Ident("y".into()));

        // A raw prefix with hashes but no opening quote is not a string.
        let k = kinds("r#foo");
        assert!(!k.iter().any(|t| matches!(t, TokKind::Str(_))));
    }

    #[test]
    fn unterminated_constructs_at_eof_do_not_hang() {
        // Nested block comment truncated mid-nesting: everything to EOF
        // becomes one comment token.
        let toks = lex("x /* outer /* inner  ");
        assert_eq!(toks.len(), 2);
        assert!(matches!(&toks[1].kind, TokKind::BlockComment(_)));

        // Unterminated cooked string, raw string, and a trailing escape.
        for src in ["let s = \"never closed", "r##\"open", "b\"half\\"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "lexer dropped everything for {src:?}");
        }
    }

    #[test]
    fn byte_string_escapes() {
        // An escaped quote must not terminate the byte string, and an
        // escaped backslash must not hide the real terminator.
        let k = kinds(r#"let b = b"q:\" bs:\\"; after"#);
        let strs: Vec<_> = k
            .iter()
            .filter_map(|t| match t {
                TokKind::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(strs.len(), 1, "tokens: {k:?}");
        assert!(strs[0].starts_with("b\""));
        assert_eq!(*k.last().unwrap(), TokKind::Ident("after".into()));

        // Hex/unicode escapes ride along without confusing the scanner.
        let k = kinds(r#"b"\x00\xff" "u:\u{1F600}" tail"#);
        let strs = k.iter().filter(|t| matches!(t, TokKind::Str(_))).count();
        assert_eq!(strs, 2);
        assert_eq!(*k.last().unwrap(), TokKind::Ident("tail".into()));
    }
}
