//! On-disk token-stream cache.
//!
//! Lexing dominates lint runtime, and both `cargo lint` and the tier-1
//! `lint_clean.rs` test lex the same ~150 workspace files per CI run.
//! This cache persists each file's token stream under
//! `<root>/target/ustream-lint-cache/`, keyed by `(path, mtime, len)` —
//! any change to the file invalidates its entry. The format is a compact
//! custom binary encoding (no serde: the lint crate stays dependency-
//! free); every load failure of any kind silently falls back to
//! re-lexing, so a corrupt or stale cache can never change lint results,
//! only cost the lex it was saving.
//!
//! The cache is only engaged when `<root>/target` already exists, so
//! linting a bare tree (or the fixtures dir in tests) never creates
//! build-output directories as a side effect.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::SystemTime;

use crate::lexer::{TokKind, Token};

/// Cache format version — bump on any encoding change.
const VERSION: u32 = 1;
const MAGIC: &[u8; 4] = b"ULC\x01";

/// A file's identity key: decides cache validity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileKey {
    /// Modification time as (secs, nanos) since the UNIX epoch.
    pub mtime: (u64, u32),
    /// File length in bytes.
    pub len: u64,
}

impl FileKey {
    /// Reads the key from filesystem metadata; `None` when the platform
    /// or filesystem cannot supply it (cache is then skipped).
    pub fn of(path: &Path) -> Option<FileKey> {
        let meta = fs::metadata(path).ok()?;
        let mtime = meta.modified().ok()?;
        let d = mtime.duration_since(SystemTime::UNIX_EPOCH).ok()?;
        Some(FileKey {
            mtime: (d.as_secs(), d.subsec_nanos()),
            len: meta.len(),
        })
    }
}

/// The cache root for a workspace, or `None` when caching is disabled
/// (no `target/` directory to hide in).
pub fn cache_dir(root: &Path) -> Option<PathBuf> {
    let target = root.join("target");
    if target.is_dir() {
        Some(target.join("ustream-lint-cache"))
    } else {
        None
    }
}

/// FNV-1a 64-bit, for cache file naming (collision-checked by the path
/// stored in the entry header).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn entry_path(dir: &Path, rel: &str) -> PathBuf {
    dir.join(format!("{:016x}.tok", fnv1a64(rel.as_bytes())))
}

/// Loads the cached token stream for `rel` if the entry exists and its
/// key matches; `None` on any mismatch or decode error.
pub fn load(dir: &Path, rel: &str, key: FileKey) -> Option<Vec<Token>> {
    let data = fs::read(entry_path(dir, rel)).ok()?;
    decode(&data, rel, key)
}

/// Stores `tokens` for `rel` under `key`. Write errors are swallowed:
/// the cache is an optimization, never a correctness dependency.
pub fn store(dir: &Path, rel: &str, key: FileKey, tokens: &[Token]) {
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let bytes = encode(rel, key, tokens);
    let tmp = entry_path(dir, rel).with_extension("tmp");
    let finalp = entry_path(dir, rel);
    let write = (|| -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.flush()?;
        fs::rename(&tmp, &finalp)
    })();
    if write.is_err() {
        let _ = fs::remove_file(&tmp);
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn encode(rel: &str, key: FileKey, tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + tokens.len() * 12);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_str(&mut out, rel);
    put_u64(&mut out, key.mtime.0);
    put_u32(&mut out, key.mtime.1);
    put_u64(&mut out, key.len);
    put_u32(&mut out, tokens.len() as u32);
    for t in tokens {
        let (tag, payload): (u8, Option<&str>) = match &t.kind {
            TokKind::Ident(s) => (0, Some(s)),
            TokKind::Lifetime => (1, None),
            TokKind::Int(s) => (2, Some(s)),
            TokKind::Float(s) => (3, Some(s)),
            TokKind::Str(s) => (4, Some(s)),
            TokKind::Char => (5, None),
            TokKind::Op(s) => (6, Some(s)),
            TokKind::LineComment(s) => (7, Some(s)),
            TokKind::BlockComment(s) => (8, Some(s)),
        };
        out.push(tag);
        put_u32(&mut out, t.line);
        put_u32(&mut out, t.col);
        if let Some(s) = payload {
            put_str(&mut out, s);
        }
    }
    out
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.data.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Some(u64::from_le_bytes(a))
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        // Defensive bound: a corrupt length must not trigger a huge
        // allocation before the slice check catches it.
        if n > self.data.len() {
            return None;
        }
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).ok()
    }
}

fn decode(data: &[u8], rel: &str, key: FileKey) -> Option<Vec<Token>> {
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != MAGIC || r.u32()? != VERSION {
        return None;
    }
    if r.str()? != rel {
        return None;
    }
    if (r.u64()?, r.u32()?) != key.mtime || r.u64()? != key.len {
        return None;
    }
    let count = r.u32()? as usize;
    if count > data.len() {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = r.u8()?;
        let line = r.u32()?;
        let col = r.u32()?;
        let kind = match tag {
            0 => TokKind::Ident(r.str()?),
            1 => TokKind::Lifetime,
            2 => TokKind::Int(r.str()?),
            3 => TokKind::Float(r.str()?),
            4 => TokKind::Str(r.str()?),
            5 => TokKind::Char,
            6 => TokKind::Op(r.str()?),
            7 => TokKind::LineComment(r.str()?),
            8 => TokKind::BlockComment(r.str()?),
            _ => return None,
        };
        out.push(Token { kind, line, col });
    }
    if r.pos != data.len() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let key = FileKey {
            mtime: (1234, 567),
            len: src.len() as u64,
        };
        let bytes = encode("crates/x/src/a.rs", key, &toks);
        let back = decode(&bytes, "crates/x/src/a.rs", key).expect("decode");
        assert_eq!(back.len(), toks.len());
        for (a, b) in back.iter().zip(toks.iter()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!((a.line, a.col), (b.line, b.col));
        }
    }

    #[test]
    fn roundtrips_every_token_kind() {
        roundtrip("fn f<'a>(x: &'a u8) { let s = \"str\"; let c = 'x'; let n = 1.5; let i = 2; } // c\n/* b */ a == b\n");
    }

    #[test]
    fn key_mismatch_invalidates() {
        let toks = lex("fn f() {}");
        let key = FileKey {
            mtime: (1, 0),
            len: 9,
        };
        let bytes = encode("a.rs", key, &toks);
        let stale = FileKey {
            mtime: (2, 0),
            len: 9,
        };
        assert!(decode(&bytes, "a.rs", stale).is_none());
        assert!(decode(&bytes, "b.rs", key).is_none());
    }

    #[test]
    fn corrupt_data_is_rejected_not_panicking() {
        let toks = lex("fn f() {}");
        let key = FileKey {
            mtime: (1, 0),
            len: 9,
        };
        let mut bytes = encode("a.rs", key, &toks);
        // Truncations and bit flips must all decode to None.
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(decode(&bytes[..cut], "a.rs", key).is_none());
        }
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(decode(&bytes, "a.rs", key).is_none());
    }

    #[test]
    fn store_and_load_via_fs() {
        let dir =
            std::env::temp_dir().join(format!("ustream-lint-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let toks = lex("fn f() { g(); }");
        let key = FileKey {
            mtime: (42, 7),
            len: 15,
        };
        store(&dir, "crates/x/src/a.rs", key, &toks);
        let back = load(&dir, "crates/x/src/a.rs", key).expect("load");
        assert_eq!(back.len(), toks.len());
        assert!(load(
            &dir,
            "crates/x/src/a.rs",
            FileKey {
                mtime: (42, 8),
                len: 15
            }
        )
        .is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
