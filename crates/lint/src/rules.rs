//! The rule set.
//!
//! Each rule encodes an invariant the compiler cannot check but the
//! paper's guarantees rely on (see DESIGN.md §12 for the rationale table):
//!
//! | id               | invariant                                             |
//! |------------------|-------------------------------------------------------|
//! | `hot-panic`      | no `unwrap`/`expect`/`panic!`/literal-index panics on hot paths |
//! | `float-eq`       | no bitwise float equality outside epsilon helpers     |
//! | `nan-ord`        | float ordering must be NaN-total (`total_cmp`)        |
//! | `relaxed-atomic` | every `Ordering::Relaxed` carries a `// relaxed-ok:` justification |
//! | `nondet-iter`    | no `HashMap`/`HashSet` on serialization surfaces      |
//! | `no-sleep`       | no `thread::sleep` outside tests/benches/failpoints   |
//! | `lossy-cast`     | no bare `as` numeric casts in ECF/kernel arithmetic   |
//! | `missing-docs`   | public items of `umicro`/`ustream-engine` are documented |
//! | `blocking-io`    | raw blocking socket I/O in `crates/serve` goes through the deadline funnel |
//! | `net-funnel`     | `std::net` reads/writes in the networked crates stay inside the deadline-armed io funnels |
//! | `wal-funnel`     | durable-file writes in `crates/distrib` stay inside the fsync-and-checksum WAL funnel |
//! | `safety-comment` | `unsafe` stays inside `kernel::simd`, every site carries `// SAFETY:` |
//! | `suppression`    | every `lint:allow` carries a reason, names real rules |
//!
//! Findings are suppressed by `// lint:allow(<rule>): <reason>` on the same
//! line or the line directly above (`relaxed-atomic` is instead justified
//! with `// relaxed-ok: <reason>`, keeping the justification greppable).

use crate::context::FileCtx;
use crate::diag::Finding;
use crate::lexer::{TokKind, Token};

/// Crates whose non-test code is a hot path: a panic here kills a shard
/// worker mid-stream (the supervisor recovers, but loses the in-flight
/// record — so panics must be deliberate, not incidental).
const HOT_CRATES: &[&str] = &["core", "engine", "snapshot", "clustream", "kmeans"];

/// Files whose output is serialized (reports, checkpoints, BENCH JSON):
/// iteration order must be deterministic for byte-stable artifacts.
const SERIAL_SURFACE_FILES: &[&str] = &[
    "crates/engine/src/report.rs",
    "crates/engine/src/checkpoint.rs",
    "crates/snapshot/src/persist.rs",
];
const SERIAL_SURFACE_DIRS: &[&str] = &["crates/bench/src/", "crates/cli/src/commands/"];

/// Files implementing ECF / kernel arithmetic, where a silent `as` cast can
/// round a >2⁵³ count or truncate a float (Property 2.1 additivity depends
/// on moments staying exact in `f64`).
const CAST_SCOPED_FILES: &[&str] = &[
    "crates/core/src/ecf.rs",
    "crates/core/src/kernel.rs",
    "crates/core/src/distance.rs",
];

/// Crates whose public API must be documented (`missing-docs` scope).
const DOC_CRATES: &[&str] = &["core", "engine"];

/// The only files sanctioned to contain `unsafe` at all: the SIMD kernel
/// module whose inner `#![allow(unsafe_code)]` is the workspace's single
/// exemption from `deny(unsafe_code)`. Anywhere else, `unsafe` is a
/// finding regardless of justification.
const UNSAFE_SANCTIONED: &[&str] = &["crates/core/src/kernel/simd.rs"];

/// Every rule id the engine knows; `lint:allow` of anything else is itself
/// a finding.
pub const RULE_IDS: &[&str] = &[
    "hot-panic",
    "float-eq",
    "nan-ord",
    "relaxed-atomic",
    "nondet-iter",
    "no-sleep",
    "lossy-cast",
    "missing-docs",
    "blocking-io",
    "net-funnel",
    "wal-funnel",
    "safety-comment",
    "lock-order",
    "blocking-under-lock",
    "suppression",
];

/// Runs every rule over every file, applies suppressions, and returns the
/// findings sorted by `(path, line, col, rule)`.
pub fn run_all(ctxs: &[FileCtx]) -> Vec<Finding> {
    let mut findings = raw_all(ctxs);
    let by_path: std::collections::BTreeMap<&str, &FileCtx> =
        ctxs.iter().map(|c| (c.path.as_str(), c)).collect();
    findings.retain(|f| {
        !by_path
            .get(f.path.as_str())
            .is_some_and(|c| c.suppressed(f.rule, f.line))
    });
    for ctx in ctxs {
        rule_suppression_hygiene(ctx, &mut findings);
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    findings
}

/// Every rule's findings *before* suppression filtering — the per-file
/// rules plus the workspace lock analysis. `--stale-allows` compares this
/// against the suppression set: an exemption with no raw finding at its
/// target line is dead.
pub(crate) fn raw_all(ctxs: &[FileCtx]) -> Vec<Finding> {
    let mut raw = Vec::new();
    for ctx in ctxs {
        rule_hot_panic(ctx, &mut raw);
        rule_float_eq(ctx, &mut raw);
        rule_nan_ord(ctx, &mut raw);
        rule_relaxed_atomic(ctx, &mut raw);
        rule_nondet_iter(ctx, &mut raw);
        rule_no_sleep(ctx, &mut raw);
        rule_lossy_cast(ctx, &mut raw);
        rule_missing_docs(ctx, ctxs, &mut raw);
        rule_blocking_io(ctx, &mut raw);
        rule_net_funnel(ctx, &mut raw);
        rule_wal_funnel(ctx, &mut raw);
        rule_safety_comment(ctx, &mut raw);
    }
    crate::locks::rule_locks(ctxs, &mut raw);
    raw
}

/// `stale-allow` — suppressions whose target line no longer produces the
/// suppressed finding. Run via `ustream-lint --stale-allows`; not part of
/// the normal rule set (and deliberately not suppressible: a stale allow
/// is fixed by deleting it, not annotating it).
pub fn stale_allows(ctxs: &[FileCtx]) -> Vec<Finding> {
    let raw = raw_all(ctxs);
    let mut out = Vec::new();
    for ctx in ctxs {
        // An allow naming rule R is live iff a raw finding of R lands on
        // the annotation's line or the line below (its coverage span).
        for s in &ctx.suppressions {
            if !s.has_reason {
                continue; // reason-less allows are `suppression`'s beat
            }
            for r in &s.rules {
                if !RULE_IDS.contains(&r.as_str()) {
                    continue; // unknown ids are `suppression`'s beat
                }
                let live = raw.iter().any(|f| {
                    f.rule == r.as_str()
                        && f.path == ctx.path
                        && (f.line == s.line || f.line == s.line + 1)
                });
                if !live {
                    out.push(Finding {
                        path: ctx.path.clone(),
                        line: s.line,
                        col: 1,
                        rule: "stale-allow",
                        message: format!(
                            "`lint:allow({r})` no longer suppresses anything on this line"
                        ),
                        hint: "the code it excused changed or moved — delete the annotation",
                    });
                }
            }
        }
        // A relaxed-ordering justification is live iff an
        // `Ordering::Relaxed` token sits on its line or the line below
        // (the same coverage the rule grants).
        for (ti, t) in ctx.tokens.iter().enumerate() {
            if t.is_doc_comment() {
                continue;
            }
            let text = match &t.kind {
                TokKind::LineComment(s) | TokKind::BlockComment(s) => s,
                _ => continue,
            };
            if !text.contains("relaxed-ok:") {
                continue;
            }
            let line = ctx.tokens[ti].line;
            let live = ctx.sig.iter().any(|&i| {
                let tok = &ctx.tokens[i];
                tok.ident() == Some("Relaxed") && (tok.line == line || tok.line == line + 1)
            });
            // A justification inside a contiguous comment block above the
            // site is also live: the rule walks comment blocks upward.
            let live = live
                || ctx.sig.iter().any(|&i| {
                    let tok = &ctx.tokens[i];
                    tok.ident() == Some("Relaxed")
                        && relaxed_justified(ctx, tok.line)
                        && (line < tok.line && tok.line - line <= 6)
                });
            if !live {
                out.push(Finding {
                    path: ctx.path.clone(),
                    line,
                    col: t.col,
                    rule: "stale-allow",
                    message: "`relaxed-ok:` with no `Ordering::Relaxed` nearby".to_string(),
                    hint: "the atomic it justified changed or moved — delete the annotation",
                });
            }
        }
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.col).cmp(&(b.path.as_str(), b.line, b.col)));
    out.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);
    out
}

/// Significant-token accessor: `tok(ctx, k)` is the `k`-th non-comment
/// token.
fn tok(ctx: &FileCtx, k: usize) -> &Token {
    &ctx.tokens[ctx.sig[k]]
}

fn ident_at(ctx: &FileCtx, k: usize) -> Option<&str> {
    ctx.sig.get(k).and_then(|_| tok(ctx, k).ident())
}

fn op_at(ctx: &FileCtx, k: usize) -> Option<&str> {
    ctx.sig.get(k).and_then(|_| tok(ctx, k).op())
}

fn is_op(ctx: &FileCtx, k: usize, s: &str) -> bool {
    k < ctx.sig.len() && op_at(ctx, k) == Some(s)
}

/// For an opening `(` at significant index `open`, the index of its
/// matching `)`.
fn matching_paren(ctx: &FileCtx, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for k in open..ctx.sig.len() {
        match op_at(ctx, k) {
            Some("(") => depth += 1,
            Some(")") => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

fn push(
    out: &mut Vec<Finding>,
    ctx: &FileCtx,
    t: &Token,
    rule: &'static str,
    message: String,
    hint: &'static str,
) {
    out.push(Finding {
        path: ctx.path.clone(),
        line: t.line,
        col: t.col,
        rule,
        message,
        hint,
    });
}

/// R1 `hot-panic` — `unwrap`/`expect`/`panic!` and indexing by integer
/// literal in non-test code of hot-path crates.
fn rule_hot_panic(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let hot = ctx.crate_name().is_some_and(|c| HOT_CRATES.contains(&c));
    if !hot || ctx.is_test_file || !ctx.path.contains("/src/") {
        return;
    }
    for k in 0..ctx.sig.len() {
        let t = tok(ctx, k);
        if ctx.in_test(t.line) || ctx.in_failpoint(t.line) {
            continue;
        }
        match t.ident() {
            Some(name @ ("unwrap" | "expect"))
                if k > 0 && is_op(ctx, k - 1, ".") && is_op(ctx, k + 1, "(") =>
            {
                push(
                    out,
                    ctx,
                    t,
                    "hot-panic",
                    format!("`.{name}(...)` can panic on a hot path"),
                    "return a Result, provide a fallback, or suppress with \
                     `// lint:allow(hot-panic): <why this cannot fail>`",
                );
            }
            Some("panic") if is_op(ctx, k + 1, "!") => {
                push(
                    out,
                    ctx,
                    t,
                    "hot-panic",
                    "`panic!` on a hot path kills the shard worker".to_string(),
                    "return an error; a panic here costs the in-flight record",
                );
            }
            _ => {}
        }
        // Postfix indexing by an integer literal: `xs[0]`.
        if t.op() == Some("[")
            && k > 0
            && matches!(
                (tok(ctx, k - 1).ident(), op_at(ctx, k - 1)),
                (Some(_), _) | (_, Some(")" | "]"))
            )
            && matches!(tok_kind(ctx, k + 1), Some(TokKind::Int(_)))
            && is_op(ctx, k + 2, "]")
        {
            // `kw[...]` where kw is a keyword can't index; the only such
            // pattern in practice is attribute-ish code already filtered by
            // the significant-token shape above.
            push(
                out,
                ctx,
                t,
                "hot-panic",
                "indexing by integer literal can panic on a hot path".to_string(),
                "use `.first()`/`.get(i)` and handle None, or suppress with a \
                 reason proving the bound (e.g. fixed-size array)",
            );
        }
    }
}

fn tok_kind(ctx: &FileCtx, k: usize) -> Option<&TokKind> {
    ctx.sig.get(k).map(|_| &tok(ctx, k).kind)
}

/// R2 `float-eq` — bitwise `==`/`!=` against a float literal. (Bitwise
/// equality on two float *variables* is invisible to a tokenizer; the
/// literal form is the one that actually appears in practice.)
fn rule_float_eq(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for k in 0..ctx.sig.len() {
        let t = tok(ctx, k);
        let Some(op @ ("==" | "!=")) = t.op() else {
            continue;
        };
        let prev_float = k > 0 && matches!(tok_kind(ctx, k - 1), Some(TokKind::Float(_)));
        let next_float = matches!(tok_kind(ctx, k + 1), Some(TokKind::Float(_)));
        if prev_float || next_float {
            push(
                out,
                ctx,
                t,
                "float-eq",
                format!("float `{op}` literal comparison is not epsilon-safe"),
                "compare with an epsilon helper (`(a - b).abs() < tol`), test \
                 a range, or suppress with a reason the value is exact \
                 (e.g. sentinel assigned, never computed)",
            );
        }
    }
}

/// R3 `nan-ord` — `partial_cmp(..).unwrap()/expect()` (panics on NaN), and
/// `sort_by`/`min_by`/`max_by` comparators built on `partial_cmp` without a
/// NaN-total ordering. The fix is `f64::total_cmp`.
fn rule_nan_ord(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let mut unwrap_sites: Vec<usize> = Vec::new();
    for k in 0..ctx.sig.len() {
        if ident_at(ctx, k) != Some("partial_cmp") || !is_op(ctx, k + 1, "(") {
            continue;
        }
        let Some(close) = matching_paren(ctx, k + 1) else {
            continue;
        };
        if is_op(ctx, close + 1, ".")
            && matches!(ident_at(ctx, close + 2), Some("unwrap" | "expect"))
        {
            unwrap_sites.push(k);
            let t = tok(ctx, k);
            push(
                out,
                ctx,
                t,
                "nan-ord",
                "`partial_cmp(..).unwrap()` panics on NaN".to_string(),
                "use `f64::total_cmp` (NaN-total, never panics)",
            );
        }
    }
    let sort_fns = ["sort_by", "sort_unstable_by", "min_by", "max_by"];
    for k in 0..ctx.sig.len() {
        let Some(name) = ident_at(ctx, k) else {
            continue;
        };
        if !sort_fns.contains(&name) || !is_op(ctx, k + 1, "(") {
            continue;
        }
        let Some(close) = matching_paren(ctx, k + 1) else {
            continue;
        };
        let span_has_partial = (k + 2..close).any(|j| ident_at(ctx, j) == Some("partial_cmp"));
        let already = unwrap_sites.iter().any(|&s| k < s && s < close);
        if span_has_partial && !already {
            let t = tok(ctx, k);
            push(
                out,
                ctx,
                t,
                "nan-ord",
                format!("`{name}` comparator uses `partial_cmp` — NaN breaks total-order contract"),
                "use `f64::total_cmp`; `unwrap_or(Equal)` silently scrambles \
                 NaN ranks and violates the sort contract",
            );
        }
    }
}

/// R4 `relaxed-atomic` — every `Ordering::Relaxed` must carry an adjacent
/// `// relaxed-ok: <reason>` (same line, or in the comment block directly
/// above).
fn rule_relaxed_atomic(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for k in 0..ctx.sig.len() {
        if ident_at(ctx, k) != Some("Relaxed") || k == 0 || !is_op(ctx, k - 1, "::") {
            continue;
        }
        let t = tok(ctx, k);
        if relaxed_justified(ctx, t.line) {
            continue;
        }
        push(
            out,
            ctx,
            t,
            "relaxed-atomic",
            "`Ordering::Relaxed` without a `// relaxed-ok:` justification".to_string(),
            "state why relaxed ordering is sound here (e.g. monotone stats \
             counter, no cross-thread ordering dependency) in a \
             `// relaxed-ok:` comment on this line or directly above",
        );
    }
}

fn relaxed_justified(ctx: &FileCtx, line: u32) -> bool {
    comment_justified(ctx, line, "relaxed-ok:")
}

/// True when `needle` followed by a non-trivial reason (≥ 3 chars) appears
/// on `line` or in the contiguous run of `//` comment or `#[…]` attribute
/// lines directly above it. Attributes are walked through because they
/// legally sit between a justification and the item it blesses
/// (`// SAFETY:` above `#[target_feature]` above an `unsafe fn`).
fn comment_justified(ctx: &FileCtx, line: u32, needle: &str) -> bool {
    let has = |text: &str| {
        text.find(needle)
            .map(|p| &text[p + needle.len()..])
            .is_some_and(|tail| tail.trim().trim_end_matches("*/").trim().len() >= 3)
    };
    if has(ctx.line_text(line)) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let text = ctx.line_text(l);
        let trimmed = text.trim_start();
        if !trimmed.starts_with("//") && !trimmed.starts_with("#[") {
            return false;
        }
        if has(text) {
            return true;
        }
        l -= 1;
    }
    false
}

/// R5 `nondet-iter` — `HashMap`/`HashSet` on a serialization surface.
/// Iteration order feeds reports, checkpoints, and BENCH JSON, which must
/// be byte-stable run to run; use `BTreeMap`/`BTreeSet` or sort first.
fn rule_nondet_iter(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let scoped = SERIAL_SURFACE_FILES.contains(&ctx.path.as_str())
        || SERIAL_SURFACE_DIRS.iter().any(|d| ctx.path.starts_with(d));
    if !scoped {
        return;
    }
    for k in 0..ctx.sig.len() {
        let Some(name @ ("HashMap" | "HashSet")) = ident_at(ctx, k) else {
            continue;
        };
        let t = tok(ctx, k);
        if ctx.in_test(t.line) {
            continue;
        }
        push(
            out,
            ctx,
            t,
            "nondet-iter",
            format!("`{name}` on a serialization surface — iteration order is nondeterministic"),
            "use BTreeMap/BTreeSet, or collect-and-sort before emitting \
             (then suppress with the sort site as the reason)",
        );
    }
}

/// R6 `no-sleep` — `thread::sleep` outside tests/benches/failpoints. Real
/// backpressure belongs in the engine's wait primitives; a stray sleep on a
/// hot path is a hidden throughput cliff.
fn rule_no_sleep(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.is_test_file {
        return;
    }
    for k in 2..ctx.sig.len() {
        if ident_at(ctx, k) != Some("sleep")
            || !is_op(ctx, k - 1, "::")
            || ident_at(ctx, k - 2) != Some("thread")
        {
            continue;
        }
        let t = tok(ctx, k);
        if ctx.in_test(t.line) || ctx.in_failpoint(t.line) {
            continue;
        }
        push(
            out,
            ctx,
            t,
            "no-sleep",
            "`thread::sleep` outside tests/benches/failpoints".to_string(),
            "use a condvar/channel timeout, or suppress with the cadence \
             rationale (e.g. watchdog poll interval)",
        );
    }
}

/// R7 `lossy-cast` — bare `as` casts between numeric types inside ECF /
/// kernel arithmetic files. `u64 as f64` silently rounds above 2⁵³ and
/// float→int truncates; use `From`/`f64::from` or explicit rounding with a
/// justified suppression.
fn rule_lossy_cast(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !CAST_SCOPED_FILES.contains(&ctx.path.as_str()) {
        return;
    }
    const NUMERIC: &[&str] = &[
        "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64",
        "i128", "isize",
    ];
    for k in 0..ctx.sig.len() {
        if ident_at(ctx, k) != Some("as") {
            continue;
        }
        let Some(target) = ident_at(ctx, k + 1) else {
            continue;
        };
        if !NUMERIC.contains(&target) {
            continue;
        }
        let t = tok(ctx, k);
        if ctx.in_test(t.line) {
            continue;
        }
        push(
            out,
            ctx,
            t,
            "lossy-cast",
            format!("bare `as {target}` cast in ECF/kernel arithmetic"),
            "use `From`/`f64::from` for widening, explicit `.round()`/ \
             `try_from` for narrowing, or suppress with the value-range proof",
        );
    }
}

/// R8 `missing-docs` — public items of `umicro` (crates/core) and
/// `ustream-engine` (crates/engine) must carry doc comments; `pub mod x;`
/// is satisfied by a `//!` header inside `x.rs` (checked across files).
fn rule_missing_docs(ctx: &FileCtx, all: &[FileCtx], out: &mut Vec<Finding>) {
    let scoped =
        ctx.crate_name().is_some_and(|c| DOC_CRATES.contains(&c)) && ctx.path.contains("/src/");
    if !scoped {
        return;
    }
    const ITEM_KWS: &[&str] = &[
        "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union",
    ];
    const MODIFIERS: &[&str] = &["unsafe", "async", "extern"];
    for k in 0..ctx.sig.len() {
        if ident_at(ctx, k) != Some("pub") {
            continue;
        }
        let t = tok(ctx, k);
        if ctx.in_test(t.line) {
            continue;
        }
        // Restricted visibility (`pub(crate)`, `pub(super)`) is not public
        // API.
        if is_op(ctx, k + 1, "(") {
            continue;
        }
        // Scan past modifiers to the item keyword. `const` is both a
        // modifier (`pub const fn`) and an item keyword (`pub const X`).
        let mut j = k + 1;
        while matches!(ident_at(ctx, j), Some(m) if MODIFIERS.contains(&m))
            || (ident_at(ctx, j) == Some("const") && ident_at(ctx, j + 1) == Some("fn"))
        {
            j += 1;
        }
        let Some(kw) = ident_at(ctx, j) else {
            continue;
        };
        if !ITEM_KWS.contains(&kw) {
            continue; // `pub use`, `pub impl`(n/a), etc.
        }
        let name = ident_at(ctx, j + 1).unwrap_or("?");
        if has_doc_above(ctx, ctx.sig[k]) {
            continue;
        }
        // `pub mod x;` — documented when the module file opens with `//!`.
        if kw == "mod" && is_op(ctx, j + 2, ";") && module_file_has_docs(ctx, all, name) {
            continue;
        }
        push(
            out,
            ctx,
            t,
            "missing-docs",
            format!("public {kw} `{name}` has no doc comment"),
            "add a `///` doc comment — umicro/ustream-engine are the \
             workspace's public API surface",
        );
    }
}

/// Walks backwards from full-token index `at` over attributes and plain
/// comments; true when the nearest preceding prose token is a doc comment.
fn has_doc_above(ctx: &FileCtx, at: usize) -> bool {
    let mut i = at;
    while i > 0 {
        i -= 1;
        let t = &ctx.tokens[i];
        if t.is_doc_comment() {
            return true;
        }
        if t.is_comment() {
            continue;
        }
        if t.op() == Some("]") {
            // Skip the attribute group backwards to its `#`.
            let mut depth = 1i32;
            while i > 0 && depth > 0 {
                i -= 1;
                match ctx.tokens[i].op() {
                    Some("]") => depth += 1,
                    Some("[") => depth -= 1,
                    _ => {}
                }
            }
            if i > 0 && ctx.tokens[i - 1].op() == Some("#") {
                i -= 1;
                continue;
            }
            return false;
        }
        return false;
    }
    false
}

/// Resolves `pub mod <name>;` against the other files of the run: the
/// module file (sibling `<name>.rs` or `<name>/mod.rs`) must start with a
/// `//!` inner doc comment.
fn module_file_has_docs(ctx: &FileCtx, all: &[FileCtx], name: &str) -> bool {
    let dir = match ctx.path.rfind('/') {
        Some(p) => &ctx.path[..p],
        None => "",
    };
    let candidates = [format!("{dir}/{name}.rs"), format!("{dir}/{name}/mod.rs")];
    all.iter()
        .filter(|f| candidates.iter().any(|c| &f.path == c))
        .any(|f| f.tokens.first().is_some_and(|t| t.is_doc_comment()))
}

/// The one file in `crates/serve` sanctioned to call blocking socket
/// primitives: it arms the socket's OS read/write timeouts before every
/// operation, so a stalled peer costs a bounded deadline, not a wedged
/// connection thread.
const BLOCKING_IO_FUNNEL: &str = "crates/serve/src/io.rs";

/// R9 `blocking-io` — raw blocking I/O calls (`read_exact`, `write_all`,
/// `read_to_end`, `read_to_string`) in `crates/serve` outside the
/// deadline-wrapped funnel. Without a socket timeout armed, any of these
/// blocks a connection thread for as long as the peer cares to stall —
/// the serving front-end's per-tenant isolation guarantees die there.
fn rule_blocking_io(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.path.starts_with("crates/serve/src/") || ctx.path == BLOCKING_IO_FUNNEL {
        return;
    }
    const BLOCKING: &[&str] = &["read_exact", "write_all", "read_to_end", "read_to_string"];
    for k in 1..ctx.sig.len() {
        let Some(name) = ident_at(ctx, k) else {
            continue;
        };
        if !BLOCKING.contains(&name) || !is_op(ctx, k - 1, ".") {
            continue;
        }
        let t = tok(ctx, k);
        if ctx.in_test(t.line) {
            continue;
        }
        push(
            out,
            ctx,
            t,
            "blocking-io",
            format!("raw blocking `{name}` outside the deadline-wrapped I/O funnel"),
            "route through serve's io::read_frame/write_frame (socket \
             timeouts armed), or suppress with the deadline proof",
        );
    }
}

/// The deadline-armed socket funnels: the only files in the networked
/// crates sanctioned to touch a `std::net` stream directly. Both arm the
/// socket's OS read/write timeouts before every operation, so no call
/// can outlive its deadline.
const NET_FUNNELS: &[&str] = &["crates/serve/src/io.rs", "crates/distrib/src/io.rs"];

/// The crates that speak `std::net`: the scope of `net-funnel`.
const NET_CRATES: &[&str] = &["crates/serve/src/", "crates/distrib/src/"];

/// R10 `net-funnel` — socket reads/writes in the networked crates outside
/// the deadline-armed io funnels. `blocking-io` polices the named
/// blocking helpers in `crates/serve`; this rule closes the rest of the
/// surface: bare `.read(..)` / `.write(..)` / `.peek(..)` calls in any
/// file that handles `TcpStream`/`TcpListener`, plus the blocking helper
/// family in `crates/distrib`. A socket touched outside the funnel has
/// no timeout armed, so a stalled peer (or a `NET_DELAY` failpoint that
/// never lifts) wedges the thread — exactly the hang the distributed
/// tier's liveness tracking is supposed to bound.
fn rule_net_funnel(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !NET_CRATES.iter().any(|d| ctx.path.starts_with(d))
        || NET_FUNNELS.contains(&ctx.path.as_str())
    {
        return;
    }
    // Only files handling raw sockets are in scope: `.read(..)` on a
    // BufReader over a checkpoint file has no peer to stall on.
    if !ctx
        .lines
        .iter()
        .any(|l| l.contains("TcpStream") || l.contains("TcpListener"))
    {
        return;
    }
    const RAW: &[&str] = &["read", "write", "peek"];
    const BLOCKING: &[&str] = &["read_exact", "write_all", "read_to_end", "read_to_string"];
    let in_distrib = ctx.path.starts_with("crates/distrib/src/");
    for k in 1..ctx.sig.len() {
        let Some(name) = ident_at(ctx, k) else {
            continue;
        };
        // In serve the blocking helper family is already `blocking-io`'s
        // beat; reporting it here too would double-count one defect.
        let in_scope = RAW.contains(&name) || (in_distrib && BLOCKING.contains(&name));
        if !in_scope || !is_op(ctx, k - 1, ".") || !is_op(ctx, k + 1, "(") {
            continue;
        }
        let t = tok(ctx, k);
        if ctx.in_test(t.line) {
            continue;
        }
        push(
            out,
            ctx,
            t,
            "net-funnel",
            format!("socket `{name}` outside a deadline-armed io funnel"),
            "route through serve's or distrib's io module (socket timeouts \
             armed before every call), or suppress with the deadline proof",
        );
    }
}

/// The fsync-and-checksum durability funnel: the only file in
/// `crates/distrib` sanctioned to open, fsync, or truncate durable files
/// directly. Everything else goes through it (or through
/// `engine::checkpoint`'s atomic writers), so the WAL-before-ack ordering
/// is auditable in one place.
const WAL_FUNNELS: &[&str] = &["crates/distrib/src/wal.rs"];

/// R13 `wal-funnel` — durable-file plumbing in `crates/distrib` outside
/// the WAL funnel. The recovery proof rests on two file-level facts:
/// every record is fsynced before its ack, and truncation rewinds the
/// write cursor. Both live in `wal.rs`; a stray `OpenOptions`, `fsync`,
/// or `set_len` elsewhere in the crate re-opens the torn-write surface
/// the funnel closed. `engine::checkpoint`'s atomic rotated writers
/// remain fine to call — this rule polices raw file handles, not the
/// audited helpers.
fn rule_wal_funnel(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.path.starts_with("crates/distrib/src/") || WAL_FUNNELS.contains(&ctx.path.as_str()) {
        return;
    }
    const METHODS: &[&str] = &["sync_all", "sync_data", "set_len"];
    for k in 0..ctx.sig.len() {
        let Some(name) = ident_at(ctx, k) else {
            continue;
        };
        // `OpenOptions` anywhere, `File::create`/`fs::write`/`fs::rename`/
        // `fs::remove_file` as paths, fsync/truncate as method calls.
        let hit = name == "OpenOptions"
            || (k > 0
                && METHODS.contains(&name)
                && is_op(ctx, k - 1, ".")
                && is_op(ctx, k + 1, "("))
            || (k > 1
                && is_op(ctx, k - 1, "::")
                && match ident_at(ctx, k - 2) {
                    Some("File") => name == "create" || name == "options",
                    Some("fs") => matches!(name, "write" | "rename" | "remove_file"),
                    _ => false,
                });
        if !hit {
            continue;
        }
        let t = tok(ctx, k);
        if ctx.in_test(t.line) {
            continue;
        }
        push(
            out,
            ctx,
            t,
            "wal-funnel",
            format!("durable-file operation `{name}` outside the WAL funnel"),
            "route through distrib's wal module (fsync-before-ack and \
             cursor-safe truncation live there) or engine::checkpoint's \
             atomic writers, or suppress with the durability proof",
        );
    }
}

/// R9 `safety-comment` — `unsafe` is confined to the sanctioned
/// `kernel::simd` module, and every occurrence there must carry an
/// adjacent `// SAFETY:` justification (same line, or in the comment /
/// attribute block directly above). The workspace denies `unsafe_code`,
/// so the compiler already rejects stray `unsafe` — this rule makes the
/// sanction list itself auditable and keeps the soundness argument next
/// to every site inside the one module that is exempt.
fn rule_safety_comment(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let sanctioned = UNSAFE_SANCTIONED.contains(&ctx.path.as_str());
    for k in 0..ctx.sig.len() {
        if ident_at(ctx, k) != Some("unsafe") {
            continue;
        }
        let t = tok(ctx, k);
        if ctx.in_test(t.line) {
            continue;
        }
        if !sanctioned {
            push(
                out,
                ctx,
                t,
                "safety-comment",
                "`unsafe` outside the sanctioned `kernel::simd` module".to_string(),
                "the workspace denies unsafe_code; route intrinsics through \
                 core's kernel::simd dispatch layer instead of opening a \
                 second unsafe surface",
            );
            continue;
        }
        if comment_justified(ctx, t.line, "SAFETY:") {
            continue;
        }
        push(
            out,
            ctx,
            t,
            "safety-comment",
            "`unsafe` without an adjacent `// SAFETY:` justification".to_string(),
            "state the invariant that makes this sound (CPU feature verified \
             by the dispatch guard, in-bounds pointer arithmetic, …) in a \
             `// SAFETY:` comment on this line or directly above",
        );
    }
}

/// S0 `suppression` — `lint:allow` hygiene: every annotation must carry a
/// reason and name known rule ids.
fn rule_suppression_hygiene(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for s in &ctx.suppressions {
        if !s.has_reason {
            out.push(Finding {
                path: ctx.path.clone(),
                line: s.line,
                col: 1,
                rule: "suppression",
                message: "`lint:allow` without a reason string".to_string(),
                hint: "write `// lint:allow(<rule>): <why this site is safe>` — \
                       reason-less suppressions do not suppress",
            });
        }
        for r in &s.rules {
            if !RULE_IDS.contains(&r.as_str()) {
                out.push(Finding {
                    path: ctx.path.clone(),
                    line: s.line,
                    col: 1,
                    rule: "suppression",
                    message: format!("`lint:allow` names unknown rule `{r}`"),
                    hint: "valid ids: hot-panic, float-eq, nan-ord, relaxed-atomic, \
                           nondet-iter, no-sleep, lossy-cast, missing-docs, blocking-io, \
                           net-funnel, wal-funnel, safety-comment, lock-order, \
                           blocking-under-lock",
                });
            }
        }
    }
}
