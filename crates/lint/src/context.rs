//! Per-file analysis context shared by every rule.
//!
//! A [`FileCtx`] bundles the token stream with the structural facts rules
//! need but should not each recompute:
//!
//! * which line ranges are *test code* (`#[cfg(test)]` modules, `#[test]` /
//!   `#[bench]` items, or a path under `tests/`, `benches/`, `examples/`),
//! * which line ranges are *failpoint code* (`#[cfg(feature =
//!   "failpoints")]` items — deliberate fault injection is exempt from the
//!   hot-path rules it exists to exercise),
//! * inline suppressions (`// lint:allow(rule-id): reason`) and whether
//!   each carries the mandatory reason string.

use crate::lexer::{lex, TokKind, Token};

/// An inclusive 1-indexed line range.
pub type LineSpan = (u32, u32);

/// An inline `lint:allow` annotation.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-indexed line the comment sits on. A suppression covers findings on
    /// its own line (trailing comment) and on the following line
    /// (standalone comment above the offending statement).
    pub line: u32,
    /// Rule ids listed inside `lint:allow(...)`.
    pub rules: Vec<String>,
    /// Whether a non-empty reason string follows the closing paren. A
    /// reason-less suppression does not suppress anything — it is itself
    /// reported by the `suppression` meta-rule.
    pub has_reason: bool,
}

/// Everything a rule needs to know about one source file.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path with `/` separators (e.g.
    /// `crates/core/src/ecf.rs`).
    pub path: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment ("significant") tokens.
    pub sig: Vec<usize>,
    /// Raw source lines, for adjacency checks (justification comments).
    pub lines: Vec<String>,
    /// Whole file is test/bench/example code by path.
    pub is_test_file: bool,
    /// Inclusive line ranges under `#[cfg(test)]` / `#[test]` / `#[bench]`.
    pub test_spans: Vec<(u32, u32)>,
    /// Inclusive line ranges under `#[cfg(feature = "failpoints")]`.
    pub failpoint_spans: Vec<(u32, u32)>,
    /// Parsed `lint:allow` annotations.
    pub suppressions: Vec<Suppression>,
}

impl FileCtx {
    /// Builds the context for `path` from raw source text.
    pub fn new(path: &str, src: &str) -> Self {
        Self::from_tokens(path, src, lex(src))
    }

    /// Builds the context from a pre-lexed token stream (the token cache
    /// path — see [`crate::cache`]). The tokens MUST be `lex(src)`'s
    /// output for this exact source; the cache's `(path, mtime, len)`
    /// key guarantees that.
    pub fn from_tokens(path: &str, src: &str, tokens: Vec<Token>) -> Self {
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
        let norm = path.replace('\\', "/");
        let is_test_file = ["tests/", "benches/", "examples/"]
            .iter()
            .any(|d| norm.starts_with(d) || norm.contains(&format!("/{d}")));
        let (test_spans, failpoint_spans) = attribute_spans(&tokens, &sig);
        let suppressions = parse_suppressions(&tokens);
        Self {
            path: norm,
            tokens,
            sig,
            lines,
            is_test_file,
            test_spans,
            failpoint_spans,
            suppressions,
        }
    }

    /// The crate this file belongs to (`crates/<name>/...`), if any.
    pub fn crate_name(&self) -> Option<&str> {
        let rest = self.path.strip_prefix("crates/")?;
        rest.split('/').next()
    }

    /// True when `line` is test code — by path or by enclosing span.
    pub fn in_test(&self, line: u32) -> bool {
        self.is_test_file || self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// True when `line` is inside a failpoints-gated item.
    pub fn in_failpoint(&self, line: u32) -> bool {
        self.path.ends_with("failpoints.rs")
            || self
                .failpoint_spans
                .iter()
                .any(|&(a, b)| a <= line && line <= b)
    }

    /// True when a finding of `rule` at `line` is covered by a well-formed
    /// suppression (same line or the line directly above).
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions.iter().any(|s| {
            s.has_reason
                && (s.line == line || s.line + 1 == line)
                && s.rules.iter().any(|r| r == rule)
        })
    }

    /// The raw text of `line` (1-indexed); empty for out-of-range.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|s| s.as_str())
            .unwrap_or("")
    }
}

/// Scans the token stream for outer attributes and computes the line spans
/// of the items they gate. Returns `(test_spans, failpoint_spans)`.
fn attribute_spans(tokens: &[Token], sig: &[usize]) -> (Vec<LineSpan>, Vec<LineSpan>) {
    let mut test_spans = Vec::new();
    let mut failpoint_spans = Vec::new();
    let mut k = 0usize;
    while k < sig.len() {
        let t = &tokens[sig[k]];
        if t.op() != Some("#") {
            k += 1;
            continue;
        }
        // Inner attributes (`#![...]`) scope the whole file; the only one
        // this workspace uses is lint configuration, so skip them.
        let mut j = k + 1;
        let inner = j < sig.len() && tokens[sig[j]].op() == Some("!");
        if inner {
            j += 1;
        }
        if j >= sig.len() || tokens[sig[j]].op() != Some("[") {
            k += 1;
            continue;
        }
        let attr_start_line = t.line;
        // Collect the attribute body up to the matching `]`.
        let mut depth = 0i32;
        let mut idents: Vec<String> = Vec::new();
        let mut strings: Vec<String> = Vec::new();
        while j < sig.len() {
            let tok = &tokens[sig[j]];
            match &tok.kind {
                TokKind::Op(o) if o == "[" => depth += 1,
                TokKind::Op(o) if o == "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident(s) => idents.push(s.clone()),
                TokKind::Str(s) => strings.push(s.clone()),
                _ => {}
            }
            j += 1;
        }
        if inner {
            k = j + 1;
            continue;
        }
        let first = idents.first().map(|s| s.as_str()).unwrap_or("");
        // `cfg(not(test))` gates *production* code; treating it as a test
        // span would silently exempt hot paths, so `not` disqualifies.
        let is_test_attr = matches!(first, "test" | "bench")
            || (first == "cfg"
                && idents.iter().any(|s| s == "test" || s == "bench")
                && !idents.iter().any(|s| s == "not"))
            || (!matches!(first, "cfg" | "cfg_attr") && idents.last().is_some_and(|s| s == "test"));
        let is_failpoint_attr = first == "cfg"
            && idents.iter().any(|s| s == "feature")
            && strings.iter().any(|s| s.contains("failpoints"));
        if !is_test_attr && !is_failpoint_attr {
            k = j + 1;
            continue;
        }
        // Find the gated item: skip trailing attributes / doc comments,
        // then scan to the item's `{ ... }` body or terminating `;`.
        let mut m = j + 1;
        // Skip further outer attributes.
        while m < sig.len() && tokens[sig[m]].op() == Some("#") {
            let mut d = 0i32;
            let mut n = m + 1;
            while n < sig.len() {
                match tokens[sig[n]].op() {
                    Some("[") => d += 1,
                    Some("]") => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                n += 1;
            }
            m = n + 1;
        }
        let mut end_line = attr_start_line;
        let mut brace_depth = 0i32;
        let mut entered = false;
        while m < sig.len() {
            let tok = &tokens[sig[m]];
            match tok.op() {
                Some(";") if !entered => {
                    end_line = tok.line;
                    break;
                }
                Some("{") => {
                    entered = true;
                    brace_depth += 1;
                }
                Some("}") if entered => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        end_line = tok.line;
                        break;
                    }
                }
                _ => {}
            }
            m += 1;
        }
        let span = (attr_start_line, end_line.max(attr_start_line));
        if is_test_attr {
            test_spans.push(span);
        } else {
            failpoint_spans.push(span);
        }
        k = j + 1;
    }
    (test_spans, failpoint_spans)
}

/// Extracts `lint:allow(rule[, rule...]): reason` annotations from comment
/// tokens. The reason — everything after the colon — must be non-empty.
/// Doc comments are prose *about* the mechanism, never the mechanism
/// itself, and are skipped.
fn parse_suppressions(tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens {
        if t.is_doc_comment() {
            continue;
        }
        let text = match &t.kind {
            TokKind::LineComment(s) | TokKind::BlockComment(s) => s,
            _ => continue,
        };
        let Some(pos) = text.find("lint:allow(") else {
            continue;
        };
        let rest = &text[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            out.push(Suppression {
                line: t.line,
                rules: Vec::new(),
                has_reason: false,
            });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = rest[close + 1..].trim_start();
        let has_reason = tail
            .strip_prefix(':')
            .is_some_and(|r| r.trim().trim_end_matches("*/").trim().len() >= 3);
        out.push(Suppression {
            line: t.line,
            rules,
            has_reason,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_span() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let ctx = FileCtx::new("crates/core/src/x.rs", src);
        assert!(!ctx.in_test(1));
        assert!(ctx.in_test(2));
        assert!(ctx.in_test(4));
        assert!(ctx.in_test(5));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(not(test))]\nfn prod() { body(); }\n";
        let ctx = FileCtx::new("crates/core/src/x.rs", src);
        assert!(!ctx.in_test(2));
    }

    #[test]
    fn test_attr_fn_span() {
        let src = "#[test]\nfn check() {\n    assert!(true);\n}\nfn prod() {}\n";
        let ctx = FileCtx::new("crates/core/src/x.rs", src);
        assert!(ctx.in_test(3));
        assert!(!ctx.in_test(5));
    }

    #[test]
    fn failpoint_fn_span() {
        let src = "#[cfg(feature = \"failpoints\")]\nfn inject() {\n    fire();\n}\n";
        let ctx = FileCtx::new("crates/engine/src/engine.rs", src);
        assert!(ctx.in_failpoint(3));
        assert!(!ctx.in_test(3));
    }

    #[test]
    fn path_classification() {
        assert!(FileCtx::new("tests/foo.rs", "").is_test_file);
        assert!(FileCtx::new("crates/bench/benches/b.rs", "").is_test_file);
        assert!(FileCtx::new("examples/e.rs", "").is_test_file);
        let ctx = FileCtx::new("crates/engine/src/engine.rs", "");
        assert!(!ctx.is_test_file);
        assert_eq!(ctx.crate_name(), Some("engine"));
    }

    #[test]
    fn suppression_with_reason() {
        let src = "// lint:allow(hot-panic): checked non-empty above\nfoo.unwrap();\n";
        let ctx = FileCtx::new("crates/core/src/x.rs", src);
        assert!(ctx.suppressed("hot-panic", 2));
        assert!(!ctx.suppressed("float-eq", 2));
    }

    #[test]
    fn suppression_without_reason_is_inert() {
        let src = "// lint:allow(hot-panic)\nfoo.unwrap();\n";
        let ctx = FileCtx::new("crates/core/src/x.rs", src);
        assert!(!ctx.suppressed("hot-panic", 2));
        assert_eq!(ctx.suppressions.len(), 1);
        assert!(!ctx.suppressions[0].has_reason);
    }

    #[test]
    fn trailing_suppression_covers_its_own_line() {
        let src = "foo.unwrap(); // lint:allow(hot-panic): invariant: set in new()\n";
        let ctx = FileCtx::new("crates/core/src/x.rs", src);
        assert!(ctx.suppressed("hot-panic", 1));
    }

    #[test]
    fn multi_rule_suppression() {
        let src = "// lint:allow(hot-panic, nan-ord): fixture data is finite\nx();\n";
        let ctx = FileCtx::new("crates/core/src/x.rs", src);
        assert!(ctx.suppressed("hot-panic", 2));
        assert!(ctx.suppressed("nan-ord", 2));
    }
}
