//! Diagnostics: the [`Finding`] record and its text / JSON renderings.

use std::fmt::Write as _;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// Stable rule id (e.g. `hot-panic`); also the id accepted by
    /// `lint:allow(...)`.
    pub rule: &'static str,
    /// What was found, specific to the site.
    pub message: String,
    /// How to fix it (or how to suppress it with a reason).
    pub hint: &'static str,
}

impl Finding {
    /// `file:line:col [rule] message` followed by an indented hint.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}:{} [{}] {}\n    hint: {}",
            self.path, self.line, self.col, self.rule, self.message, self.hint
        )
    }
}

/// Renders findings as a single human-readable report.
pub fn render_report(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}", f.render_text());
    }
    let _ = writeln!(
        out,
        "ustream-lint: {} finding{}",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    out
}

/// Renders findings plus run statistics as a JSON document for CI
/// artifacts: `{"findings": [...], "count": N, "stats": {...}}`.
pub fn render_json_with_stats(findings: &[Finding], stats: &crate::RunStats) -> String {
    let base = render_json(findings);
    let trimmed = base.trim_end().trim_end_matches('}').trim_end();
    format!(
        "{trimmed},\n  \"stats\": {{\"files\": {}, \"rules\": {}, \"findings\": {}, \
         \"lex_ms\": {}, \"analyze_ms\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}\n}}\n",
        stats.files,
        stats.rules,
        stats.findings,
        stats.lex_ms,
        stats.analyze_ms,
        stats.cache_hits,
        stats.cache_misses
    )
}

/// Renders findings as a JSON document for CI artifacts:
/// `{"findings": [...], "count": N}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"path\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}, \"hint\": {}}}",
            json_str(&f.path),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.message),
            json_str(f.hint)
        );
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(out, "],\n  \"count\": {}\n}}\n", findings.len());
    out
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            path: "crates/core/src/x.rs".into(),
            line: 3,
            col: 7,
            rule: "hot-panic",
            message: "`.unwrap()` on a hot path".into(),
            hint: "handle the None/Err case",
        }
    }

    #[test]
    fn text_has_location_and_rule() {
        let t = sample().render_text();
        assert!(t.contains("crates/core/src/x.rs:3:7"));
        assert!(t.contains("[hot-panic]"));
        assert!(t.contains("hint:"));
    }

    #[test]
    fn json_is_well_formed() {
        let j = render_json(&[sample()]);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\"rule\": \"hot-panic\""));
        // Escaping: a message with quotes must not break the document.
        let mut f = sample();
        f.message = "a \"quoted\" thing\n".into();
        let j = render_json(&[f]);
        assert!(j.contains("a \\\"quoted\\\" thing\\n"));
    }

    #[test]
    fn empty_report_counts_zero() {
        assert!(render_json(&[]).contains("\"count\": 0"));
        assert!(render_report(&[]).contains("0 findings"));
    }

    #[test]
    fn stats_block_is_appended_and_well_formed() {
        let stats = crate::RunStats {
            files: 3,
            rules: 15,
            findings: 1,
            lex_ms: 12,
            analyze_ms: 34,
            cache_hits: 2,
            cache_misses: 1,
        };
        let j = render_json_with_stats(&[sample()], &stats);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\"stats\": {\"files\": 3"));
        assert!(j.contains("\"cache_hits\": 2"));
        assert!(j.trim_end().ends_with('}'));
        // Braces balance — the splice did not eat or duplicate one.
        let open = j.matches('{').count();
        let close = j.matches('}').count();
        assert_eq!(open, close);
    }
}
