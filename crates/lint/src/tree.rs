//! Token-tree / scope recovery: the middle layer between the lexer and
//! the workspace analyses.
//!
//! The per-file rules in [`crate::rules`] get by on flat token scans, but
//! the concurrency rules ([`crate::locks`]) need *structure*: which `fn`
//! a token belongs to, where that fn's body ends, which `impl` block it
//! sits in (so `self.method()` calls can be resolved), and — the load-
//! bearing part — how long a `MutexGuard`/`RwLock` guard obtained by
//! `.lock()` / `.read()` / `.write()` stays live. This module recovers
//! all of that from the token stream alone, by brace/paren matching: no
//! external parser, consistent with the workspace's vendored-only policy.
//!
//! Guard liveness follows Rust's drop rules closely enough for analysis:
//!
//! * `let g = x.lock();` — live until the end of the enclosing block, or
//!   an explicit `drop(g)`;
//! * `if let` / `while let` / `for` / `match` over an acquisition — the
//!   temporary lives through the attached block (`if let Some(w) =
//!   self.wal.lock().as_mut() { ... }` holds the lock across the body);
//! * `*x.lock() = rhs;` — the place expression is evaluated *after* the
//!   right-hand side, so nothing on the RHS runs under the guard;
//! * any other temporary — live to the end of its statement.

use crate::context::FileCtx;
use crate::lexer::TokKind;

/// One `fn` item recovered from the token stream.
#[derive(Debug)]
pub struct FnScope {
    /// The fn's simple name.
    pub name: String,
    /// Enclosing `impl` type, when inside an `impl` block (`Inner` for
    /// `impl Inner { fn apply_delta... }`) — trait impls resolve to the
    /// implementing type (`impl Drop for Coordinator` → `Coordinator`).
    pub impl_type: Option<String>,
    /// Significant-token index of the `fn` keyword.
    pub kw: usize,
    /// Significant-token range of the body: `(open_brace, close_brace)`,
    /// `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Whether the return type mentions a guard type (`MutexGuard`,
    /// `RwLockReadGuard`, …) — callers of such a fn inherit its locks.
    pub returns_guard: bool,
}

fn op_at(ctx: &FileCtx, k: usize) -> Option<&str> {
    ctx.sig.get(k).map(|&i| &ctx.tokens[i]).and_then(|t| t.op())
}

fn ident_at(ctx: &FileCtx, k: usize) -> Option<&str> {
    ctx.sig
        .get(k)
        .map(|&i| &ctx.tokens[i])
        .and_then(|t| t.ident())
}

/// How many `>` closes an operator token contributes to angle-bracket
/// depth (`>>` in `Vec<Vec<T>>` lexes as one token).
fn angle_delta(op: &str) -> i32 {
    match op {
        "<" => 1,
        "<<" => 2,
        ">" => -1,
        ">>" => -2,
        _ => 0,
    }
}

/// Finds the matching close brace for the open brace at significant index
/// `open`. Returns the index of the `}`, or the last token on unbalanced
/// input (the lexer never invents braces, so this only happens on
/// truncated files).
pub fn matching_brace(ctx: &FileCtx, open: usize) -> usize {
    let mut depth = 0i32;
    for k in open..ctx.sig.len() {
        match op_at(ctx, k) {
            Some("{") => depth += 1,
            Some("}") => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    ctx.sig.len().saturating_sub(1)
}

/// Recovers every `fn` item in the file, with its enclosing impl type and
/// body extent.
pub fn fn_scopes(ctx: &FileCtx) -> Vec<FnScope> {
    let mut out = Vec::new();
    // (impl type, body close index) stack entries, innermost last.
    let mut impls: Vec<(Option<String>, usize)> = Vec::new();
    let mut k = 0usize;
    while k < ctx.sig.len() {
        impls.retain(|&(_, end)| k <= end);
        match ident_at(ctx, k) {
            Some("impl") => {
                if let Some((ty, open)) = parse_impl_header(ctx, k) {
                    let close = matching_brace(ctx, open);
                    impls.push((ty, close));
                    k = open + 1;
                    continue;
                }
                k += 1;
            }
            Some("fn") => {
                let Some(name) = ident_at(ctx, k + 1) else {
                    k += 1;
                    continue;
                };
                let (body, returns_guard) = parse_fn_signature(ctx, k + 2);
                let line = ctx.tokens[ctx.sig[k]].line;
                let impl_type = impls.last().and_then(|(t, _)| t.clone());
                let next = match body {
                    Some((open, close)) => {
                        out.push(FnScope {
                            name: name.to_string(),
                            impl_type,
                            kw: k,
                            body: Some((open, close)),
                            line,
                            returns_guard,
                        });
                        // Scan *into* the body so nested fns are found too
                        // (their tokens also belong to the outer body; the
                        // lock analysis tolerates that overlap).
                        open + 1
                    }
                    None => {
                        out.push(FnScope {
                            name: name.to_string(),
                            impl_type,
                            kw: k,
                            body: None,
                            line,
                            returns_guard,
                        });
                        k + 2
                    }
                };
                k = next;
            }
            _ => k += 1,
        }
    }
    out
}

/// Parses an `impl` header starting at the `impl` keyword: returns the
/// implementing type's simple name and the index of the body's `{`.
fn parse_impl_header(ctx: &FileCtx, k: usize) -> Option<(Option<String>, usize)> {
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut j = k + 1;
    while j < ctx.sig.len() {
        if let Some(op) = op_at(ctx, j) {
            let d = angle_delta(op);
            if d != 0 {
                angle += d;
                j += 1;
                continue;
            }
            if angle <= 0 {
                match op {
                    "{" => return Some((last_ident, j)),
                    ";" => return None, // `impl Trait for T;` does not exist; bail safely
                    _ => {}
                }
            }
        } else if angle <= 0 {
            match ident_at(ctx, j) {
                // `impl Trait for Type`: the type after `for` wins.
                Some("for") => last_ident = None,
                Some("where") => {
                    // Type name is settled; skip to the body brace.
                    while j < ctx.sig.len() && op_at(ctx, j) != Some("{") {
                        j += 1;
                    }
                    continue;
                }
                Some(name) => last_ident = Some(name.to_string()),
                None => {}
            }
        }
        j += 1;
    }
    None
}

/// Scans a fn signature starting just past the name: returns the body
/// range (or `None` for `;`-terminated declarations) and whether the
/// return type names a guard.
fn parse_fn_signature(ctx: &FileCtx, start: usize) -> (Option<(usize, usize)>, bool) {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut after_arrow = false;
    let mut returns_guard = false;
    let mut j = start;
    while j < ctx.sig.len() {
        if let Some(op) = op_at(ctx, j) {
            let d = angle_delta(op);
            if d != 0 {
                angle += d;
            } else {
                match op {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    "->" if paren == 0 => after_arrow = true,
                    "{" if paren == 0 && angle <= 0 => {
                        let close = matching_brace(ctx, j);
                        return (Some((j, close)), returns_guard);
                    }
                    ";" if paren == 0 && angle <= 0 => return (None, returns_guard),
                    _ => {}
                }
            }
        } else if after_arrow {
            if let Some(name) = ident_at(ctx, j) {
                if name.contains("Guard") {
                    returns_guard = true;
                }
            }
        }
        j += 1;
    }
    (None, returns_guard)
}

/// What a guard-producing receiver looked like.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Receiver {
    /// A field/static path, segments in source order (`self.inner.sites`
    /// → `["self", "inner", "sites"]`).
    Path(Vec<String>),
    /// The result of a call (`registry().lock()` → `"registry"`).
    CallResult(String),
    /// Unrecognized shape (complex expression).
    Opaque,
}

impl Receiver {
    /// The naming segment: the last path segment, or the called fn.
    pub fn key(&self) -> Option<&str> {
        match self {
            Receiver::Path(segs) => segs.last().map(|s| s.as_str()),
            Receiver::CallResult(f) => Some(f.as_str()),
            Receiver::Opaque => None,
        }
    }
}

/// Walks backwards from the significant index of a `.` to recover the
/// receiver expression in front of it.
pub fn receiver_before_dot(ctx: &FileCtx, dot: usize) -> Receiver {
    let mut segs: Vec<String> = Vec::new();
    let mut j = dot; // index of the `.`
    loop {
        if j == 0 {
            break;
        }
        let prev = j - 1;
        if let Some(name) = ident_at(ctx, prev) {
            segs.push(name.to_string());
            // Continue only through `.` / `::` chains.
            if prev >= 1 && matches!(op_at(ctx, prev - 1), Some("." | "::")) {
                j = prev - 1;
                continue;
            }
            break;
        }
        if op_at(ctx, prev) == Some(")") {
            // Call result: find the matching `(` backwards, then the name.
            let mut depth = 0i32;
            let mut i = prev;
            loop {
                match op_at(ctx, i) {
                    Some(")") => depth += 1,
                    Some("(") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if i == 0 {
                    return Receiver::Opaque;
                }
                i -= 1;
            }
            if i >= 1 {
                if let Some(f) = ident_at(ctx, i - 1) {
                    return Receiver::CallResult(f.to_string());
                }
            }
            return Receiver::Opaque;
        }
        break;
    }
    if segs.is_empty() {
        Receiver::Opaque
    } else {
        segs.reverse();
        Receiver::Path(segs)
    }
}

/// Finds the significant index where the statement containing `at`
/// starts, scanning backwards to the nearest `;`, `{`, or `}` at nesting
/// depth zero (relative to `at`). `floor` bounds the scan (fn body open).
pub fn stmt_start(ctx: &FileCtx, at: usize, floor: usize) -> usize {
    let mut depth = 0i32;
    let mut j = at;
    while j > floor {
        let prev = j - 1;
        match op_at(ctx, prev) {
            // A `}` at depth 0 going backwards closes the *previous*
            // statement (block-terminated, like `if .. { .. }`), so the
            // statement containing `at` starts here.
            Some("}") if depth == 0 => return j,
            Some(")" | "]" | "}") => depth += 1,
            Some("(" | "[" | "{") => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            Some(";") if depth == 0 => return j,
            _ => {}
        }
        j = prev;
    }
    floor + 1
}

/// The end (exclusive upper significant index) of the statement
/// containing `at`: the next `;` at depth 0, or the end of the enclosing
/// block.
pub fn stmt_end(ctx: &FileCtx, at: usize, ceil: usize) -> usize {
    let mut depth = 0i32;
    let mut j = at;
    while j < ceil {
        match op_at(ctx, j) {
            Some("(" | "[" | "{") => depth += 1,
            Some(")" | "]" | "}") => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            Some(";") if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    ceil
}

/// The end of the enclosing block: the `}` whose matching `{` opened
/// before `at`. `ceil` is the fn body close.
pub fn enclosing_block_end(ctx: &FileCtx, at: usize, ceil: usize) -> usize {
    let mut depth = 0i32;
    let mut j = at;
    while j < ceil {
        match op_at(ctx, j) {
            Some("{") => depth += 1,
            Some("}") => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    ceil
}

/// For a control-flow statement (`if` / `while` / `for` / `match`)
/// starting before `at`, the end of the block attached to the condition:
/// the matching `}` of the first `{` at paren-depth 0 after `at`.
pub fn construct_end(ctx: &FileCtx, at: usize, ceil: usize) -> usize {
    let mut paren = 0i32;
    let mut j = at;
    while j < ceil {
        match op_at(ctx, j) {
            Some("(" | "[") => paren += 1,
            Some(")" | "]") => paren -= 1,
            Some("{") if paren == 0 => return matching_brace(ctx, j).min(ceil),
            Some(";") if paren == 0 => return j, // no block (e.g. `while cond;`? safety net)
            _ => {}
        }
        j += 1;
    }
    ceil
}

/// How a guard's liveness was derived (kept on the site for diagnostics
/// and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// `let g = ...;` — live to block end (or `drop(g)`).
    Binding,
    /// Temporary inside `if let` / `while let` / `for` / `match` — live
    /// through the attached block.
    Construct,
    /// Plain temporary — live to the end of the statement.
    Statement,
    /// Place expression left of `=` — effectively empty (RHS runs first).
    AssignPlace,
}

/// Computes the live significant-index range for a guard produced at
/// `acq` (the index of the producing call's method/fn name token), given
/// the fn body `(open, close)`. Returns `(start, end, bound_var,
/// liveness)`; `end` is inclusive-exclusive against token indices in
/// `[start, end)` being "under the guard".
pub fn guard_live_range(
    ctx: &FileCtx,
    acq: usize,
    body: (usize, usize),
) -> (usize, usize, Option<String>, Liveness) {
    let (open, close) = body;
    let start_of_stmt = stmt_start(ctx, acq, open);
    // Assignment place: a top-level `=` after the acquisition within the
    // statement means the guard is only the store destination.
    {
        let send = stmt_end(ctx, acq, close);
        let mut depth = 0i32;
        for j in acq..send {
            match op_at(ctx, j) {
                Some("(" | "[" | "{") => depth += 1,
                Some(")" | "]" | "}") => depth -= 1,
                Some("=") if depth == 0 => {
                    return (acq, acq, None, Liveness::AssignPlace);
                }
                _ => {}
            }
        }
    }
    match ident_at(ctx, start_of_stmt) {
        Some("let") => {
            // `let [mut] var = <acquisition>;` — bound guard when the
            // acquisition chain ends the initializer; a longer postfix
            // chain (`.lock().len()`) consumes the guard in-statement.
            let mut v = start_of_stmt + 1;
            if ident_at(ctx, v) == Some("mut") {
                v += 1;
            }
            let var = ident_at(ctx, v).map(|s| s.to_string());
            let simple_pattern = var.is_some() && matches!(op_at(ctx, v + 1), Some("=" | ":"));
            let send = stmt_end(ctx, acq, close);
            // The producing call's argument list: `name ( ... )`.
            let chain_cont = {
                let mut j = acq + 1;
                if op_at(ctx, j) == Some("(") {
                    let mut depth = 0i32;
                    while j < send {
                        match op_at(ctx, j) {
                            Some("(") => depth += 1,
                            Some(")") => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                matches!(op_at(ctx, j + 1), Some(".") | Some("?"))
            };
            if chain_cont {
                return (acq, send, None, Liveness::Statement);
            }
            let mut end = enclosing_block_end(ctx, acq, close);
            if simple_pattern {
                if let Some(var_name) = &var {
                    // Explicit `drop(var)` truncates liveness.
                    let mut j = acq;
                    while j + 2 < end {
                        if ident_at(ctx, j) == Some("drop")
                            && op_at(ctx, j + 1) == Some("(")
                            && ident_at(ctx, j + 2) == Some(var_name.as_str())
                            && op_at(ctx, j + 3) == Some(")")
                        {
                            end = j;
                            break;
                        }
                        j += 1;
                    }
                }
            }
            (acq, end, var.filter(|_| simple_pattern), Liveness::Binding)
        }
        Some(kw @ ("if" | "while" | "for" | "match")) => {
            // `if let` / `while let` / `match` / `for` scrutinee
            // temporaries live through the attached block. A *plain*
            // `if cond` / `while cond` drops its condition temporaries
            // once the condition evaluates to a bool, before the block
            // runs — the guard is condition-scoped only.
            let is_let = ident_at(ctx, start_of_stmt + 1) == Some("let");
            if matches!(kw, "if" | "while") && !is_let {
                // Live until the block opens (the end of the condition);
                // braces inside parenthesized closures don't count.
                let mut j = acq;
                let mut paren = 0i32;
                while j < close {
                    match op_at(ctx, j) {
                        Some("(" | "[") => paren += 1,
                        Some(")" | "]") => paren -= 1,
                        Some("{") if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                (acq, j, None, Liveness::Statement)
            } else {
                let end = construct_end(ctx, acq, close);
                (acq, end, None, Liveness::Construct)
            }
        }
        _ => {
            let end = stmt_end(ctx, acq, close);
            (acq, end, None, Liveness::Statement)
        }
    }
}

/// True when the significant token at `k` is an identifier immediately
/// followed by `(` — a call shape.
pub fn is_call(ctx: &FileCtx, k: usize) -> bool {
    ident_at(ctx, k).is_some() && op_at(ctx, k + 1) == Some("(")
}

/// True when the call at `k` has an empty argument list (`name()`).
pub fn is_nullary_call(ctx: &FileCtx, k: usize) -> bool {
    is_call(ctx, k) && op_at(ctx, k + 2) == Some(")")
}

/// The kind payload at significant index `k`, if in range.
pub fn kind_at(ctx: &FileCtx, k: usize) -> Option<&TokKind> {
    ctx.sig.get(k).map(|&i| &ctx.tokens[i].kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("crates/engine/src/x.rs", src)
    }

    #[test]
    fn fn_scopes_with_impl_types() {
        let src = "impl Inner {\n    fn apply(&self) { body(); }\n}\n\
                   impl Drop for Coordinator {\n    fn drop(&mut self) {}\n}\n\
                   fn free() {}\n";
        let c = ctx(src);
        let fns = fn_scopes(&c);
        let names: Vec<(Option<&str>, &str)> = fns
            .iter()
            .map(|f| (f.impl_type.as_deref(), f.name.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![
                (Some("Inner"), "apply"),
                (Some("Coordinator"), "drop"),
                (None, "free"),
            ]
        );
        assert!(fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn generic_impl_and_where_clause() {
        let src = "impl<T: Clone> Registry<T> where T: Send {\n    fn get(&self) {}\n}\n";
        let fns = fn_scopes(&ctx(src));
        assert_eq!(fns[0].impl_type.as_deref(), Some("Registry"));
    }

    #[test]
    fn guard_returning_signature() {
        let src = "fn lock(b: &Bucket) -> MutexGuard<'_, u8> { b.lock() }\n\
                   fn lock_all(&self) -> Vec<MutexGuard<'_, u8>> { v() }\n\
                   fn plain(&self) -> u8 { 0 }\n";
        let fns = fn_scopes(&ctx(src));
        assert!(fns[0].returns_guard);
        assert!(fns[1].returns_guard);
        assert!(!fns[2].returns_guard);
    }

    #[test]
    fn receiver_paths() {
        let src = "fn f(&self) { self.inner.sites.lock(); registry().lock(); b.lock(); }\n";
        let c = ctx(src);
        // Find each `lock` ident's significant index.
        let locks: Vec<usize> = (0..c.sig.len())
            .filter(|&k| {
                c.sig
                    .get(k)
                    .map(|&i| c.tokens[i].ident() == Some("lock"))
                    .unwrap_or(false)
            })
            .collect();
        assert_eq!(
            receiver_before_dot(&c, locks[0] - 1),
            Receiver::Path(vec!["self".into(), "inner".into(), "sites".into()])
        );
        assert_eq!(
            receiver_before_dot(&c, locks[1] - 1),
            Receiver::CallResult("registry".into())
        );
        assert_eq!(
            receiver_before_dot(&c, locks[2] - 1),
            Receiver::Path(vec!["b".into()])
        );
    }

    fn lock_idx(c: &FileCtx, nth: usize) -> usize {
        (0..c.sig.len())
            .filter(|&k| {
                c.sig
                    .get(k)
                    .map(|&i| c.tokens[i].ident() == Some("lock"))
                    .unwrap_or(false)
            })
            .nth(nth)
            .expect("lock token")
    }

    #[test]
    fn binding_guard_lives_to_block_end_or_drop() {
        let src = "fn f(&self) {\n    let sites = self.sites.lock();\n    use_it();\n    drop(sites);\n    after();\n}\n";
        let c = ctx(src);
        let fns = fn_scopes(&c);
        let body = fns[0].body.unwrap();
        let acq = lock_idx(&c, 0);
        let (start, end, var, live) = guard_live_range(&c, acq, body);
        assert_eq!(live, Liveness::Binding);
        assert_eq!(var.as_deref(), Some("sites"));
        // `use_it` is inside the range, `after` is not.
        let use_it = (start..end).any(|k| ident_at(&c, k) == Some("use_it"));
        let after = (start..end).any(|k| ident_at(&c, k) == Some("after"));
        assert!(use_it && !after);
    }

    #[test]
    fn if_let_temporary_lives_through_block() {
        let src = "fn f(&self) {\n    if let Some(w) = self.wal.lock().as_mut() {\n        w.append();\n    }\n    after();\n}\n";
        let c = ctx(src);
        let body = fn_scopes(&c)[0].body.unwrap();
        let acq = lock_idx(&c, 0);
        let (start, end, _, live) = guard_live_range(&c, acq, body);
        assert_eq!(live, Liveness::Construct);
        let append = (start..end).any(|k| ident_at(&c, k) == Some("append"));
        let after = (start..end).any(|k| ident_at(&c, k) == Some("after"));
        assert!(append && !after);
    }

    #[test]
    fn plain_if_condition_temp_drops_before_the_block() {
        // Unlike `if let`, a plain `if` evaluates its condition to a bool
        // and drops the temporaries before the block runs.
        let src =
            "fn f(&self) {\n    if self.report.lock().is_none() {\n        heavy();\n    }\n}\n";
        let c = ctx(src);
        let body = fn_scopes(&c)[0].body.unwrap();
        let acq = lock_idx(&c, 0);
        let (start, end, _, live) = guard_live_range(&c, acq, body);
        assert_eq!(live, Liveness::Statement);
        let heavy = (start..end).any(|k| ident_at(&c, k) == Some("heavy"));
        assert!(!heavy);
    }

    #[test]
    fn chained_let_is_statement_lived() {
        let src = "fn f(&self) {\n    let n = self.sites.lock().len();\n    after();\n}\n";
        let c = ctx(src);
        let body = fn_scopes(&c)[0].body.unwrap();
        let acq = lock_idx(&c, 0);
        let (start, end, var, live) = guard_live_range(&c, acq, body);
        assert_eq!(live, Liveness::Statement);
        assert!(var.is_none());
        let after = (start..end).any(|k| ident_at(&c, k) == Some("after"));
        assert!(!after);
    }

    #[test]
    fn assignment_place_is_not_held_over_rhs() {
        let src = "fn f(&self) {\n    *self.wal.lock() = Some(Wal::create(path));\n}\n";
        let c = ctx(src);
        let body = fn_scopes(&c)[0].body.unwrap();
        let acq = lock_idx(&c, 0);
        let (start, end, _, live) = guard_live_range(&c, acq, body);
        assert_eq!(live, Liveness::AssignPlace);
        assert_eq!(start, end);
    }

    #[test]
    fn plain_temporary_is_statement_lived() {
        let src = "fn f(&self) {\n    self.horizons.lock().record(now);\n    after();\n}\n";
        let c = ctx(src);
        let body = fn_scopes(&c)[0].body.unwrap();
        let acq = lock_idx(&c, 0);
        let (start, end, _, live) = guard_live_range(&c, acq, body);
        assert_eq!(live, Liveness::Statement);
        let record = (start..end).any(|k| ident_at(&c, k) == Some("record"));
        let after = (start..end).any(|k| ident_at(&c, k) == Some("after"));
        assert!(record && !after);
    }
}
