//! Workspace-level concurrency analysis: `lock-order` and
//! `blocking-under-lock`.
//!
//! Unlike the per-file rules, this pass sees every file of the run at
//! once. On top of the scope layer ([`crate::tree`]) it:
//!
//! 1. **Names every lock site.** A nullary `.lock()` / `.read()` /
//!    `.write()` is an acquisition; the lock's identity is derived from
//!    the receiver path (`self.inner.sites.lock()` → `distrib::sites`,
//!    `registry().lock()` → `engine::registry`). Where the heuristic
//!    names poorly, a `// lock-name: <name>` comment on the acquisition
//!    line (or directly above) overrides it; a name containing `::` is
//!    used verbatim, otherwise it is crate-qualified. Same-named fields
//!    within one crate unify — which is exactly right for sharded locks
//!    (every serve bucket is the same rank in the discipline).
//!
//! 2. **Builds the acquired-while-holding graph.** For each fn the pass
//!    records which guards are live at every acquisition, call, and
//!    blocking site (guard liveness from [`crate::tree::guard_live_range`]).
//!    Calls are resolved within the workspace (same-impl methods, free
//!    fns, `Type::method`, `module::fn` by file stem, and unique
//!    method names not shadowed by the std blocklist), and lock/blocking
//!    *effects* propagate transitively through the call graph. An edge
//!    `A → B` means "B acquired somewhere while A was held".
//!
//! 3. **Reports `lock-order`** for every cycle in that graph (self-loops
//!    included), with the full cross-file witness path in the message,
//!    anchored at the first edge's acquisition site. Suppressing the
//!    inner acquisition line with `lint:allow(lock-order)` removes that
//!    edge before cycle detection, so one reasoned exemption breaks the
//!    cycle it participates in.
//!
//! 4. **Reports `blocking-under-lock`** when a blocking operation
//!    (fsync family, blocking reads/writes, channel send/recv, `join()`,
//!    `thread::sleep`) is reachable — directly or through resolved
//!    calls — while any guard is live, in non-test, non-failpoint code
//!    of the concurrent crates (engine / serve / distrib).
//!
//! Known static blind spots (the `lock-audit` runtime in
//! `ustream-common::ordered` covers these dynamically): closures
//! executed under a lock held by the *caller* of the closure's taker,
//! guards moved into collections (`guards.push(lock(b))`), and method
//! calls whose name is ambiguous within the crate.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::context::FileCtx;
use crate::diag::Finding;
use crate::tree::{self, Receiver};

/// Crates whose non-test code is in scope for `blocking-under-lock`.
const BLOCKING_SCOPE: &[&str] = &["engine", "serve", "distrib"];

/// Method names that block unconditionally (any arity).
const BLOCKING_METHODS: &[&str] = &[
    "sync_all",
    "sync_data",
    "read_exact",
    "write_all",
    "read_to_end",
    "read_to_string",
    "send",
    "recv",
    "recv_timeout",
];

/// Identifiers that look like calls but are control flow or items.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "break", "continue", "in", "as", "let",
    "else", "move", "ref", "unsafe", "where", "impl", "fn", "use", "pub", "mod", "struct", "enum",
    "trait", "type", "const", "static", "crate", "super", "dyn", "await", "async", "yield",
];

/// Method names never resolved to workspace fns when the receiver is not
/// `self`: they are overwhelmingly std/container methods, and a chance
/// collision with a workspace fn of the same name would fabricate call
/// edges.
const STD_NAMES: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "ceil",
    "chain",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "default",
    "drain",
    "elapsed",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "filter",
    "find",
    "first",
    "flat_map",
    "floor",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "keys",
    "last",
    "len",
    "map",
    "max",
    "min",
    "next",
    "ok",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "pop",
    "position",
    "push",
    "remove",
    "replace",
    "retain",
    "rev",
    "round",
    "sort",
    "sort_by",
    "sort_unstable",
    "split",
    "splitn",
    "sqrt",
    "starts_with",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_from",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "zip",
];

fn ident_at(ctx: &FileCtx, k: usize) -> Option<&str> {
    ctx.sig
        .get(k)
        .map(|&i| &ctx.tokens[i])
        .and_then(|t| t.ident())
}

fn op_at(ctx: &FileCtx, k: usize) -> Option<&str> {
    ctx.sig.get(k).map(|&i| &ctx.tokens[i]).and_then(|t| t.op())
}

/// One guard acquisition (direct `.lock()` family, or inherited from a
/// guard-returning workspace fn).
#[derive(Debug, Clone)]
struct Acq {
    lock: String,
    line: u32,
    col: u32,
    site: usize,
    live: (usize, usize),
    /// Let-binding the guard lives in, when there is one — used to
    /// recognize method calls *on* the guard (which dereference to the
    /// protected data and must not be name-resolved).
    binding: Option<String>,
}

/// How a call names its target.
#[derive(Debug, Clone, PartialEq)]
enum Callee {
    /// `self.m(..)`.
    SelfMethod,
    /// `f(..)`.
    Free,
    /// `Seg::m(..)` — `Seg` is a type (uppercase) or module (lowercase).
    Qualified(String),
    /// `expr.m(..)` with a non-`self` receiver.
    Method,
}

#[derive(Debug, Clone)]
struct CallSite {
    name: String,
    callee: Callee,
    line: u32,
    col: u32,
    site: usize,
}

#[derive(Debug, Clone)]
struct BlockSite {
    op: String,
    line: u32,
    col: u32,
    site: usize,
}

/// Everything the analysis knows about one non-test fn body.
#[derive(Debug)]
struct FnInfo {
    ctx: usize,
    krate: String,
    qual: String,
    name: String,
    impl_type: Option<String>,
    body: (usize, usize),
    returns_guard: bool,
    acqs: Vec<Acq>,
    calls: Vec<CallSite>,
    blocks: Vec<BlockSite>,
}

/// Transitive lock / blocking effects of calling a fn.
#[derive(Debug, Clone, Default)]
struct Effects {
    /// Lock name → first witness site.
    locks: BTreeMap<String, Site>,
    /// Blocking op → first witness site.
    blocking: BTreeMap<String, Site>,
}

#[derive(Debug, Clone)]
struct Site {
    path: String,
    line: u32,
    via: String,
}

/// The crate a file belongs to, for lock naming and rule scoping.
fn crate_of(ctx: &FileCtx) -> String {
    match ctx.crate_name() {
        Some(c) => c.to_string(),
        None => ctx
            .path
            .split('/')
            .next()
            .unwrap_or("root")
            .trim_end_matches(".rs")
            .to_string(),
    }
}

/// `// lock-name: <name>` on `line` or the line directly above.
fn lock_annotation(ctx: &FileCtx, line: u32) -> Option<String> {
    for l in [line, line.saturating_sub(1)] {
        if l == 0 {
            continue;
        }
        let text = ctx.line_text(l);
        if let Some(p) = text.find("lock-name:") {
            let name = text[p + "lock-name:".len()..]
                .split_whitespace()
                .next()
                .unwrap_or("")
                .trim_matches('`')
                .to_string();
            if !name.is_empty() {
                return Some(name);
            }
        }
    }
    None
}

fn lock_name(ctx: &FileCtx, krate: &str, line: u32, recv: &Receiver) -> String {
    if let Some(ann) = lock_annotation(ctx, line) {
        return if ann.contains("::") {
            ann
        } else {
            format!("{krate}::{ann}")
        };
    }
    match recv.key() {
        Some(seg) => format!("{krate}::{seg}"),
        None => format!("{krate}::<expr@{}:{line}>", ctx.path),
    }
}

/// Collects per-fn facts (acquisitions, calls, blocking sites) for every
/// non-test fn in the run.
fn collect_fns(ctxs: &[FileCtx]) -> Vec<FnInfo> {
    let mut out = Vec::new();
    for (ci, ctx) in ctxs.iter().enumerate() {
        if ctx.is_test_file {
            continue;
        }
        let krate = crate_of(ctx);
        let scopes = tree::fn_scopes(ctx);
        let tcp = ctx
            .lines
            .iter()
            .any(|l| l.contains("TcpStream") || l.contains("TcpListener"));
        for (si, f) in scopes.iter().enumerate() {
            let Some(body) = f.body else { continue };
            if ctx.in_test(f.line) || ctx.in_failpoint(f.line) {
                continue;
            }
            // Nested fn bodies belong to their own FnInfo; skip their
            // token ranges while scanning this one.
            let children: Vec<(usize, usize)> = scopes
                .iter()
                .enumerate()
                .filter(|&(oi, _)| oi != si)
                .filter_map(|(_, g)| {
                    g.body
                        .filter(|&(o, c)| o > body.0 && c < body.1)
                        .map(|(_, c)| (g.kw, c))
                })
                .collect();
            let qual = match &f.impl_type {
                Some(t) => format!("{krate}::{t}::{}", f.name),
                None => format!("{krate}::{}", f.name),
            };
            let mut info = FnInfo {
                ctx: ci,
                krate: krate.clone(),
                qual,
                name: f.name.clone(),
                impl_type: f.impl_type.clone(),
                body,
                returns_guard: f.returns_guard,
                acqs: Vec::new(),
                calls: Vec::new(),
                blocks: Vec::new(),
            };
            let mut k = body.0 + 1;
            while k < body.1 {
                if let Some(&(_, cend)) = children.iter().find(|&&(s, _)| s == k) {
                    k = cend + 1;
                    continue;
                }
                let Some(name) = ident_at(ctx, k) else {
                    k += 1;
                    continue;
                };
                let t = &ctx.tokens[ctx.sig[k]];
                if ctx.in_test(t.line) || ctx.in_failpoint(t.line) {
                    k += 1;
                    continue;
                }
                let is_method = k > 0 && op_at(ctx, k - 1) == Some(".");
                let has_call = op_at(ctx, k + 1) == Some("(");
                let nullary = has_call && op_at(ctx, k + 2) == Some(")");
                if is_method && nullary && matches!(name, "lock" | "read" | "write") {
                    let recv = tree::receiver_before_dot(ctx, k - 1);
                    let (ls, le, binding, _) = tree::guard_live_range(ctx, k, body);
                    info.acqs.push(Acq {
                        lock: lock_name(ctx, &krate, t.line, &recv),
                        line: t.line,
                        col: t.col,
                        site: k,
                        live: (ls, le),
                        binding,
                    });
                } else if (is_method && has_call && BLOCKING_METHODS.contains(&name))
                    || (is_method && nullary && name == "join")
                    || (is_method
                        && has_call
                        && !nullary
                        && matches!(name, "read" | "write")
                        && tcp)
                {
                    info.blocks.push(BlockSite {
                        op: name.to_string(),
                        line: t.line,
                        col: t.col,
                        site: k,
                    });
                } else if name == "sleep"
                    && k >= 2
                    && op_at(ctx, k - 1) == Some("::")
                    && ident_at(ctx, k - 2) == Some("thread")
                {
                    info.blocks.push(BlockSite {
                        op: "thread::sleep".to_string(),
                        line: t.line,
                        col: t.col,
                        site: k,
                    });
                } else if has_call && name != "drop" && !KEYWORDS.contains(&name) {
                    if is_method {
                        let recv = tree::receiver_before_dot(ctx, k - 1);
                        let callee = match &recv {
                            Receiver::Path(p) if p.len() == 1 && p[0] == "self" => {
                                Some(Callee::SelfMethod)
                            }
                            // A method invoked directly on a fresh guard
                            // (`x.lock().frobnicate()`) dereferences to the
                            // protected data, whose type is invisible to a
                            // lexical pass — resolving by bare name would
                            // misbind to a same-named method on the
                            // enclosing type. Skip it; the runtime checker
                            // covers what the callee actually acquires.
                            Receiver::CallResult(f)
                                if matches!(f.as_str(), "lock" | "read" | "write") =>
                            {
                                None
                            }
                            // Same for a call on a live guard *binding*
                            // (`let g = x.lock(); g.frobnicate()`).
                            Receiver::Path(p)
                                if p.len() == 1
                                    && info.acqs.iter().any(|a| {
                                        a.binding.as_deref() == Some(p[0].as_str())
                                            && a.live.0 <= k
                                            && k <= a.live.1
                                    }) =>
                            {
                                None
                            }
                            _ => Some(Callee::Method),
                        };
                        if let Some(callee) = callee {
                            info.calls.push(CallSite {
                                name: name.to_string(),
                                callee,
                                line: t.line,
                                col: t.col,
                                site: k,
                            });
                        }
                    } else if k > 0 && op_at(ctx, k - 1) == Some("::") {
                        let seg = ident_at(ctx, k.wrapping_sub(2)).unwrap_or("").to_string();
                        info.calls.push(CallSite {
                            name: name.to_string(),
                            callee: Callee::Qualified(seg),
                            line: t.line,
                            col: t.col,
                            site: k,
                        });
                    } else if !(k > 0 && ident_at(ctx, k - 1) == Some("fn")) {
                        info.calls.push(CallSite {
                            name: name.to_string(),
                            callee: Callee::Free,
                            line: t.line,
                            col: t.col,
                            site: k,
                        });
                    }
                }
                k += 1;
            }
            out.push(info);
        }
    }
    out
}

/// Call-resolution index over the collected fns.
struct Index {
    /// (crate, impl type, name) → fn indices.
    typed: BTreeMap<(String, String, String), Vec<usize>>,
    /// (crate, name) → free fns (no impl type).
    free: BTreeMap<(String, String), Vec<usize>>,
    /// (crate, name) → methods (any impl type).
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// (impl type, name) → fn indices, any crate.
    by_type: BTreeMap<(String, String), Vec<usize>>,
    /// (file stem, name) → fn indices, any crate (module-path calls).
    by_stem: BTreeMap<(String, String), Vec<usize>>,
}

impl Index {
    fn build(fns: &[FnInfo], ctxs: &[FileCtx]) -> Self {
        let mut idx = Index {
            typed: BTreeMap::new(),
            free: BTreeMap::new(),
            methods: BTreeMap::new(),
            by_type: BTreeMap::new(),
            by_stem: BTreeMap::new(),
        };
        for (i, f) in fns.iter().enumerate() {
            let stem = ctxs[f.ctx]
                .path
                .rsplit('/')
                .next()
                .unwrap_or("")
                .trim_end_matches(".rs")
                .to_string();
            idx.by_stem
                .entry((stem, f.name.clone()))
                .or_default()
                .push(i);
            match &f.impl_type {
                Some(t) => {
                    idx.typed
                        .entry((f.krate.clone(), t.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                    idx.methods
                        .entry((f.krate.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                    idx.by_type
                        .entry((t.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                }
                None => {
                    idx.free
                        .entry((f.krate.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                }
            }
        }
        idx
    }

    fn unique(v: Option<&Vec<usize>>) -> Option<usize> {
        match v {
            Some(list) if list.len() == 1 => Some(list[0]),
            _ => None,
        }
    }

    fn resolve(&self, from: &FnInfo, call: &CallSite) -> Option<usize> {
        match &call.callee {
            Callee::SelfMethod => {
                if let Some(ty) = &from.impl_type {
                    if let Some(i) = Self::unique(self.typed.get(&(
                        from.krate.clone(),
                        ty.clone(),
                        call.name.clone(),
                    ))) {
                        return Some(i);
                    }
                }
                Self::unique(self.methods.get(&(from.krate.clone(), call.name.clone())))
            }
            Callee::Free => Self::unique(self.free.get(&(from.krate.clone(), call.name.clone()))),
            Callee::Qualified(seg) => {
                let seg = if seg == "Self" {
                    from.impl_type.clone().unwrap_or_default()
                } else {
                    seg.clone()
                };
                if seg.chars().next().is_some_and(|c| c.is_uppercase()) {
                    if let Some(i) = Self::unique(self.typed.get(&(
                        from.krate.clone(),
                        seg.clone(),
                        call.name.clone(),
                    ))) {
                        return Some(i);
                    }
                    Self::unique(self.by_type.get(&(seg, call.name.clone())))
                } else {
                    Self::unique(self.by_stem.get(&(seg, call.name.clone())))
                }
            }
            Callee::Method => {
                if STD_NAMES.contains(&call.name.as_str()) {
                    return None;
                }
                Self::unique(self.methods.get(&(from.krate.clone(), call.name.clone())))
            }
        }
    }
}

/// Transitive effects, memoized; recursion cycles contribute nothing on
/// the back edge (deterministic, and enough for existence of effects).
fn effects_of(
    i: usize,
    fns: &[FnInfo],
    resolved: &[Vec<Option<usize>>],
    ctxs: &[FileCtx],
    memo: &mut Vec<Option<Effects>>,
    visiting: &mut Vec<bool>,
) -> Effects {
    if let Some(e) = &memo[i] {
        return e.clone();
    }
    if visiting[i] {
        return Effects::default();
    }
    visiting[i] = true;
    let f = &fns[i];
    let path = ctxs[f.ctx].path.clone();
    let mut e = Effects::default();
    for a in &f.acqs {
        e.locks.entry(a.lock.clone()).or_insert_with(|| Site {
            path: path.clone(),
            line: a.line,
            via: f.qual.clone(),
        });
    }
    for b in &f.blocks {
        e.blocking.entry(b.op.clone()).or_insert_with(|| Site {
            path: path.clone(),
            line: b.line,
            via: f.qual.clone(),
        });
    }
    for (ci, c) in f.calls.iter().enumerate() {
        if let Some(g) = resolved[i][ci] {
            let sub = effects_of(g, fns, resolved, ctxs, memo, visiting);
            for (l, s) in sub.locks {
                e.locks.entry(l).or_insert_with(|| Site {
                    path: s.path.clone(),
                    line: s.line,
                    via: format!("{} → {}", c.name, s.via),
                });
            }
            for (op, s) in sub.blocking {
                e.blocking.entry(op).or_insert_with(|| Site {
                    path: s.path.clone(),
                    line: s.line,
                    via: format!("{} → {}", c.name, s.via),
                });
            }
        }
    }
    visiting[i] = false;
    memo[i] = Some(e.clone());
    e
}

#[derive(Debug, Clone)]
struct Edge {
    path: String,
    line: u32,
    col: u32,
    note: String,
}

fn held_at(acqs: &[Acq], site: usize) -> Vec<&Acq> {
    acqs.iter()
        .filter(|a| a.live.0 < site && site < a.live.1)
        .collect()
}

fn held_names(held: &[&Acq]) -> String {
    let names: BTreeSet<&str> = held.iter().map(|a| a.lock.as_str()).collect();
    names
        .iter()
        .map(|n| format!("`{n}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Shortest cycle from `start` back to itself, via BFS over sorted
/// successors; `None` when `start` is not on a cycle.
fn find_cycle(start: &str, adj: &BTreeMap<&str, Vec<&str>>) -> Option<Vec<String>> {
    let succs = adj.get(start)?;
    if succs.contains(&start) {
        return Some(vec![start.to_string(), start.to_string()]);
    }
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut q: VecDeque<&str> = VecDeque::new();
    for &s in succs {
        parent.entry(s).or_insert(start);
        q.push_back(s);
    }
    while let Some(n) = q.pop_front() {
        for &s in adj.get(n).map(|v| v.as_slice()).unwrap_or(&[]) {
            if s == start {
                // Reconstruct start → … → n → start.
                let mut rev = vec![n];
                let mut cur = n;
                while cur != start {
                    cur = parent[cur];
                    rev.push(cur);
                }
                rev.reverse();
                let mut cycle: Vec<String> = rev.into_iter().map(|s| s.to_string()).collect();
                cycle.push(start.to_string());
                return Some(cycle);
            }
            if s != start && !parent.contains_key(s) {
                parent.insert(s, n);
                q.push_back(s);
            }
        }
    }
    None
}

/// The workspace pass. Pushes *raw* findings (pre-suppression) into
/// `out`; [`crate::rules::run_all`] applies the suppression filter. Edges
/// whose acquisition line carries a reasoned `lint:allow(lock-order)` are
/// removed before cycle detection — and re-emitted as raw findings so
/// `--stale-allows` can tell a load-bearing exemption from a dead one.
pub(crate) fn rule_locks(ctxs: &[FileCtx], out: &mut Vec<Finding>) {
    let fns = collect_fns(ctxs);
    let index = Index::build(&fns, ctxs);
    let resolved: Vec<Vec<Option<usize>>> = fns
        .iter()
        .map(|f| f.calls.iter().map(|c| index.resolve(f, c)).collect())
        .collect();
    let mut memo: Vec<Option<Effects>> = vec![None; fns.len()];
    let mut visiting = vec![false; fns.len()];
    let effects: Vec<Effects> = (0..fns.len())
        .map(|i| effects_of(i, &fns, &resolved, ctxs, &mut memo, &mut visiting))
        .collect();

    // Augment each fn's guard set with guards inherited from
    // guard-returning workspace fns (`let g = lock(bucket);`).
    let aug: Vec<Vec<Acq>> = fns
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let ctx = &ctxs[f.ctx];
            let mut a = f.acqs.clone();
            for (ci, c) in f.calls.iter().enumerate() {
                if let Some(g) = resolved[i][ci] {
                    if fns[g].returns_guard && !effects[g].locks.is_empty() {
                        let (ls, le, binding, _) = tree::guard_live_range(ctx, c.site, f.body);
                        for lock in effects[g].locks.keys() {
                            a.push(Acq {
                                lock: lock.clone(),
                                line: c.line,
                                col: c.col,
                                site: c.site,
                                live: (ls, le),
                                binding: binding.clone(),
                            });
                        }
                    }
                }
            }
            a.sort_by_key(|x| x.site);
            a
        })
        .collect();

    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let mut local: Vec<Finding> = Vec::new();

    let add_edge = |edges: &mut BTreeMap<(String, String), Edge>,
                    local: &mut Vec<Finding>,
                    ctx: &FileCtx,
                    from: &str,
                    to: &str,
                    line: u32,
                    col: u32,
                    note: String| {
        if ctx.suppressed("lock-order", line) {
            // Raw finding so --stale-allows sees the exemption is live;
            // run_all's suppression filter removes it from real output.
            local.push(Finding {
                path: ctx.path.clone(),
                line,
                col,
                rule: "lock-order",
                message: format!("`{to}` acquired while `{from}` held (suppressed edge)"),
                hint: LOCK_ORDER_HINT,
            });
            return;
        }
        edges
            .entry((from.to_string(), to.to_string()))
            .or_insert(Edge {
                path: ctx.path.clone(),
                line,
                col,
                note,
            });
    };

    for (i, f) in fns.iter().enumerate() {
        let ctx = &ctxs[f.ctx];
        let acqs = &aug[i];
        let in_scope = BLOCKING_SCOPE.contains(&f.krate.as_str());

        // Direct acquisitions while other guards are live.
        for a in acqs {
            let held = held_at(acqs, a.site);
            for h in &held {
                if h.lock == a.lock && h.site == a.site {
                    continue;
                }
                add_edge(
                    &mut edges,
                    &mut local,
                    ctx,
                    &h.lock,
                    &a.lock,
                    a.line,
                    a.col,
                    format!(
                        "`{}` acquired while `{}` held in {} ({}:{})",
                        a.lock, h.lock, f.qual, ctx.path, a.line
                    ),
                );
            }
        }

        // Calls: propagate callee lock effects as edges, callee blocking
        // effects as findings.
        for (ci, c) in f.calls.iter().enumerate() {
            let Some(g) = resolved[i][ci] else { continue };
            let held = held_at(acqs, c.site);
            if held.is_empty() {
                continue;
            }
            let eff = &effects[g];
            for (lock, s) in &eff.locks {
                for h in &held {
                    if &h.lock == lock {
                        continue;
                    }
                    add_edge(
                        &mut edges,
                        &mut local,
                        ctx,
                        &h.lock,
                        lock,
                        c.line,
                        c.col,
                        format!(
                            "`{lock}` reached from `{}` while `{}` held in {} ({}:{}; acquired at {}:{})",
                            c.name, h.lock, f.qual, ctx.path, c.line, s.path, s.line
                        ),
                    );
                }
            }
            if in_scope {
                if let Some((op, s)) = eff.blocking.iter().next() {
                    local.push(Finding {
                        path: ctx.path.clone(),
                        line: c.line,
                        col: c.col,
                        rule: "blocking-under-lock",
                        message: format!(
                            "`{}` reaches blocking `{op}` ({}:{}) while holding {}",
                            c.name,
                            s.path,
                            s.line,
                            held_names(&held)
                        ),
                        hint: BLOCKING_HINT,
                    });
                }
            }
        }

        // Direct blocking sites.
        if in_scope {
            for b in &f.blocks {
                let held = held_at(acqs, b.site);
                if held.is_empty() {
                    continue;
                }
                local.push(Finding {
                    path: ctx.path.clone(),
                    line: b.line,
                    col: b.col,
                    rule: "blocking-under-lock",
                    message: format!("blocking `{}` while holding {}", b.op, held_names(&held)),
                    hint: BLOCKING_HINT,
                });
            }
        }
    }

    // Cycle detection over the (suppression-filtered) edge set.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in nodes {
        let Some(cycle) = find_cycle(start, &adj) else {
            continue;
        };
        let mut canon: Vec<String> = cycle[..cycle.len() - 1].to_vec();
        canon.sort();
        if !reported.insert(canon) {
            continue;
        }
        let first = &edges[&(cycle[0].clone(), cycle[1].clone())];
        let chain = cycle
            .iter()
            .map(|n| format!("`{n}`"))
            .collect::<Vec<_>>()
            .join(" → ");
        let notes = cycle
            .windows(2)
            .map(|w| edges[&(w[0].clone(), w[1].clone())].note.clone())
            .collect::<Vec<_>>()
            .join("; ");
        local.push(Finding {
            path: first.path.clone(),
            line: first.line,
            col: first.col,
            rule: "lock-order",
            message: format!("lock-order cycle: {chain} — {notes}"),
            hint: LOCK_ORDER_HINT,
        });
    }

    // Deterministic order + dedup (augmented guards can duplicate edges).
    local.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.col,
            b.rule,
            b.message.as_str(),
        ))
    });
    local.dedup_by(|a, b| {
        a.path == b.path
            && a.line == b.line
            && a.col == b.col
            && a.rule == b.rule
            && a.message == b.message
    });
    out.append(&mut local);
}

const LOCK_ORDER_HINT: &str =
    "keep acquisitions consistent with the workspace lock order (DESIGN.md §12 \
     \"Lock discipline\"), restructure to release before re-acquiring, or \
     suppress the inner acquisition with `// lint:allow(lock-order): <how \
     the order is enforced instead>` (e.g. index-order sharded locking)";

const BLOCKING_HINT: &str = "hoist the blocking call out of the guarded region (stage state under \
     the lock, do I/O after the guard drops), or suppress with \
     `// lint:allow(blocking-under-lock): <why the stall is bounded and \
     deliberate>`";

#[cfg(test)]
mod tests {
    use crate::analyze_sources;
    use crate::diag::Finding;

    fn findings_for(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze_sources(&owned)
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn single_file_lock_cycle_fires() {
        let src = "impl S {\n\
                   fn fwd(&self) {\n    let a = self.alpha.lock();\n    let _b = self.beta.lock();\n    drop(a);\n}\n\
                   fn bwd(&self) {\n    let b = self.beta.lock();\n    let _a = self.alpha.lock();\n    drop(b);\n}\n\
                   }\n";
        let f = findings_for(&[("crates/distrib/src/x.rs", src)]);
        assert_eq!(rules_of(&f), vec!["lock-order"]);
        assert!(f[0].message.contains("distrib::alpha"));
        assert!(f[0].message.contains("distrib::beta"));
    }

    #[test]
    fn two_file_cycle_with_crate_unification() {
        let a = "impl A {\nfn fwd(&self) {\n    let g = self.alpha.lock();\n    let _h = self.beta.lock();\n    drop(g);\n}\n}\n";
        let b = "impl B {\nfn bwd(&self) {\n    let g = self.beta.lock();\n    let _h = self.alpha.lock();\n    drop(g);\n}\n}\n";
        let f = findings_for(&[
            ("crates/distrib/src/a.rs", a),
            ("crates/distrib/src/b.rs", b),
        ]);
        assert_eq!(rules_of(&f), vec!["lock-order"]);
        // Reported at the alphabetically-first edge's acquisition site.
        assert_eq!(f[0].path, "crates/distrib/src/a.rs");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "impl S {\nfn one(&self) {\n    let a = self.alpha.lock();\n    let _b = self.beta.lock();\n    drop(a);\n}\n\
                   fn two(&self) {\n    let a = self.alpha.lock();\n    let _b = self.beta.lock();\n    drop(a);\n}\n}\n";
        assert!(findings_for(&[("crates/distrib/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn suppressed_edge_breaks_the_cycle() {
        let src = "impl S {\n\
                   fn fwd(&self) {\n    let a = self.alpha.lock();\n    let _b = self.beta.lock();\n    drop(a);\n}\n\
                   fn bwd(&self) {\n    let b = self.beta.lock();\n    // lint:allow(lock-order): shutdown-only path, fwd cannot run concurrently\n    let _a = self.alpha.lock();\n    drop(b);\n}\n\
                   }\n";
        assert!(findings_for(&[("crates/distrib/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn blocking_under_lock_direct_and_interprocedural() {
        let src = "impl S {\n\
                   fn direct(&self) {\n    let g = self.state.lock();\n    self.file.sync_all();\n    drop(g);\n}\n\
                   fn via(&self) {\n    let g = self.state.lock();\n    self.persist();\n    drop(g);\n}\n\
                   fn persist(&self) {\n    self.file.sync_all();\n}\n\
                   }\n";
        let f = findings_for(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(
            rules_of(&f),
            vec!["blocking-under-lock", "blocking-under-lock"]
        );
        assert_eq!(f[0].line, 4); // direct sync_all
        assert_eq!(f[1].line, 9); // call that reaches it
        assert!(f[1].message.contains("persist"));
    }

    #[test]
    fn guard_dropped_before_blocking_is_clean() {
        let src = "impl S {\nfn f(&self) {\n    let g = self.state.lock();\n    drop(g);\n    self.file.sync_all();\n}\n}\n";
        assert!(findings_for(&[("crates/serve/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn if_let_temporary_guard_is_held() {
        let src = "impl S {\nfn f(&self) {\n    if let Some(w) = self.wal.lock().as_mut() {\n        w.sync_data();\n    }\n}\n}\n";
        let f = findings_for(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(rules_of(&f), vec!["blocking-under-lock"]);
        assert!(f[0].message.contains("serve::wal"));
    }

    #[test]
    fn assignment_place_guard_is_not_held() {
        let src =
            "impl S {\nfn f(&self) {\n    *self.wal.lock() = self.file.read_to_end();\n}\n}\n";
        // RHS evaluates before the place expression locks.
        let f = findings_for(&[("crates/distrib/src/x.rs", src)]);
        assert!(!rules_of(&f).contains(&"blocking-under-lock"));
    }

    #[test]
    fn out_of_scope_crate_is_exempt_from_blocking() {
        let src = "impl S {\nfn f(&self) {\n    let g = self.state.lock();\n    self.file.sync_all();\n    drop(g);\n}\n}\n";
        assert!(findings_for(&[("crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn lock_name_annotation_overrides_heuristic() {
        let src = "impl S {\n\
                   fn fwd(&self) {\n    let a = self.first.lock(); // lock-name: shared\n    let _b = self.second.lock();\n    drop(a);\n}\n\
                   fn bwd(&self) {\n    let b = self.second.lock();\n    let _a = self.other.lock(); // lock-name: shared\n    drop(b);\n}\n\
                   }\n";
        // `first` and `other` unify under the annotation, closing a cycle
        // the field heuristic would miss.
        let f = findings_for(&[("crates/distrib/src/x.rs", src)]);
        assert_eq!(rules_of(&f), vec!["lock-order"]);
        assert!(f[0].message.contains("distrib::shared"));
    }

    #[test]
    fn guard_returning_helper_transfers_the_lock() {
        let src = "fn lock(b: &Bucket) -> MutexGuard<'_, u8> {\n    b.lock()\n}\n\
                   impl S {\nfn f(&self, b: &Bucket) {\n    let g = lock(b);\n    self.file.sync_all();\n    drop(g);\n}\n}\n";
        let f = findings_for(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(rules_of(&f), vec!["blocking-under-lock"]);
        assert!(f[0].message.contains("serve::b"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(s: &S) {\n        let g = s.state.lock();\n        s.file.sync_all();\n        drop(g);\n    }\n}\n";
        assert!(findings_for(&[("crates/serve/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn call_on_fresh_guard_is_not_name_resolved() {
        // `self.horizons.lock().query(h)` dereferences to the protected
        // store; a same-named method on the enclosing type must not be
        // misbound into a self-edge (false lock-order cycle).
        let src = "impl S {\n\
                   fn query(&self, h: u64) -> u64 {\n    let n = self.sites.lock().len();\n    self.horizons.lock().query(h) + n\n}\n\
                   fn snap(&self) {\n    let s = self.sites.lock();\n    self.horizons.lock();\n    drop(s);\n}\n\
                   }\n";
        assert!(findings_for(&[("crates/distrib/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn call_on_live_guard_binding_is_not_name_resolved() {
        // Same for a bound guard: `store.record(..)` is a method on the
        // data behind `horizons`, not the workspace fn named `record`.
        let src = "impl S {\n\
                   fn import(&self) {\n    let mut store = self.horizons.lock();\n    store.record(1);\n    drop(store);\n}\n\
                   fn record(&self, t: u64) {\n    let s = self.sites.lock();\n    self.horizons.lock();\n    drop(s);\n}\n\
                   }\n";
        assert!(findings_for(&[("crates/distrib/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn plain_if_condition_guard_is_not_held_in_block() {
        let src = "impl S {\nfn drop_guard(&self) {\n    if self.report.lock().is_none() {\n        self.file.sync_all();\n    }\n}\n}\n";
        assert!(findings_for(&[("crates/serve/src/x.rs", src)]).is_empty());
    }
}

#[cfg(test)]
mod stmt_boundary_regression {
    use super::*;
    use crate::context::FileCtx;

    /// A block-terminated statement (`if .. { .. }`) before an
    /// acquisition must not absorb it: the guard binding after the block
    /// gets Binding liveness of its own, so the violation still fires.
    /// (Regression: `stmt_start` once walked back across the `}`.)
    #[test]
    fn guard_after_block_statement_keeps_binding_liveness() {
        let src = "impl S {\n\
fn apply(&self) {\n\
    #[cfg(feature = \"failpoints\")]\n\
    if fp::should_fire(fp::PRE)\n\
    {\n\
        self.crash();\n\
        return;\n\
    }\n\
    let g1 = self.state.lock();\n\
    self.file.sync_data();\n\
    drop(g1);\n\
}\n\
}\n";
        let ctx = FileCtx::new("crates/distrib/src/x.rs", src);
        let mut out = Vec::new();
        rule_locks(std::slice::from_ref(&ctx), &mut out);
        let rules: Vec<&str> = out.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["blocking-under-lock"]);
        assert_eq!(out[0].line, 10);
    }
}
