//! `ustream-lint` — repo-specific static analysis for the
//! uncertain-streams workspace.
//!
//! The engine's correctness rests on invariants the Rust compiler cannot
//! see: panic-free hot paths (a worker panic costs the in-flight record),
//! NaN-total float ordering (a NaN must never win or wedge a nearest-
//! cluster scan), justified relaxed atomics (progress counters cross
//! threads), and deterministic iteration on everything that reaches a
//! report, checkpoint, or BENCH artifact. This crate enforces them with an
//! in-house lexer ([`lexer`]) and a rule engine ([`rules`]) — no external
//! parser dependencies, consistent with the workspace's vendored-only
//! policy.
//!
//! Entry points:
//!
//! * [`lint_workspace`] — walk every workspace `.rs` file and run all
//!   rules (what `cargo lint` and `tests/lint_clean.rs` use),
//! * [`lint_paths`] — lint explicit files/directories (used to assert the
//!   seeded fixtures *do* fire),
//! * [`analyze_sources`] — pure in-memory analysis for unit tests.

#![forbid(unsafe_code)]

pub mod cache;
pub mod context;
pub mod diag;
pub mod lexer;
pub mod locks;
pub mod rules;
pub mod tree;

pub use context::FileCtx;
pub use diag::{render_json, render_json_with_stats, render_report, Finding};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Timing and cache counters for one lint run, reported in
/// `--format json` so CI can watch lint cost over time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Files analyzed.
    pub files: usize,
    /// Rules the engine ran (length of [`rules::RULE_IDS`]).
    pub rules: usize,
    /// Findings after suppression filtering.
    pub findings: usize,
    /// Milliseconds spent lexing (cache misses only).
    pub lex_ms: u128,
    /// Milliseconds spent in rule analysis.
    pub analyze_ms: u128,
    /// Token streams served from the on-disk cache.
    pub cache_hits: usize,
    /// Token streams lexed fresh (and cached when possible).
    pub cache_misses: usize,
}

/// Directories never linted: build output, vendored stand-ins, VCS
/// metadata, and the deliberately-violating rule fixtures.
const EXCLUDED_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Analyzes in-memory `(path, source)` pairs. Paths are only used for
/// scoping (crate detection, test classification) and diagnostics.
pub fn analyze_sources(files: &[(String, String)]) -> Vec<Finding> {
    let ctxs: Vec<FileCtx> = files.iter().map(|(p, src)| FileCtx::new(p, src)).collect();
    rules::run_all(&ctxs)
}

/// Lints every `.rs` file under `root` except [`EXCLUDED_DIRS`].
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(lint_workspace_with_stats(root)?.0)
}

/// [`lint_workspace`] plus run statistics.
pub fn lint_workspace_with_stats(root: &Path) -> io::Result<(Vec<Finding>, RunStats)> {
    let mut files = Vec::new();
    collect_rs_files(root, true, &mut files)?;
    files.sort();
    run(root, &files, rules::run_all)
}

/// Lints explicit `paths` (files or directories, recursive) relative to
/// `root`. Exclusions are *not* applied — this is how the seeded fixture
/// files are linted on purpose.
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> io::Result<Vec<Finding>> {
    Ok(lint_paths_with_stats(root, paths)?.0)
}

/// [`lint_paths`] plus run statistics.
pub fn lint_paths_with_stats(
    root: &Path,
    paths: &[PathBuf],
) -> io::Result<(Vec<Finding>, RunStats)> {
    let mut files = Vec::new();
    for p in paths {
        let abs = if p.is_absolute() {
            p.clone()
        } else {
            root.join(p)
        };
        if abs.is_dir() {
            collect_rs_files(&abs, false, &mut files)?;
        } else {
            files.push(abs);
        }
    }
    files.sort();
    run(root, &files, rules::run_all)
}

/// Runs the `--stale-allows` audit over the whole workspace: reports
/// every suppression annotation whose target line no longer produces the
/// finding it excuses.
pub fn stale_allows_workspace(root: &Path) -> io::Result<(Vec<Finding>, RunStats)> {
    let mut files = Vec::new();
    collect_rs_files(root, true, &mut files)?;
    files.sort();
    run(root, &files, rules::stale_allows)
}

/// Finds the workspace root by walking up from `start` to the first
/// directory holding a `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

fn collect_rs_files(dir: &Path, apply_exclusions: bool, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if apply_exclusions && (EXCLUDED_DIRS.contains(&name.as_ref()) || name.starts_with('.'))
            {
                continue;
            }
            collect_rs_files(&path, apply_exclusions, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads every file (token cache engaged when `<root>/target` exists),
/// builds contexts, and applies `analysis` with timing/cache counters.
fn run(
    root: &Path,
    files: &[PathBuf],
    analysis: fn(&[FileCtx]) -> Vec<Finding>,
) -> io::Result<(Vec<Finding>, RunStats)> {
    let cache_dir = cache::cache_dir(root);
    let mut stats = RunStats {
        rules: rules::RULE_IDS.len(),
        ..RunStats::default()
    };
    let mut ctxs = Vec::with_capacity(files.len());
    let mut lex_time = std::time::Duration::ZERO;
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(f)?;
        let key = cache_dir.as_deref().and_then(|_| cache::FileKey::of(f));
        let cached = match (&cache_dir, key) {
            (Some(dir), Some(k)) => cache::load(dir, &rel, k),
            _ => None,
        };
        let ctx = match cached {
            Some(tokens) => {
                stats.cache_hits += 1;
                FileCtx::from_tokens(&rel, &text, tokens)
            }
            None => {
                stats.cache_misses += 1;
                let t0 = Instant::now();
                let ctx = FileCtx::new(&rel, &text);
                lex_time += t0.elapsed();
                if let (Some(dir), Some(k)) = (&cache_dir, key) {
                    cache::store(dir, &rel, k, &ctx.tokens);
                }
                ctx
            }
        };
        ctxs.push(ctx);
    }
    stats.files = ctxs.len();
    stats.lex_ms = lex_time.as_millis();
    let t0 = Instant::now();
    let findings = analysis(&ctxs);
    stats.analyze_ms = t0.elapsed().as_millis();
    stats.findings = findings.len();
    Ok((findings, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(path: &str, src: &str) -> Vec<Finding> {
        analyze_sources(&[(path.to_string(), src.to_string())])
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // ---- R1 hot-panic -------------------------------------------------

    #[test]
    fn hot_panic_fires_in_hot_crate_non_test() {
        let f = findings_for(
            "crates/core/src/x.rs",
            "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n",
        );
        assert_eq!(rules_of(&f), vec!["hot-panic"]);
        assert_eq!((f[0].line, f[0].col), (1, 31));
    }

    #[test]
    fn hot_panic_covers_expect_panic_and_literal_index() {
        let src = "fn f(v: &[u8]) -> u8 {\n    let a = v[0];\n    panic!(\"boom\");\n}\n";
        let f = findings_for("crates/engine/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["hot-panic", "hot-panic"]);
    }

    #[test]
    fn hot_panic_ignores_tests_and_cold_crates() {
        let in_test = "#[cfg(test)]\nmod tests {\n    fn f(o: Option<u8>) { o.unwrap(); }\n}\n";
        assert!(findings_for("crates/core/src/x.rs", in_test).is_empty());
        let cold = "fn f(o: Option<u8>) { o.unwrap(); }\n";
        assert!(findings_for("crates/synth/src/x.rs", cold).is_empty());
        assert!(findings_for("tests/x.rs", cold).is_empty());
    }

    #[test]
    fn hot_panic_ignores_failpoint_items() {
        let src = "#[cfg(feature = \"failpoints\")]\nfn inject() {\n    panic!(\"boom\");\n}\n";
        assert!(findings_for("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn hot_panic_suppression_with_reason() {
        let src = "fn f(v: &[u8; 4]) -> u8 {\n    // lint:allow(hot-panic): fixed-size array, index in bounds\n    v[0]\n}\n";
        assert!(findings_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hot_panic_not_fooled_by_strings_or_comments() {
        let src = "fn f() {\n    // calls .unwrap() somewhere\n    let s = \"x.unwrap()\";\n    let _ = s;\n}\n";
        assert!(findings_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap_or(0) }\n";
        assert!(findings_for("crates/core/src/x.rs", src).is_empty());
    }

    // ---- R2 float-eq --------------------------------------------------

    #[test]
    fn float_eq_fires_on_literal_comparison() {
        let f = findings_for(
            "crates/eval/src/x.rs",
            "fn f(x: f64) -> bool { x == 1.0 }\n",
        );
        assert_eq!(rules_of(&f), vec!["float-eq"]);
        let f = findings_for("tests/x.rs", "fn f(x: f64) -> bool { 0.5 != x }\n");
        assert_eq!(rules_of(&f), vec!["float-eq"]);
    }

    #[test]
    fn float_eq_ignores_int_comparison_and_strings() {
        assert!(
            findings_for("crates/eval/src/x.rs", "fn f(x: u8) -> bool { x == 1 }\n").is_empty()
        );
        assert!(findings_for(
            "crates/eval/src/x.rs",
            "fn f() -> &'static str { \"x == 1.0\" }\n"
        )
        .is_empty());
    }

    #[test]
    fn float_eq_suppressible() {
        let src = "fn f(x: f64) -> bool {\n    // lint:allow(float-eq): sentinel assigned verbatim, never computed\n    x == -1.0\n}\n";
        assert!(findings_for("crates/eval/src/x.rs", src).is_empty());
    }

    // ---- R3 nan-ord ---------------------------------------------------

    #[test]
    fn nan_ord_fires_on_partial_cmp_unwrap() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let f = findings_for("crates/eval/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["nan-ord"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn nan_ord_fires_on_unwrap_or_equal_comparator() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n}\n";
        let f = findings_for("crates/eval/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["nan-ord"]);
    }

    #[test]
    fn nan_ord_accepts_total_cmp() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n";
        assert!(findings_for("crates/eval/src/x.rs", src).is_empty());
    }

    // ---- R4 relaxed-atomic --------------------------------------------

    #[test]
    fn relaxed_fires_without_justification() {
        let src =
            "fn f(c: &std::sync::atomic::AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        let f = findings_for("crates/engine/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["relaxed-atomic"]);
    }

    #[test]
    fn relaxed_ok_same_line_and_above() {
        let same =
            "fn f(c: &A) { c.fetch_add(1, Ordering::Relaxed); } // relaxed-ok: monotone counter\n";
        assert!(findings_for("crates/engine/src/x.rs", same).is_empty());
        let above = "fn f(c: &A) {\n    // relaxed-ok: stats counter, no ordering dependency\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(findings_for("crates/engine/src/x.rs", above).is_empty());
    }

    #[test]
    fn relaxed_ok_requires_a_reason() {
        let src = "fn f(c: &A) {\n    // relaxed-ok:\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        let f = findings_for("crates/engine/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["relaxed-atomic"]);
    }

    // ---- R5 nondet-iter -----------------------------------------------

    #[test]
    fn nondet_iter_fires_on_serialization_surface() {
        let src = "use std::collections::HashMap;\n";
        let f = findings_for("crates/engine/src/report.rs", src);
        assert_eq!(rules_of(&f), vec!["nondet-iter"]);
        let f = findings_for("crates/bench/src/bin/fig_x.rs", src);
        assert_eq!(rules_of(&f), vec!["nondet-iter"]);
    }

    #[test]
    fn nondet_iter_silent_elsewhere() {
        let src = "use std::collections::HashMap;\n";
        assert!(findings_for("crates/engine/src/engine.rs", src).is_empty());
    }

    // ---- R6 no-sleep --------------------------------------------------

    #[test]
    fn no_sleep_fires_in_prod_code() {
        let src = "fn f() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n";
        let f = findings_for("crates/engine/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["no-sleep"]);
    }

    #[test]
    fn no_sleep_exempts_tests_benches_failpoints() {
        let src = "fn f() { std::thread::sleep(d()); }\n";
        assert!(findings_for("tests/x.rs", src).is_empty());
        assert!(findings_for("crates/bench/benches/x.rs", src).is_empty());
        assert!(findings_for("crates/engine/src/failpoints.rs", src).is_empty());
        let gated = "#[cfg(feature = \"failpoints\")]\nfn f() { std::thread::sleep(d()); }\n";
        assert!(findings_for("crates/engine/src/x.rs", gated).is_empty());
    }

    #[test]
    fn no_sleep_suppressible_with_reason() {
        let src = "fn f() {\n    // lint:allow(no-sleep): watchdog poll cadence, config-bounded\n    std::thread::sleep(poll);\n}\n";
        assert!(findings_for("crates/engine/src/x.rs", src).is_empty());
    }

    // ---- R7 lossy-cast ------------------------------------------------

    #[test]
    fn lossy_cast_fires_in_scoped_files_only() {
        let src = "fn f(n: u64) -> f64 { n as f64 }\n";
        let f = findings_for("crates/core/src/ecf.rs", src);
        assert_eq!(rules_of(&f), vec!["lossy-cast"]);
        assert!(findings_for("crates/core/src/config.rs", src).is_empty());
    }

    #[test]
    fn lossy_cast_ignores_non_numeric_as() {
        let src = "use std::fmt::Debug as D;\nfn f(x: &dyn D) -> &dyn D { x }\n";
        assert!(findings_for("crates/core/src/ecf.rs", src).is_empty());
    }

    #[test]
    fn lossy_cast_suppressible_with_range_proof() {
        let src = "fn f(dt: u64) -> f64 {\n    // lint:allow(lossy-cast): tick deltas < 2^53, exact in f64\n    dt as f64\n}\n";
        assert!(findings_for("crates/core/src/ecf.rs", src).is_empty());
    }

    // ---- R8 missing-docs ----------------------------------------------

    #[test]
    fn missing_docs_fires_on_undocumented_pub() {
        let f = findings_for("crates/core/src/x.rs", "pub fn frob() {}\n");
        assert_eq!(rules_of(&f), vec!["missing-docs"]);
        assert!(f[0].message.contains("frob"));
    }

    #[test]
    fn missing_docs_accepts_doc_comment_and_attrs_between() {
        let src = "/// Frobnicates.\n#[inline]\npub fn frob() {}\n";
        assert!(findings_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn missing_docs_skips_restricted_visibility_and_cold_crates() {
        assert!(findings_for("crates/core/src/x.rs", "pub(crate) fn f() {}\n").is_empty());
        assert!(findings_for("crates/eval/src/x.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn missing_docs_mod_satisfied_by_inner_docs() {
        let files = [
            (
                "crates/core/src/lib.rs".to_string(),
                "//! Crate docs.\npub mod ecf;\npub mod bare;\n".to_string(),
            ),
            (
                "crates/core/src/ecf.rs".to_string(),
                "//! Module docs.\n".to_string(),
            ),
            (
                "crates/core/src/bare.rs".to_string(),
                "fn private() {}\n".to_string(),
            ),
        ];
        let f = analyze_sources(&files);
        assert_eq!(rules_of(&f), vec!["missing-docs"]);
        assert!(f[0].message.contains("bare"));
    }

    // ---- S0 suppression hygiene ---------------------------------------

    #[test]
    fn reasonless_suppression_is_reported_and_inert() {
        let src = "fn f(o: Option<u8>) {\n    // lint:allow(hot-panic)\n    o.unwrap();\n}\n";
        let f = findings_for("crates/core/src/x.rs", src);
        let mut rules = rules_of(&f);
        rules.sort_unstable();
        assert_eq!(rules, vec!["hot-panic", "suppression"]);
    }

    #[test]
    fn unknown_rule_id_is_reported() {
        let src = "// lint:allow(no-such-rule): because\nfn f() {}\n";
        let f = findings_for("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["suppression"]);
    }

    // ---- output ordering ----------------------------------------------

    #[test]
    fn findings_are_sorted_and_deterministic() {
        let files = [
            (
                "crates/core/src/b.rs".to_string(),
                "pub fn undoc() {}\n".to_string(),
            ),
            (
                "crates/core/src/a.rs".to_string(),
                "fn f(o: Option<u8>) { o.unwrap(); }\n".to_string(),
            ),
        ];
        let f = analyze_sources(&files);
        let paths: Vec<_> = f.iter().map(|x| x.path.as_str()).collect();
        assert_eq!(paths, vec!["crates/core/src/a.rs", "crates/core/src/b.rs"]);
        assert_eq!(analyze_sources(&files), f);
    }
}
