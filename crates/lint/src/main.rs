//! `ustream-lint` binary — `cargo lint` via the alias in
//! `.cargo/config.toml`.
//!
//! ```text
//! ustream-lint [--format text|json] [--root <dir>] [paths...]
//! ```
//!
//! With no paths, lints every workspace `.rs` file (excluding `target/`,
//! `vendor/`, and the deliberately-violating rule fixtures). With explicit
//! paths, lints exactly those — which is how CI asserts the seeded
//! fixtures still fire. Exits 0 when clean, 1 on any finding, 2 on usage
//! or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use ustream_lint::{find_workspace_root, lint_paths, lint_workspace, render_json, render_report};

fn main() -> ExitCode {
    let mut format_json = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!("ustream-lint: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("ustream-lint: --root expects a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: ustream-lint [--format text|json] [--root <dir>] [paths...]");
                return ExitCode::SUCCESS;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let root = root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    });
    let Some(root) = root else {
        eprintln!("ustream-lint: could not locate the workspace root (use --root)");
        return ExitCode::from(2);
    };

    let result = if paths.is_empty() {
        lint_workspace(&root)
    } else {
        lint_paths(&root, &paths)
    };
    let findings = match result {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ustream-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if format_json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_report(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
