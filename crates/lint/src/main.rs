//! `ustream-lint` binary — `cargo lint` via the alias in
//! `.cargo/config.toml`.
//!
//! ```text
//! ustream-lint [--format text|json] [--root <dir>] [--stale-allows] [paths...]
//! ```
//!
//! With no paths, lints every workspace `.rs` file (excluding `target/`,
//! `vendor/`, and the deliberately-violating rule fixtures). With explicit
//! paths, lints exactly those — which is how CI asserts the seeded
//! fixtures still fire. `--stale-allows` instead audits suppression
//! annotations: any `lint:allow` / `relaxed-ok` whose target line no
//! longer produces the finding it excuses is reported (dead exemptions
//! rot into false confidence). Exits 0 when clean, 1 on any finding, 2 on
//! usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use ustream_lint::{
    find_workspace_root, lint_paths_with_stats, lint_workspace_with_stats, render_json_with_stats,
    render_report, stale_allows_workspace,
};

fn main() -> ExitCode {
    let mut format_json = false;
    let mut stale_mode = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!("ustream-lint: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("ustream-lint: --root expects a directory");
                    return ExitCode::from(2);
                }
            },
            "--stale-allows" => stale_mode = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: ustream-lint [--format text|json] [--root <dir>] \
                     [--stale-allows] [paths...]"
                );
                return ExitCode::SUCCESS;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let root = root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    });
    let Some(root) = root else {
        eprintln!("ustream-lint: could not locate the workspace root (use --root)");
        return ExitCode::from(2);
    };

    let result = if stale_mode {
        if paths.is_empty() {
            stale_allows_workspace(&root)
        } else {
            eprintln!("ustream-lint: --stale-allows audits the whole workspace; drop the paths");
            return ExitCode::from(2);
        }
    } else if paths.is_empty() {
        lint_workspace_with_stats(&root)
    } else {
        lint_paths_with_stats(&root, &paths)
    };
    let (findings, stats) = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ustream-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if format_json {
        print!("{}", render_json_with_stats(&findings, &stats));
    } else {
        print!("{}", render_report(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
