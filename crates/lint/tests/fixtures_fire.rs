//! Seeded-fixture tests: every rule must fire on its deliberately
//! violating fixture at the expected location, and every well-formed
//! suppression in the fixtures must hold.
//!
//! The fixture tree under `tests/fixtures/` mirrors workspace paths
//! (`crates/<name>/src/<file>.rs`) so the path-based rule scoping applies
//! to it exactly as it does to real sources. The workspace walker skips
//! any directory named `fixtures`, so these files never pollute
//! `cargo lint` on the repo itself.

use std::path::{Path, PathBuf};
use std::process::Command;

use ustream_lint::{lint_workspace, Finding};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_findings() -> Vec<Finding> {
    // `lint_workspace` rooted *at* the fixture tree: the `fixtures`
    // exclusion only applies to subdirectory names, never the root.
    lint_workspace(&fixtures_root()).expect("fixture tree lints")
}

/// Asserts exactly the expected `(line, rule)` pairs fire in `file`.
fn assert_file_findings(findings: &[Finding], file: &str, expected: &[(u32, &str)]) {
    let got: Vec<(u32, &str)> = findings
        .iter()
        .filter(|f| f.path.ends_with(file))
        .map(|f| (f.line, f.rule))
        .collect();
    assert_eq!(got, expected, "findings for {file}");
}

#[test]
fn hot_panic_fixture_fires_and_suppression_holds() {
    let f = fixture_findings();
    assert_file_findings(
        &f,
        "crates/core/src/hot_panic.rs",
        &[
            (4, "hot-panic"),
            (8, "hot-panic"),
            (12, "hot-panic"),
            (16, "hot-panic"),
        ],
    );
}

#[test]
fn float_eq_fixture_fires_and_suppression_holds() {
    let f = fixture_findings();
    assert_file_findings(
        &f,
        "crates/eval/src/float_eq.rs",
        &[(4, "float-eq"), (8, "float-eq")],
    );
}

#[test]
fn nan_ord_fixture_fires_and_suppression_holds() {
    let f = fixture_findings();
    assert_file_findings(
        &f,
        "crates/eval/src/nan_ord.rs",
        &[(4, "nan-ord"), (8, "nan-ord")],
    );
}

#[test]
fn relaxed_atomic_fixture_fires_and_justifications_hold() {
    let f = fixture_findings();
    assert_file_findings(&f, "crates/engine/src/relaxed.rs", &[(6, "relaxed-atomic")]);
}

#[test]
fn nondet_iter_fixture_fires_and_suppression_holds() {
    let f = fixture_findings();
    assert_file_findings(
        &f,
        "crates/engine/src/report.rs",
        &[(4, "nondet-iter"), (10, "nondet-iter")],
    );
}

#[test]
fn no_sleep_fixture_fires_and_suppression_holds() {
    let f = fixture_findings();
    assert_file_findings(&f, "crates/engine/src/no_sleep.rs", &[(4, "no-sleep")]);
}

#[test]
fn lossy_cast_fixture_fires_and_suppression_holds() {
    let f = fixture_findings();
    assert_file_findings(&f, "crates/core/src/ecf.rs", &[(4, "lossy-cast")]);
}

#[test]
fn missing_docs_fixture_fires_on_undocumented_only() {
    let f = fixture_findings();
    assert_file_findings(
        &f,
        "crates/core/src/missing_docs.rs",
        &[(3, "missing-docs")],
    );
}

#[test]
fn blocking_io_fixture_fires_outside_the_funnel_only() {
    let f = fixture_findings();
    assert_file_findings(
        &f,
        "crates/serve/src/blocking_io.rs",
        &[(5, "blocking-io"), (6, "blocking-io"), (11, "blocking-io")],
    );
    // The deadline-wrapped funnel itself is exempt.
    assert_file_findings(&f, "crates/serve/src/io.rs", &[]);
}

#[test]
fn net_funnel_fixture_fires_outside_the_funnels_only() {
    let f = fixture_findings();
    // Raw reads/writes/peeks plus the blocking family, all in distrib;
    // the suppressed site and the `#[cfg(test)]` block stay quiet.
    assert_file_findings(
        &f,
        "crates/distrib/src/net_funnel.rs",
        &[
            (5, "net-funnel"),
            (6, "net-funnel"),
            (7, "net-funnel"),
            (12, "net-funnel"),
        ],
    );
    // A bare peek in serve is net-funnel's beat, not blocking-io's.
    assert_file_findings(&f, "crates/serve/src/net_funnel.rs", &[(7, "net-funnel")]);
    // The distrib funnel itself is exempt from both socket rules.
    assert_file_findings(&f, "crates/distrib/src/io.rs", &[]);
    // Without a TcpStream in the file, `.read(..)` is out of scope.
    assert_file_findings(&f, "crates/distrib/src/codec.rs", &[]);
}

#[test]
fn wal_funnel_fixture_fires_outside_the_funnel_only() {
    let f = fixture_findings();
    // OpenOptions, fsyncs, truncation, and the path-call family, all in
    // distrib outside wal.rs; the suppressed site and the `#[cfg(test)]`
    // block stay quiet.
    assert_file_findings(
        &f,
        "crates/distrib/src/wal_rogue.rs",
        &[
            (4, "wal-funnel"),
            (8, "wal-funnel"),
            (9, "wal-funnel"),
            (13, "wal-funnel"),
            (17, "wal-funnel"),
            (18, "wal-funnel"),
            (19, "wal-funnel"),
            (20, "wal-funnel"),
        ],
    );
    // The durability funnel itself is exempt by path.
    assert_file_findings(&f, "crates/distrib/src/wal.rs", &[]);
}

#[test]
fn safety_comment_fixture_fires_on_bare_and_rogue_unsafe() {
    let f = fixture_findings();
    // Sanctioned module: justified sites pass (including through an
    // attribute line), the bare block fires.
    assert_file_findings(
        &f,
        "crates/core/src/kernel/simd.rs",
        &[(16, "safety-comment")],
    );
    // Outside the sanctioned module the SAFETY comment does not help.
    assert_file_findings(
        &f,
        "crates/engine/src/unsafe_rogue.rs",
        &[(6, "safety-comment")],
    );
}

#[test]
fn lock_order_fixture_fires_with_cross_file_witness() {
    let f = fixture_findings();
    // The cycle is reported once, at the inner acquisition of its
    // alphabetically-first edge; the witness names both files.
    assert_file_findings(
        &f,
        "crates/distrib/src/lock_cycle_a.rs",
        &[(8, "lock-order")],
    );
    assert_file_findings(&f, "crates/distrib/src/lock_cycle_b.rs", &[]);
    let cycle = f
        .iter()
        .find(|x| x.rule == "lock-order")
        .expect("cycle finding");
    assert!(cycle.message.contains("distrib::alpha"));
    assert!(cycle
        .message
        .contains("crates/distrib/src/lock_cycle_b.rs:7"));
}

#[test]
fn blocking_under_lock_fixture_fires_direct_and_via_calls() {
    let f = fixture_findings();
    // Direct fsync, an interprocedural reach, and an `if let` temporary
    // guard all fire; the reasoned suppression and the dropped-guard
    // control stay quiet.
    assert_file_findings(
        &f,
        "crates/serve/src/lock_blocking.rs",
        &[
            (9, "blocking-under-lock"),
            (16, "blocking-under-lock"),
            (27, "blocking-under-lock"),
        ],
    );
    let via = f
        .iter()
        .find(|x| x.line == 16 && x.rule == "blocking-under-lock")
        .expect("interprocedural finding");
    assert!(via.message.contains("flush_inner"));
    assert!(via.message.contains("lock_blocking.rs:21"));
}

#[test]
fn suppression_hygiene_fixture_reports_malformed_allows() {
    let f = fixture_findings();
    assert_file_findings(
        &f,
        "crates/core/src/suppression.rs",
        &[(4, "suppression"), (5, "hot-panic"), (9, "suppression")],
    );
}

#[test]
fn every_rule_id_fires_somewhere_in_the_fixture_tree() {
    let f = fixture_findings();
    for rule in ustream_lint::rules::RULE_IDS {
        assert!(
            f.iter().any(|x| x.rule == *rule),
            "rule {rule} has no firing fixture"
        );
    }
}

#[test]
fn binary_exits_nonzero_on_fixtures_with_json_report() {
    let out = Command::new(env!("CARGO_BIN_EXE_ustream-lint"))
        .args(["--format", "json", "--root"])
        .arg(fixtures_root())
        .output()
        .expect("ustream-lint runs");
    assert_eq!(out.status.code(), Some(1), "fixtures must fail the lint");
    let stdout = String::from_utf8(out.stdout).expect("json output is utf-8");
    assert!(stdout.contains("\"findings\""), "json envelope: {stdout}");
    assert!(stdout.contains("hot-panic"), "rule ids present: {stdout}");
}
