// nan-ord fixture: NaN-unsound float ordering.

fn bad_sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn bad_min(v: &[f64]) -> Option<&f64> {
    v.iter().min_by(|a, b| a.partial_cmp(b).expect("no NaN"))
}

fn good_sort(v: &mut [f64]) {
    v.sort_unstable_by(f64::total_cmp);
}

fn suppressed(v: &mut [f64]) {
    // lint:allow(nan-ord): inputs validated finite at construction
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
