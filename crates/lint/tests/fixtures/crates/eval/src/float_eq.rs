// float-eq fixture: exact float comparisons.

fn bad_eq(x: f64) -> bool {
    x == 1.0
}

fn bad_ne(x: f64) -> bool {
    0.5 != x
}

fn suppressed(x: f64) -> bool {
    // lint:allow(float-eq): sentinel value assigned verbatim, never computed
    x == -1.0
}
