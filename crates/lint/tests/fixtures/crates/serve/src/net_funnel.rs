// net-funnel fixture: a bare socket peek in serve, outside the funnel.
// (`blocking-io` only knows the named blocking helpers — this is the gap
// `net-funnel` closes.)

fn probe(stream: &mut std::net::TcpStream) {
    let mut buf = [0u8; 1];
    stream.peek(&mut buf).ok();
}
