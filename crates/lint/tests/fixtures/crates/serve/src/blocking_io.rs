// blocking-io fixture: raw blocking socket I/O outside the deadline funnel.

fn bad_read(stream: &mut std::net::TcpStream) {
    let mut buf = [0u8; 4];
    stream.read_exact(&mut buf).ok();
    stream.write_all(&buf).ok();
}

fn bad_drain(stream: &mut std::net::TcpStream) {
    let mut all = Vec::new();
    stream.read_to_end(&mut all).ok();
}

fn suppressed(stream: &mut std::net::TcpStream) {
    // lint:allow(blocking-io): caller armed a write timeout two frames up
    stream.write_all(b"x").ok();
}

#[cfg(test)]
mod tests {
    fn in_tests_is_fine(stream: &mut std::net::TcpStream) {
        stream.write_all(b"x").ok();
    }
}
