//! Fixture: blocking calls while a guard is live — direct,
//! interprocedural, and through an `if let` temporary — plus a
//! reasoned suppression and a guard-dropped-clean control.

impl Store {
    /// Direct: fsync while `state` is held.
    pub fn persist_direct(&self) {
        let g = self.state.lock();
        self.file.sync_all();
        drop(g);
    }

    /// Interprocedural: the callee reaches the fsync.
    pub fn persist_via(&self) {
        let g = self.state.lock();
        self.flush_inner();
        drop(g);
    }

    fn flush_inner(&self) {
        self.file.sync_all();
    }

    /// Temporary guard: live through the attached block.
    pub fn swap_wal(&self) {
        if let Some(w) = self.wal.lock().as_mut() {
            w.sync_data();
        }
    }

    /// Suppressed: the exemption carries its reason.
    pub fn persist_allowed(&self) {
        let g = self.state.lock();
        // lint:allow(blocking-under-lock): fixture — fsync-in-commit is the documented exception
        self.file.sync_all();
        drop(g);
    }

    /// Clean: the guard is dropped before the fsync.
    pub fn persist_clean(&self) {
        let g = self.state.lock();
        drop(g);
        self.file.sync_all();
    }
}
