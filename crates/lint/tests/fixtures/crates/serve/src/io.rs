//! blocking-io funnel fixture: `io.rs` itself is the sanctioned site —
//! it arms socket timeouts before every blocking call, so the rule must
//! not fire here.

fn funnel(stream: &mut std::net::TcpStream) {
    let mut buf = [0u8; 4];
    stream.read_exact(&mut buf).ok();
    stream.write_all(&buf).ok();
}
