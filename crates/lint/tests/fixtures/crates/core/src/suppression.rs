// suppression-hygiene fixture: malformed allows are findings themselves.

fn reasonless(o: Option<u8>) {
    // lint:allow(hot-panic)
    o.unwrap();
}

fn unknown_rule() {
    // lint:allow(no-such-rule): reason text is present but the id is not
    let _ = 1;
}
