// lossy-cast fixture: bare numeric casts in ECF arithmetic files.

fn bad(n: u64) -> f64 {
    n as f64
}

fn suppressed(dt: u64) -> f64 {
    // lint:allow(lossy-cast): tick deltas are far below 2^53, exact in f64
    dt as f64
}
