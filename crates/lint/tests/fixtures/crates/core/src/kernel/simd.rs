// safety-comment fixture: inside the sanctioned module, every `unsafe`
// must still carry a `// SAFETY:` justification.

fn justified() -> i32 {
    // SAFETY: the dispatch guard verified the CPU feature before this call.
    unsafe { helper() }
}

// SAFETY: caller must ensure the relevant CPU feature is available.
#[inline]
unsafe fn helper() -> i32 {
    7
}

fn bare() -> i32 {
    unsafe { helper() }
}
