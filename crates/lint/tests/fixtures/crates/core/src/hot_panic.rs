// hot-panic fixture: panic sites in non-test code of a hot crate.

fn unwrap_site(o: Option<u8>) -> u8 {
    o.unwrap()
}

fn expect_site(r: Result<u8, ()>) -> u8 {
    r.expect("boom")
}

fn panic_site() {
    panic!("unreachable by construction");
}

fn index_site(v: &[u8]) -> u8 {
    v[0]
}

fn suppressed_site(v: &[u8; 4]) -> u8 {
    // lint:allow(hot-panic): fixed-size array, index statically in bounds
    v[0]
}
