// missing-docs fixture: undocumented public API in a doc-scoped crate.

pub fn undocumented() {}

/// Documented: no finding.
pub fn documented() {}

pub(crate) fn restricted_visibility_is_exempt() {}
