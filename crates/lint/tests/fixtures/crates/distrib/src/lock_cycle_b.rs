//! Fixture: backward half of a two-file lock-order cycle — takes
//! `beta` then `alpha`, inverting `lock_cycle_a.rs`.

/// Inverted order: beta before alpha. Deadlocks against `forward`.
pub fn backward(s: &State) {
    let b = s.beta.lock();
    let _a = s.alpha.lock();
    drop(b);
}
