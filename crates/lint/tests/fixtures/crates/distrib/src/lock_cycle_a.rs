//! Fixture: forward half of a two-file lock-order cycle. This file
//! takes `alpha` then `beta`; `lock_cycle_b.rs` takes them in the
//! opposite order, closing the cycle across files.

/// Documented order: alpha before beta.
pub fn forward(s: &State) {
    let a = s.alpha.lock();
    let _b = s.beta.lock();
    drop(a);
}
