// wal-funnel fixture: durable-file plumbing in distrib outside wal.rs.

fn bad_open(path: &str) {
    let _f = std::fs::OpenOptions::new().append(true).open(path).ok();
}

fn bad_fsync(file: &std::fs::File) {
    file.sync_data().ok();
    file.sync_all().ok();
}

fn bad_truncate(file: &std::fs::File) {
    file.set_len(0).ok();
}

fn bad_paths(path: &str) {
    let _ = std::fs::File::create(path);
    let _ = std::fs::write(path, b"x");
    let _ = std::fs::rename(path, "other");
    let _ = std::fs::remove_file(path);
}

fn suppressed(file: &std::fs::File) {
    // lint:allow(wal-funnel): read-only probe, no durability ordering at stake
    file.sync_data().ok();
}

#[cfg(test)]
mod tests {
    fn in_tests_is_fine(path: &str) {
        let _ = std::fs::remove_file(path);
    }
}
