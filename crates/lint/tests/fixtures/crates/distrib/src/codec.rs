// net-funnel gate fixture: no socket type in sight, so a `.read(..)` on
// a plain byte reader is out of scope and must not fire.

fn drain(reader: &mut impl std::io::Read) {
    let mut buf = [0u8; 4];
    reader.read(&mut buf).ok();
}
