// The durability funnel itself: exempt from wal-funnel by path.

fn funnel_append(file: &std::fs::File) {
    file.sync_data().ok();
    file.set_len(0).ok();
    let _ = std::fs::OpenOptions::new();
}
