//! net-funnel fixture: `distrib/src/io.rs` is a sanctioned funnel — it
//! arms socket timeouts before every call, so neither `net-funnel` nor
//! `blocking-io` may fire here.

fn funnel(stream: &mut std::net::TcpStream) {
    let mut buf = [0u8; 4];
    stream.read(&mut buf).ok();
    stream.write(&buf).ok();
    stream.read_exact(&mut buf).ok();
}
