// net-funnel fixture: raw socket I/O in the distrib crate outside the funnel.

fn bad_raw(stream: &mut std::net::TcpStream) {
    let mut buf = [0u8; 4];
    stream.read(&mut buf).ok();
    stream.write(&buf).ok();
    stream.peek(&mut buf).ok();
}

fn bad_blocking(stream: &mut std::net::TcpStream) {
    let mut buf = [0u8; 4];
    stream.read_exact(&mut buf).ok();
}

fn suppressed(stream: &mut std::net::TcpStream) {
    // lint:allow(net-funnel): probe socket armed a read timeout one line up
    stream.read(&mut [0u8; 1]).ok();
}

#[cfg(test)]
mod tests {
    fn in_tests_is_fine(stream: &mut std::net::TcpStream) {
        stream.write(b"x").ok();
    }
}
