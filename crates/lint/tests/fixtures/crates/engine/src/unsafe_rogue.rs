// safety-comment fixture: `unsafe` outside the sanctioned kernel::simd
// module fires even when a SAFETY comment is present.

fn rogue(p: *const u8) -> u8 {
    // SAFETY: non-null by construction — irrelevant, wrong module.
    unsafe { *p }
}
