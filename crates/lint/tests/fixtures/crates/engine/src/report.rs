// nondet-iter fixture: hash iteration on a serialization surface.

use std::collections::BTreeMap;
use std::collections::HashMap;

fn ordered(xs: &[(u64, f64)]) -> BTreeMap<u64, f64> {
    xs.iter().copied().collect()
}

fn bad(xs: &[(u64, f64)]) -> HashMap<u64, f64> {
    xs.iter().copied().collect()
}

// lint:allow(nondet-iter): keys are re-sorted before serialization
fn suppressed_use(m: &HashMap<u64, f64>) -> usize {
    m.len()
}
