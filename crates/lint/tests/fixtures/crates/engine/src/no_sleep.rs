// no-sleep fixture: blocking sleep outside tests/benches/failpoints.

fn bad() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}

fn suppressed() {
    // lint:allow(no-sleep): watchdog poll cadence, bounded by config
    std::thread::sleep(std::time::Duration::from_millis(5));
}
