// relaxed-atomic fixture: Relaxed ordering without justification.

use std::sync::atomic::{AtomicU64, Ordering};

fn bad(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

fn justified(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone stats counter, readers tolerate lag
}

fn justified_above(c: &AtomicU64) -> u64 {
    // relaxed-ok: snapshot read of a stats counter, staleness is fine
    c.load(Ordering::Relaxed)
}
