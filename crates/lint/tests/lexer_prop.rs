//! Property tests for the lint tokenizer: `lex` must terminate without
//! panicking on *any* input, because the linter walks every source file in
//! the workspace — including half-written code mid-edit — and a lexer
//! panic would take the whole `cargo lint` run down with it.
//!
//! Three generators stress different failure modes:
//!
//! 1. Arbitrary Unicode text: raw coverage of the dispatch loop.
//! 2. Rust-ish fragments biased toward lexer state machines (string
//!    prefixes, hash runs, comment openers, escapes) glued together at
//!    random — this is where unterminated-construct bugs live.
//! 3. Random truncation of a valid-ish source, cutting strings and
//!    comments mid-token at every char boundary.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use ustream_lint::lexer::lex;

/// Fragments chosen to open (and sometimes not close) every lexer state:
/// raw strings with varying hash counts, block-comment nesting, escapes,
/// tuple-field position, lifetimes vs chars.
const FRAGMENTS: &[&str] = &[
    "r#\"",
    "r##\"x\"#",
    "br###\"",
    "b\"\\\"",
    "\"\\\\\"",
    "/*",
    "/* /*",
    "*/",
    "// line",
    "'a",
    "'\\n'",
    "p.0.1",
    "1.0e-9",
    "0xff_u32",
    "#",
    "\"",
    "\\",
    "fn f() {",
    "}",
    "ident",
    " ",
    "\n",
];

fn arb_fragment() -> impl Strategy<Value = &'static str> {
    (0usize..FRAGMENTS.len()).prop_map(|i| FRAGMENTS[i])
}

/// Arbitrary Unicode text (surrogate code points filtered out).
fn arb_text(max_len: usize) -> impl Strategy<Value = String> {
    pvec(0u32..0x110000, 0..max_len)
        .prop_map(|cps| cps.into_iter().filter_map(char::from_u32).collect())
}

proptest! {
    #[test]
    fn lex_never_panics_on_arbitrary_text(src in arb_text(64)) {
        let _ = lex(&src);
    }

    #[test]
    fn lex_never_panics_on_hostile_fragments(
        parts in pvec(arb_fragment(), 0..24),
    ) {
        let src = parts.join(" ");
        let _ = lex(&src);
        // Also glue them with no separator, so fragments merge into new
        // token shapes (`r` + `#` + `"` across fragment boundaries).
        let fused: String = parts.concat();
        let _ = lex(&fused);
    }

    #[test]
    fn lex_never_panics_on_truncation(
        cut in 0usize..200,
        tail in arb_text(8),
    ) {
        let base = "fn f() { let s = r##\"raw \"# text\"##; /* a /* b */ c */ \
                    let b = b\"\\x00\\\"\"; let l: &'static str = \"x\"; } ";
        let mut src: String = base.chars().take(cut).collect();
        src.push_str(&tail);
        let toks = lex(&src);
        // Termination plus a sanity bound: tokens cannot outnumber chars.
        prop_assert!(toks.len() <= src.chars().count().max(1));
    }
}
