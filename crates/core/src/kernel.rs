//! Struct-of-arrays distance kernel over the live micro-cluster set.
//!
//! The paper's Lemma 2.2 keeps expected-distance evaluation `O(d)`, but the
//! naive implementation re-derives per-cluster constants from the ECF on
//! every point: `CF1_j/W` (a division per dimension), `EF2_j/W²` (another),
//! and `Σ_j CF1_j²/W² + Σ_j EF2_j/W²` (Lemma 2.1) — all of which change only
//! when *that cluster* changes. [`ClusterKernel`] caches them in packed
//! row-major matrices so the per-point work collapses to fused multiply-adds
//! over contiguous memory:
//!
//! ```text
//! E[‖X − Z_i‖²] = (Σ_j x_j² + ψ_j²)  +  self_moment_i  −  2 · x · c_i
//!                 └── once per point ──┘  └───── cached per cluster ─────┘
//! ```
//!
//! so ranking a point against all `k` clusters costs one dot product per
//! cluster — no divisions, no branches, and memory the autovectorizer can
//! stream. The same layout serves the deterministic CluStream distance
//! (`noise ≡ 0`) and the dimension-counting similarity (the cached
//! `EF2_j/W²` row replaces the per-dimension division).
//!
//! ## Invariant maintenance
//!
//! The kernel mirrors an owner's cluster list index-for-index. Owners call
//! [`ClusterKernel::push`] / [`ClusterKernel::refresh`] /
//! [`ClusterKernel::swap_remove`] at every mutation (insert, merge, retire),
//! or [`ClusterKernel::rebuild`] after bulk edits. Every mutation bumps a
//! generation counter; owners that hand out raw mutable access to their
//! clusters mark the kernel stale and rebuild before the next ranking, so a
//! stale row can never be consulted.

use crate::distance::sanitize_sq;
use crate::ecf::Ecf;

/// Explicit SIMD backends (portable lanes, AVX2, AVX-512, NEON) behind
/// one runtime-dispatch point; every ranking sweep and dot product in
/// this module routes through it. See the module docs for the backend
/// matrix and the canonical reduction contract that keeps all backends
/// bitwise identical.
pub mod simd;

/// A summary that can publish a kernel row: its centroid, its per-dimension
/// centroid-noise term (`EF2_j/W²`; zero for deterministic summaries) and
/// its two boundary radii.
pub trait KernelRow {
    /// Writes the centroid and noise rows. Both slices have length `d`.
    fn write_row(&self, centroid: &mut [f64], noise: &mut [f64]);

    /// `(uncertain_radius, corrected_radius)` — deterministic summaries
    /// return the same (RMS) radius for both.
    fn radii(&self) -> (f64, f64);
}

impl KernelRow for Ecf {
    fn write_row(&self, centroid: &mut [f64], noise: &mut [f64]) {
        self.centroid_into(centroid);
        self.noise_into(noise);
    }

    fn radii(&self) -> (f64, f64) {
        (self.uncertain_radius(), self.corrected_radius())
    }
}

/// Dot product on the runtime-dispatched SIMD backend. Every backend —
/// the canonical scalar path included — uses the same four-lane
/// reduction with tail elements folded into their `j % 4` lane, so the
/// result is bitwise identical whichever backend is live.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    simd::dot(a, b)
}

/// The point-side constant of the expected distance:
/// `E[‖X‖²] = Σ_j x_j² + ψ_j²`. Computed once per point, reused against
/// every cluster.
#[inline]
pub fn point_moment(values: &[f64], errors: &[f64]) -> f64 {
    dot(values, values) + dot(errors, errors)
}

/// Cache-friendly mirror of a live micro-cluster set (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ClusterKernel {
    dims: usize,
    len: usize,
    /// Row-major `len × dims` centroid matrix.
    centroids: Vec<f64>,
    /// Row-major `len × dims` centroid-noise matrix (`EF2_j/W²`).
    noise: Vec<f64>,
    /// Per-cluster `E[‖Z_i‖²] = ‖c_i‖² + Σ_j noise_ij` (Lemma 2.1).
    self_moment: Vec<f64>,
    /// Cached uncertainty-boundary radii (Eq. 6).
    uncertain_radius: Vec<f64>,
    /// Cached error-corrected radii.
    corrected_radius: Vec<f64>,
    /// f32 mirror of `centroids` for the opt-in single-precision
    /// pre-ranking pass (maintained on every row write).
    centroids_f32: Vec<f32>,
    /// f32 mirror of `self_moment`.
    self_moment_f32: Vec<f32>,
    /// Cached `‖c_i‖` — feeds the sound error margin of the f32 pass.
    row_norm: Vec<f64>,
    /// Whether expected-distance ranking may pre-scan in f32 (the
    /// winner is always re-derived in exact canonical f64).
    f32_rank: bool,
    /// Bumped on every mutation; owners compare against their own model
    /// generation to prove freshness.
    generation: u64,
}

/// Minimum row count for the f32 pre-ranking pass to pay for itself;
/// below this the narrowing overhead exceeds the scan savings.
const F32_RANK_MIN_LEN: usize = 4;

/// Absolute floor of the f32 candidate margin — covers denormal
/// rounding, which has no relative error bound.
const F32_RANK_TINY: f64 = 1e-40;

thread_local! {
    /// Per-thread scratch for the f32 pre-ranking pass (narrowed point
    /// and score buffer) — keeps the ranking methods `&self` and the
    /// kernel `Send + Sync` without per-call allocation.
    static F32_SCRATCH: std::cell::RefCell<(Vec<f32>, Vec<f32>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

impl ClusterKernel {
    /// An empty kernel over `d` dimensions.
    pub fn new(dims: usize) -> Self {
        Self {
            dims,
            ..Self::default()
        }
    }

    /// Dimensionality of the rows.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of mirrored clusters.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no clusters are mirrored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutation counter; strictly increases with every row change.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The cached centroid of cluster `i`.
    #[inline]
    pub fn centroid_row(&self, i: usize) -> &[f64] {
        &self.centroids[i * self.dims..(i + 1) * self.dims]
    }

    /// The cached `EF2_j/W²` row of cluster `i`.
    #[inline]
    pub fn noise_row(&self, i: usize) -> &[f64] {
        &self.noise[i * self.dims..(i + 1) * self.dims]
    }

    /// Cached `E[‖Z_i‖²]` of cluster `i`.
    #[inline]
    pub fn self_moment(&self, i: usize) -> f64 {
        self.self_moment[i]
    }

    /// Cached uncertain radius of cluster `i`.
    #[inline]
    pub fn uncertain_radius(&self, i: usize) -> f64 {
        self.uncertain_radius[i]
    }

    /// Cached corrected radius of cluster `i`.
    #[inline]
    pub fn corrected_radius(&self, i: usize) -> f64 {
        self.corrected_radius[i]
    }

    /// Opts expected-distance ranking in or out of the f32 pre-scan
    /// mode. The returned winner and score stay bit-identical to the
    /// pure-f64 scan either way (see [`simd`] module docs), so this is
    /// purely a speed/bandwidth knob.
    pub fn set_f32_rank(&mut self, enabled: bool) {
        self.f32_rank = enabled;
    }

    /// Whether the f32 pre-ranking mode is enabled.
    #[inline]
    pub fn f32_rank(&self) -> bool {
        self.f32_rank
    }

    /// Appends a row mirroring a newly created cluster.
    pub fn push<R: KernelRow>(&mut self, row: &R) {
        let d = self.dims;
        self.centroids.resize((self.len + 1) * d, 0.0);
        self.noise.resize((self.len + 1) * d, 0.0);
        self.centroids_f32.resize((self.len + 1) * d, 0.0);
        self.self_moment.push(0.0);
        self.self_moment_f32.push(0.0);
        self.row_norm.push(0.0);
        self.uncertain_radius.push(0.0);
        self.corrected_radius.push(0.0);
        self.len += 1;
        self.write(self.len - 1, row);
        self.generation += 1;
    }

    /// Re-derives row `i` after its cluster's statistics changed.
    pub fn refresh<R: KernelRow>(&mut self, i: usize, row: &R) {
        self.write(i, row);
        self.generation += 1;
    }

    /// Removes row `i` by swapping in the last row — mirrors
    /// `Vec::swap_remove` on the owner's cluster list.
    pub fn swap_remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        let d = self.dims;
        let last = self.len - 1;
        if i != last {
            for j in 0..d {
                self.centroids[i * d + j] = self.centroids[last * d + j];
                self.noise[i * d + j] = self.noise[last * d + j];
                self.centroids_f32[i * d + j] = self.centroids_f32[last * d + j];
            }
        }
        self.centroids.truncate(last * d);
        self.noise.truncate(last * d);
        self.centroids_f32.truncate(last * d);
        self.self_moment.swap_remove(i);
        self.self_moment_f32.swap_remove(i);
        self.row_norm.swap_remove(i);
        self.uncertain_radius.swap_remove(i);
        self.corrected_radius.swap_remove(i);
        self.len = last;
        self.generation += 1;
    }

    /// Rebuilds every row from scratch — the recovery path after bulk
    /// mutations (restore, decay synchronisation, k-means seeding).
    pub fn rebuild<'a, R: KernelRow + 'a>(&mut self, rows: impl Iterator<Item = &'a R>) {
        self.len = 0;
        self.centroids.clear();
        self.noise.clear();
        self.centroids_f32.clear();
        self.self_moment.clear();
        self.self_moment_f32.clear();
        self.row_norm.clear();
        self.uncertain_radius.clear();
        self.corrected_radius.clear();
        for row in rows {
            let d = self.dims;
            self.centroids.resize((self.len + 1) * d, 0.0);
            self.noise.resize((self.len + 1) * d, 0.0);
            self.centroids_f32.resize((self.len + 1) * d, 0.0);
            self.self_moment.push(0.0);
            self.self_moment_f32.push(0.0);
            self.row_norm.push(0.0);
            self.uncertain_radius.push(0.0);
            self.corrected_radius.push(0.0);
            self.len += 1;
            self.write(self.len - 1, row);
        }
        self.generation += 1;
    }

    fn write<R: KernelRow>(&mut self, i: usize, row: &R) {
        let d = self.dims;
        let centroid = &mut self.centroids[i * d..(i + 1) * d];
        let noise = &mut self.noise[i * d..(i + 1) * d];
        row.write_row(centroid, noise);
        let cc = dot(centroid, centroid);
        self.self_moment[i] = cc + noise.iter().sum::<f64>();
        self.row_norm[i] = cc.sqrt();
        simd::narrow_row(&mut self.centroids_f32[i * d..(i + 1) * d], centroid);
        self.self_moment_f32[i] = simd::narrow(self.self_moment[i]);
        let (u, c) = row.radii();
        self.uncertain_radius[i] = u;
        self.corrected_radius[i] = c;
    }

    /// Index and expected squared distance (Lemma 2.2) of the cluster
    /// nearest to an uncertain point. Ties keep the lowest index, matching
    /// the scalar ranking loop. `None` when empty.
    pub fn nearest_expected(&self, values: &[f64], errors: &[f64]) -> Option<(usize, f64)> {
        let (best, score) = self.nearest_by_score(values)?;
        Some((best, sanitize_sq(point_moment(values, errors) + score)))
    }

    /// Index and squared Euclidean distance of the centroid nearest to a
    /// deterministic point (`noise ≡ 0` rows). `None` when empty.
    pub fn nearest_deterministic(&self, values: &[f64]) -> Option<(usize, f64)> {
        let (best, score) = self.nearest_by_score(values)?;
        Some((best, sanitize_sq(dot(values, values) + score)))
    }

    /// Shared ranking core: minimises `self_moment_i − 2·x·c_i`, the only
    /// cluster-dependent part of both distances, on the dispatched SIMD
    /// backend. In f32 mode a single-precision pre-scan prunes the rows
    /// first; the winner is re-derived in exact canonical f64 either way.
    fn nearest_by_score(&self, values: &[f64]) -> Option<(usize, f64)> {
        debug_assert_eq!(values.len(), self.dims);
        if self.len == 0 {
            return None;
        }
        if self.f32_rank && self.len >= F32_RANK_MIN_LEN {
            if let Some(hit) = self.nearest_by_score_f32(values) {
                return Some(hit);
            }
        }
        Some(simd::rank_min_score(
            &self.centroids,
            &self.self_moment,
            self.dims,
            values,
        ))
    }

    /// f32 pre-scan with exact f64 re-check. Pass 1 fills approximate
    /// scores in single precision and derives a sound upper bound `U`
    /// on the exact minimum (`U = min_i s_i + margin_i`, where
    /// `margin_i` bounds `|s_i − exact_i|` via the f32 rounding slack,
    /// `‖x‖` and the cached `‖c_i‖`). Pass 2 re-evaluates, in index
    /// order and with the canonical f64 reduction, exactly the rows
    /// whose `s_i − margin_i` cannot be proven above `U` — the true
    /// argmin always survives the cut, so the returned `(index, score)`
    /// is bit-identical to the pure-f64 scan. Returns `None` (caller
    /// falls back to the exact scan) when f32 overflow would make the
    /// bound unsound.
    fn nearest_by_score_f32(&self, values: &[f64]) -> Option<(usize, f64)> {
        let d = self.dims;
        F32_SCRATCH.with(|cell| {
            let (x32, scores) = &mut *cell.borrow_mut();
            simd::narrow_into(x32, values);
            if x32.iter().any(|v| v.is_infinite()) {
                return None;
            }
            scores.clear();
            scores.resize(self.len, 0.0);
            simd::fill_scores_f32(&self.centroids_f32, &self.self_moment_f32, d, x32, scores);
            let slack = simd::f32_rank_slack(d);
            let norm_x = dot(values, values).sqrt();
            let mut upper = f64::INFINITY;
            for (i, s) in scores.iter().enumerate() {
                let s = f64::from(*s);
                if s.is_infinite() {
                    return None;
                }
                let hi = s + self.f32_margin(i, slack, norm_x);
                if hi < upper {
                    upper = hi;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::INFINITY;
            for (i, s) in scores.iter().enumerate() {
                let s = f64::from(*s);
                // Negated comparison: NaN scores stay candidates, so a
                // poisoned row ranks exactly as in the pure-f64 scan.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(s - self.f32_margin(i, slack, norm_x) > upper) {
                    let c = &self.centroids[i * d..(i + 1) * d];
                    let exact = self.self_moment[i] - 2.0 * dot(values, c);
                    if exact < best_score {
                        best_score = exact;
                        best = i;
                    }
                }
            }
            Some((best, best_score))
        })
    }

    /// Sound bound on `|s_f32 − s_f64|` for row `i`: the relative
    /// rounding slack scaled by the score's magnitude budget, plus an
    /// absolute denormal floor.
    #[inline]
    fn f32_margin(&self, i: usize, slack: f64, norm_x: f64) -> f64 {
        slack * (self.self_moment[i].abs() + 2.0 * norm_x * self.row_norm[i]) + F32_RANK_TINY
    }

    /// Expected squared distance from a point to cluster `i` (Lemma 2.2),
    /// from cached invariants alone.
    pub fn expected_sq_distance(&self, values: &[f64], errors: &[f64], i: usize) -> f64 {
        let pm = point_moment(values, errors);
        sanitize_sq(pm + self.self_moment[i] - 2.0 * dot(values, self.centroid_row(i)))
    }

    /// Index and dimension-counting similarity of the best cluster.
    ///
    /// `inv_coeff[j]` must hold `1/(thresh · σ_j²)` for informative
    /// dimensions and `f64::INFINITY` for dimensions to skip: an infinite
    /// coefficient drives the credit to `−∞` (or `NaN` when the deviation is
    /// exactly zero), and `f64::max(0.0)` maps both to a zero contribution —
    /// exactly the scalar path's "skip this dimension". Ties keep the lowest
    /// index. `None` when empty.
    pub fn best_by_dimension_counting(
        &self,
        values: &[f64],
        errors: &[f64],
        inv_coeff: &[f64],
    ) -> Option<(usize, f64)> {
        let best = self.rank_fused(values, errors, inv_coeff)?;
        Some((best.sim_idx, best.sim))
    }

    /// Fused ranking sweep: one pass over the centroid and noise
    /// matrices yields *both* the expected-distance argmin (exact
    /// `E[‖X − Zᵢ‖²]`, a byproduct of the per-dimension similarity
    /// terms — see [`simd::rank_fused`]) and the dimension-counting
    /// argmax, so each cluster row is touched once per point. The
    /// `inv_coeff` sentinel convention matches
    /// [`ClusterKernel::best_by_dimension_counting`]. `None` when empty.
    pub fn rank_fused(
        &self,
        values: &[f64],
        errors: &[f64],
        inv_coeff: &[f64],
    ) -> Option<simd::FusedBest> {
        debug_assert_eq!(values.len(), self.dims);
        debug_assert_eq!(inv_coeff.len(), self.dims);
        if self.len == 0 {
            return None;
        }
        Some(simd::rank_fused(
            &self.centroids,
            &self.noise,
            self.dims,
            values,
            errors,
            inv_coeff,
        ))
    }

    /// Squared Euclidean distance from cluster `i`'s centroid to the nearest
    /// *other* cached centroid — the degenerate-boundary fallback, computed
    /// without allocating. `None` when no other cluster exists.
    pub fn nearest_other_centroid_sq(&self, i: usize) -> Option<f64> {
        if self.len < 2 {
            return None;
        }
        let d = self.dims;
        let me = &self.centroids[i * d..(i + 1) * d];
        let mut best = f64::INFINITY;
        for other in 0..self.len {
            if other == i {
                continue;
            }
            let c = &self.centroids[other * d..(other + 1) * d];
            let mut acc = 0.0;
            for j in 0..d {
                let diff = me[j] - c[j];
                acc += diff * diff;
            }
            if acc < best {
                best = acc;
            }
        }
        Some(best)
    }

    /// The pair of clusters with the closest centroids, and their squared
    /// centroid distance — the CluStream merge heuristic, allocation-free.
    /// `None` when fewer than two clusters exist.
    pub fn closest_pair(&self) -> Option<(usize, usize, f64)> {
        if self.len < 2 {
            return None;
        }
        let d = self.dims;
        let mut best = (0usize, 1usize);
        let mut best_d = f64::INFINITY;
        for i in 0..self.len {
            let a = &self.centroids[i * d..(i + 1) * d];
            for j in (i + 1)..self.len {
                let b = &self.centroids[j * d..(j + 1) * d];
                let mut acc = 0.0;
                for k in 0..d {
                    let diff = a[k] - b[k];
                    acc += diff * diff;
                }
                if acc < best_d {
                    best_d = acc;
                    best = (i, j);
                }
            }
        }
        Some((best.0, best.1, best_d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::expected_sq_distance;
    use ustream_common::UncertainPoint;

    fn pt(values: &[f64], errors: &[f64]) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), errors.to_vec(), 0, None)
    }

    fn cluster(points: &[(&[f64], &[f64])]) -> Ecf {
        let mut e = Ecf::empty(points[0].0.len());
        for (v, err) in points {
            e.insert(&pt(v, err));
        }
        e
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f64> = (0..11).map(|i| i as f64 * 0.5 - 2.0).collect();
        let b: Vec<f64> = (0..11).map(|i| (i * i) as f64 * 0.1).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-9);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn kernel_distance_matches_scalar() {
        let a = cluster(&[
            (&[0.0, 1.0, 2.0], &[0.4, 0.1, 0.0]),
            (&[1.0, -1.0, 0.5], &[0.2, 0.3, 0.6]),
        ]);
        let b = cluster(&[(&[10.0, 10.0, 10.0], &[1.0, 1.0, 1.0])]);
        let mut k = ClusterKernel::new(3);
        k.push(&a);
        k.push(&b);

        let x = pt(&[0.5, 0.5, 0.5], &[0.3, 0.0, 0.2]);
        for (i, ecf) in [&a, &b].into_iter().enumerate() {
            let scalar = expected_sq_distance(&x, ecf);
            let kernel = k.expected_sq_distance(x.values(), x.errors(), i);
            assert!(
                (scalar - kernel).abs() <= 1e-9 * scalar.max(1.0),
                "cluster {i}: scalar={scalar} kernel={kernel}"
            );
        }
        let (idx, d2) = k.nearest_expected(x.values(), x.errors()).unwrap();
        assert_eq!(idx, 0);
        assert!((d2 - expected_sq_distance(&x, &a)).abs() < 1e-9);
    }

    #[test]
    fn refresh_and_swap_remove_mirror_owner() {
        let mut a = cluster(&[(&[0.0], &[0.1])]);
        let b = cluster(&[(&[5.0], &[0.2])]);
        let c = cluster(&[(&[9.0], &[0.0])]);
        let mut k = ClusterKernel::new(1);
        k.push(&a);
        k.push(&b);
        k.push(&c);
        let g0 = k.generation();

        a.insert(&pt(&[2.0], &[0.1]));
        k.refresh(0, &a);
        assert!((k.centroid_row(0)[0] - 1.0).abs() < 1e-12);
        assert!(k.generation() > g0);

        // swap_remove(0) moves the last row (c) into slot 0.
        k.swap_remove(0);
        assert_eq!(k.len(), 2);
        assert!((k.centroid_row(0)[0] - 9.0).abs() < 1e-12);
        assert!((k.centroid_row(1)[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rebuild_resets_rows() {
        let rows = [
            cluster(&[(&[1.0, 2.0], &[0.1, 0.1])]),
            cluster(&[(&[3.0, 4.0], &[0.0, 0.5])]),
        ];
        let mut k = ClusterKernel::new(2);
        k.push(&rows[0]);
        k.rebuild(rows.iter());
        assert_eq!(k.len(), 2);
        assert!((k.centroid_row(1)[0] - 3.0).abs() < 1e-12);
        assert!((k.uncertain_radius(0) - rows[0].uncertain_radius()).abs() < 1e-12);
        assert!((k.corrected_radius(1) - rows[1].corrected_radius()).abs() < 1e-12);
    }

    #[test]
    fn dimension_counting_skips_infinite_coefficients() {
        let a = cluster(&[(&[0.0, 7.0], &[0.0, 0.0]), (&[1.0, 7.0], &[0.0, 0.0])]);
        let mut k = ClusterKernel::new(2);
        k.push(&a);
        // Dimension 1 has zero global variance → skip sentinel. A point
        // sitting exactly on the centroid coordinate exercises the 0 · ∞
        // NaN clamp.
        let inv = [1.0 / 2.0, f64::INFINITY];
        let (idx, sim) = k
            .best_by_dimension_counting(&[0.5, 7.0], &[0.0, 0.0], &inv)
            .unwrap();
        assert_eq!(idx, 0);
        assert!(sim.is_finite());
        assert!(sim > 0.0 && sim <= 1.0 + 1e-12, "sim={sim}");
    }

    #[test]
    fn nearest_other_and_closest_pair() {
        let rows = [
            cluster(&[(&[0.0], &[0.0])]),
            cluster(&[(&[10.0], &[0.0])]),
            cluster(&[(&[11.0], &[0.0])]),
        ];
        let mut k = ClusterKernel::new(1);
        for r in &rows {
            k.push(r);
        }
        assert!((k.nearest_other_centroid_sq(0).unwrap() - 100.0).abs() < 1e-12);
        assert!((k.nearest_other_centroid_sq(1).unwrap() - 1.0).abs() < 1e-12);
        let (i, j, d2) = k.closest_pair().unwrap();
        assert_eq!((i, j), (1, 2));
        assert!((d2 - 1.0).abs() < 1e-12);

        let lone = ClusterKernel::new(1);
        assert!(lone.closest_pair().is_none());
        let mut one = ClusterKernel::new(1);
        one.push(&rows[0]);
        assert!(one.nearest_other_centroid_sq(0).is_none());
    }

    #[test]
    fn nan_point_never_wins_nearest_scan() {
        // Regression: the `.max(0.0)` clamps in the nearest scans turned a
        // NaN point moment into distance zero, so a poisoned point was
        // reported as sitting exactly on the nearest centroid.
        let a = cluster(&[(&[0.0, 0.0], &[0.1, 0.1]), (&[1.0, 1.0], &[0.1, 0.1])]);
        let mut k = ClusterKernel::new(2);
        k.push(&a);
        let (_, d2) = k.nearest_expected(&[f64::NAN, 0.5], &[0.1, 0.1]).unwrap();
        assert_eq!(d2, f64::INFINITY);
        let (_, d2) = k.nearest_deterministic(&[f64::NAN, 0.5]).unwrap();
        assert_eq!(d2, f64::INFINITY);
        assert_eq!(
            k.expected_sq_distance(&[f64::NAN, 0.5], &[0.1, 0.1], 0),
            f64::INFINITY
        );
        // NaN in the error vector poisons the point moment the same way.
        let (_, d2) = k.nearest_expected(&[0.5, 0.5], &[f64::NAN, 0.1]).unwrap();
        assert_eq!(d2, f64::INFINITY);
    }

    #[test]
    fn empty_kernel_is_defensive() {
        let k = ClusterKernel::new(3);
        assert!(k.is_empty());
        assert!(k.nearest_expected(&[0.0; 3], &[0.0; 3]).is_none());
        assert!(k.nearest_deterministic(&[0.0; 3]).is_none());
        assert!(k
            .best_by_dimension_counting(&[0.0; 3], &[0.0; 3], &[1.0; 3])
            .is_none());
    }
}
