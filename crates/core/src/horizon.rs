//! Horizon-specific clustering over the pyramidal time frame (§II-D).
//!
//! Snapshots of the micro-cluster set are filed into a
//! [`SnapshotStore`] at pyramidally spaced ticks. A user asking for the
//! clusters of the window `(t_c − h, t_c]` gets them by *subtraction*: the
//! closest stored snapshot at or before `t_c − h` is subtracted, id by id,
//! from the snapshot at `t_c` (clusters evicted inside the window are
//! discarded; clusters created inside the window are retained whole). The
//! pyramid geometry guarantees the effective horizon `h'` satisfies
//! `h ≤ h' ≤ (1 + 1/α^{l−1})·h` while within retention.

use crate::algorithm::UMicro;
use crate::ecf::Ecf;
use crate::macrocluster::{macro_cluster_ecfs, MacroClustering};
use ustream_common::{Result, Timestamp};
use ustream_snapshot::{
    BudgetReport, ClusterSetSnapshot, HorizonTracker, PyramidConfig, SnapshotBudget, SnapshotStore,
};

/// Records UMicro snapshots and answers horizon queries (a thin UMicro-
/// flavoured wrapper over the feature-generic
/// [`ustream_snapshot::HorizonTracker`]).
#[derive(Debug, Clone)]
pub struct HorizonAnalyzer {
    tracker: HorizonTracker<Ecf>,
}

impl HorizonAnalyzer {
    /// An analyzer with the given pyramid geometry.
    pub fn new(config: PyramidConfig) -> Self {
        Self {
            tracker: HorizonTracker::new(config),
        }
    }

    /// An analyzer with the default geometry (α = 2, l = 4).
    pub fn with_defaults() -> Self {
        Self::new(PyramidConfig::default())
    }

    /// The underlying snapshot store (for persistence or inspection).
    pub fn store(&self) -> &SnapshotStore<ClusterSetSnapshot<Ecf>> {
        self.tracker.store()
    }

    /// Installs a memory budget on the snapshot store; see
    /// [`SnapshotBudget`]. Horizon queries keep answering under a budget,
    /// with the error bound inflation reported by [`Self::budget_report`].
    pub fn set_budget(&mut self, budget: SnapshotBudget) {
        self.tracker.set_budget(budget);
    }

    /// Budget accounting of the snapshot store (evictions, retained bytes,
    /// effective horizon-error bound).
    pub fn budget_report(&self) -> BudgetReport {
        self.tracker.budget_report()
    }

    /// Records the current state of `alg` as the snapshot for tick `now`.
    ///
    /// Call once per tick (or per snapshot interval); out-of-order calls are
    /// rejected in debug builds by the store's monotonicity assertion.
    pub fn record(&mut self, now: Timestamp, alg: &UMicro) {
        self.tracker.record_snapshot(now, alg.snapshot());
    }

    /// Records a pre-built snapshot (the decayed variant synchronises its
    /// statistics first and hands the result here).
    pub fn record_snapshot(&mut self, now: Timestamp, snap: ClusterSetSnapshot<Ecf>) {
        self.tracker.record_snapshot(now, snap);
    }

    /// Tick of the most recent recorded snapshot.
    pub fn last_recorded(&self) -> Timestamp {
        self.tracker.last_recorded()
    }

    /// The micro-cluster statistics of the window `(now − h, now]`.
    ///
    /// `now` is resolved to the most recent snapshot at or before it. The
    /// horizon base is the most recent snapshot at or before `now − h`; per
    /// the paper, if the horizon reaches past the oldest retained snapshot,
    /// an error is returned. If the resolved base *is* the stream origin
    /// (nothing recorded before it), the caller should use
    /// [`Self::clusters_at`] instead — the whole history is the window.
    pub fn horizon_clusters(&self, now: Timestamp, h: u64) -> Result<ClusterSetSnapshot<Ecf>> {
        self.tracker.horizon_clusters(now, h)
    }

    /// The full micro-cluster snapshot at (or just before) `t`.
    pub fn clusters_at(&self, t: Timestamp) -> Option<&ClusterSetSnapshot<Ecf>> {
        self.tracker.clusters_at(t)
    }

    /// Macro-clusters of the horizon window: subtraction followed by
    /// weighted k-means over the window's micro-clusters.
    pub fn macro_cluster_horizon(
        &self,
        now: Timestamp,
        h: u64,
        k: usize,
        seed: u64,
    ) -> Result<MacroClustering> {
        let window = self.horizon_clusters(now, h)?;
        Ok(macro_cluster_ecfs(
            window.clusters.iter().map(|(id, e)| (*id, e)),
            k,
            seed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UMicroConfig;
    use ustream_common::{AdditiveFeature, UncertainPoint};

    fn pt(x: f64, t: Timestamp) -> UncertainPoint {
        UncertainPoint::new(vec![x], vec![0.2], t, None)
    }

    /// Streams `n` points into a fresh UMicro, one per tick starting at
    /// `start`, recording a snapshot every tick; x jumps from 0 to 100 at
    /// `switch`.
    fn run_stream(n: u64, switch: u64) -> (UMicro, HorizonAnalyzer) {
        let mut alg = UMicro::new(UMicroConfig::new(8, 1).unwrap());
        let mut hz = HorizonAnalyzer::new(PyramidConfig::new(2, 6).unwrap());
        for t in 1..=n {
            let x = if t <= switch { 0.0 } else { 100.0 };
            alg.insert(&pt(x, t));
            hz.record(t, &alg);
        }
        (alg, hz)
    }

    #[test]
    fn window_counts_match_window_length() {
        let (_, hz) = run_stream(200, 1000);
        // Window (200-h, 200]: exactly h points for horizons with exact
        // snapshots; pyramid may return a slightly older base, never newer.
        for h in [4u64, 8, 16, 32, 64] {
            let window = hz.horizon_clusters(200, h).unwrap();
            let count = window.total_count();
            assert!(
                count >= h as f64 - 1e-9,
                "horizon {h}: window count {count} too small"
            );
            let bound = 1.0 + hz.store().config().horizon_error_bound();
            assert!(
                count <= h as f64 * bound + 1e-9,
                "horizon {h}: window count {count} exceeds bound"
            );
        }
    }

    #[test]
    fn window_reflects_recent_regime_only() {
        // Stream switches from x=0 to x=100 at tick 160 of 192. A horizon
        // covering only the tail must see mass concentrated at 100.
        let (_, hz) = run_stream(192, 160);
        let window = hz.horizon_clusters(192, 32).unwrap();
        assert!(!window.is_empty());
        let total = window.total_count();
        let mass_right: f64 = window
            .clusters
            .values()
            .filter(|e| e.centroid()[0] > 50.0)
            .map(|e| e.count())
            .sum();
        assert!(
            mass_right / total > 0.9,
            "window should be dominated by the new regime: {mass_right}/{total}"
        );
    }

    #[test]
    fn long_horizon_errors_when_past_retention() {
        let (_, hz) = run_stream(100, 1000);
        // Horizon 1 tick longer than everything recorded, from a base
        // before tick 1.
        let res = hz.horizon_clusters(100, 100);
        assert!(res.is_err());
    }

    #[test]
    fn macro_cluster_horizon_produces_k_clusters() {
        let (_, hz) = run_stream(256, 128);
        let mac = hz.macro_cluster_horizon(256, 200, 2, 5).unwrap();
        assert_eq!(mac.k(), 2);
        // One macro centroid per regime.
        let mut lo = false;
        let mut hi = false;
        for c in &mac.centroids {
            if c[0] < 50.0 {
                lo = true;
            } else {
                hi = true;
            }
        }
        assert!(lo && hi, "centroids: {:?}", mac.centroids);
    }

    #[test]
    fn clusters_at_returns_nearest_snapshot() {
        let (_, hz) = run_stream(64, 1000);
        assert!(hz.clusters_at(64).is_some());
        assert!(hz.clusters_at(0).is_none());
        assert_eq!(hz.last_recorded(), 64);
    }

    #[test]
    fn record_snapshot_direct() {
        let mut hz = HorizonAnalyzer::with_defaults();
        let mut alg = UMicro::new(UMicroConfig::new(4, 1).unwrap());
        alg.insert(&pt(1.0, 1));
        hz.record_snapshot(1, alg.snapshot());
        assert_eq!(hz.clusters_at(1).unwrap().len(), 1);
    }
}
