//! The critical uncertainty boundary (§II-C).
//!
//! Once the closest micro-cluster `M` is known, UMicro must decide whether
//! the incoming point belongs to `M` or should seed a new cluster: the
//! point is absorbed when its distance to the centroid lies within `t`
//! times the cluster's radius (paper default `t = 3`, motivated by the
//! normal distribution assumption).
//!
//! Two radius/distance pairings are supported (see
//! [`crate::config::BoundaryMode`]):
//! * **UncertainRadius** — the literal Eq. 6 quantities: expected distance
//!   (Lemma 2.2) vs the uncertain radius (both include the error terms);
//! * **ErrorCorrected** (default) — de-noised quantities: the known error
//!   variance is subtracted from both sides, so the boundary tracks the
//!   cluster's *clean* patch geometry even when `Σψ²` dwarfs it.
//!
//! Degenerate clusters (radius ≈ 0: singletons, or patches whose observed
//! spread is entirely explained by noise) borrow CluStream's convention:
//! their boundary is the distance to the nearest *other* micro-cluster. A
//! lone degenerate cluster has no neighbour to borrow from and splits,
//! letting the stream bootstrap.

/// Outcome of a boundary test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryDecision {
    /// The point falls inside the uncertainty boundary: absorb it.
    Absorb,
    /// The point falls outside: create a new singleton micro-cluster.
    NewCluster,
}

/// Tests whether a point at squared distance `sq_dist` lies within the
/// boundary of a cluster with the given `radius`.
///
/// * `boundary_factor` — the `t` multiplier (paper default 3);
/// * `degenerate_radius` — radii at or below this are treated as degenerate;
/// * `nearest_other_sq` — squared distance from the cluster's centroid to
///   the nearest other micro-cluster centroid; the fallback boundary for
///   degenerate clusters (`None` when this is the only cluster, in which
///   case a degenerate cluster rejects the point so the stream can
///   bootstrap more than one cluster).
pub fn boundary_decision(
    radius: f64,
    sq_dist: f64,
    boundary_factor: f64,
    degenerate_radius: f64,
    nearest_other_sq: Option<f64>,
) -> BoundaryDecision {
    debug_assert!(sq_dist >= 0.0 && radius >= 0.0);
    let boundary = if radius > degenerate_radius {
        boundary_factor * radius
    } else {
        match nearest_other_sq {
            Some(d2) => d2.max(0.0).sqrt(),
            None => return BoundaryDecision::NewCluster,
        }
    };
    if sq_dist.sqrt() <= boundary {
        BoundaryDecision::Absorb
    } else {
        BoundaryDecision::NewCluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{corrected_sq_distance, expected_sq_distance};
    use crate::ecf::Ecf;
    use ustream_common::UncertainPoint;

    fn pt(values: &[f64], errors: &[f64]) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), errors.to_vec(), 0, None)
    }

    fn cluster_around_origin(err: f64) -> Ecf {
        let mut e = Ecf::empty(1);
        e.insert(&pt(&[-1.0], &[err]));
        e.insert(&pt(&[1.0], &[err]));
        e
    }

    #[test]
    fn inside_boundary_absorbs() {
        let c = cluster_around_origin(0.0);
        // uncertain radius = 1, t = 3: anything within distance 3 absorbs.
        let d = boundary_decision(c.uncertain_radius(), 4.0, 3.0, 1e-9, Some(100.0));
        assert_eq!(d, BoundaryDecision::Absorb);
    }

    #[test]
    fn outside_boundary_creates() {
        let c = cluster_around_origin(0.0);
        let d = boundary_decision(c.uncertain_radius(), 16.0, 3.0, 1e-9, Some(100.0));
        assert_eq!(d, BoundaryDecision::NewCluster);
    }

    #[test]
    fn boundary_factor_scales() {
        let c = cluster_around_origin(0.0);
        // distance 2.5: inside t=3, outside t=2.
        assert_eq!(
            boundary_decision(c.uncertain_radius(), 6.25, 3.0, 1e-9, Some(100.0)),
            BoundaryDecision::Absorb
        );
        assert_eq!(
            boundary_decision(c.uncertain_radius(), 6.25, 2.0, 1e-9, Some(100.0)),
            BoundaryDecision::NewCluster
        );
    }

    #[test]
    fn uncertainty_widens_uncorrected_boundary() {
        // Same data spread, large per-point error: the uncertain radius
        // exceeds the deterministic one, so a farther point still absorbs
        // under the literal Eq. 6 reading.
        let noisy = cluster_around_origin(2.0);
        let clean = cluster_around_origin(0.0);
        let d2 = 25.0; // distance 5.
        assert_eq!(
            boundary_decision(clean.uncertain_radius(), d2, 3.0, 1e-9, Some(1e6)),
            BoundaryDecision::NewCluster
        );
        assert_eq!(
            boundary_decision(noisy.uncertain_radius(), d2, 3.0, 1e-9, Some(1e6)),
            BoundaryDecision::Absorb
        );
    }

    #[test]
    fn corrected_geometry_removes_the_noise_floor() {
        // A cluster whose observed spread is pure noise: corrected radius
        // collapses to ~0 while the uncertain radius stays large.
        let mut e = Ecf::empty(1);
        for v in [-2.0, 2.0, -1.5, 1.5] {
            e.insert(&pt(&[v], &[2.0]));
        }
        assert!(e.uncertain_radius() > 2.0);
        assert!(e.corrected_radius() < e.uncertain_radius());

        // Corrected distance of a point sitting at the centroid with big
        // error is ~0 (its realised offset is explained by noise).
        let x = pt(&[0.5], &[2.0]);
        let corrected = corrected_sq_distance(&x, &e);
        let expected = expected_sq_distance(&x, &e);
        assert!(corrected < expected);
        assert_eq!(corrected, 0.0);
    }

    #[test]
    fn degenerate_singleton_uses_nearest_other() {
        let s = Ecf::from_point(&pt(&[0.0], &[0.0])); // radius 0.
                                                      // Nearest other cluster at distance 10 → boundary 10.
        assert_eq!(
            boundary_decision(s.uncertain_radius(), 81.0, 3.0, 1e-9, Some(100.0)),
            BoundaryDecision::Absorb
        );
        assert_eq!(
            boundary_decision(s.uncertain_radius(), 121.0, 3.0, 1e-9, Some(100.0)),
            BoundaryDecision::NewCluster
        );
    }

    #[test]
    fn corrected_singleton_is_degenerate_even_with_error() {
        // Under the corrected mode, a singleton's radius is 0 regardless of
        // ψ — it borrows the nearest-other boundary and stays local.
        let s = Ecf::from_point(&pt(&[0.0], &[3.0]));
        assert_eq!(s.corrected_radius(), 0.0);
        assert!(s.uncertain_radius() > 0.0);
    }

    #[test]
    fn lone_degenerate_cluster_splits() {
        let s = Ecf::from_point(&pt(&[0.0], &[0.0]));
        assert_eq!(
            boundary_decision(s.corrected_radius(), 1e12, 3.0, 1e-9, None),
            BoundaryDecision::NewCluster
        );
        // A lone cluster with genuine (uncertain) radius still absorbs
        // in-range points under the uncorrected mode.
        let u = Ecf::from_point(&pt(&[0.0], &[1.0]));
        assert_eq!(
            boundary_decision(u.uncertain_radius(), 1.0, 3.0, 1e-9, None),
            BoundaryDecision::Absorb
        );
    }
}
