//! Portable clusterer state for checkpoint/restore.
//!
//! [`crate::UMicro::snapshot`] captures only the cluster *summaries* — the
//! part the pyramidal store needs. Fault-tolerant engines need more: the id
//! allocator, the insertion counter, the variance-refresh phase and the
//! cached global variances all influence future insertions, so restoring
//! from a summary-only snapshot would diverge from the uninterrupted run at
//! the next refresh boundary. [`ClustererState`] is the complete picture: a
//! restore from it continues the stream bit-for-bit identically (the
//! property `tests/checkpoint_roundtrip.rs` checks end to end).
//!
//! Cluster order is preserved explicitly (`ids[i]` pairs with
//! `summaries[i]` in the owner's ranking order) because UMicro's
//! tie-breaking and `swap_remove` eviction make the in-memory order
//! observable: a restore that re-sorted clusters by id could rank a
//! distance tie differently from the run it restored.

use serde::{Deserialize, Serialize};
use ustream_common::Timestamp;

/// Complete serialisable state of an online clusterer.
///
/// Generic over the summary type `S` (ECF for UMicro, CF for deterministic
/// baselines) so any [`crate::OnlineClusterer`] implementation can opt in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClustererState<S> {
    /// Stable cluster ids, in the owner's internal ranking order.
    pub ids: Vec<u64>,
    /// One summary per entry of `ids`, same order.
    pub summaries: Vec<S>,
    /// Next id the allocator would hand out.
    pub next_id: u64,
    /// Points processed so far.
    pub points_processed: u64,
    /// Insertions since the last global-variance refresh (so the restored
    /// instance refreshes at the same stream position the original would).
    pub since_refresh: u64,
    /// Cached global per-dimension variances; empty means "recompute from
    /// the summaries on import".
    pub variances: Vec<f64>,
    /// Latest stream tick observed (meaningful for decayed variants; 0
    /// otherwise).
    pub last_seen: Timestamp,
}

impl<S> ClustererState<S> {
    /// Structural sanity check shared by importers: parallel arrays must
    /// agree and the id allocator must be ahead of every live id.
    pub fn validate(&self) -> Result<(), String> {
        if self.ids.len() != self.summaries.len() {
            return Err(format!(
                "state has {} ids but {} summaries",
                self.ids.len(),
                self.summaries.len()
            ));
        }
        if let Some(max_id) = self.ids.iter().max() {
            if self.next_id <= *max_id {
                return Err(format!(
                    "next_id {} does not exceed live id {}",
                    self.next_id, max_id
                ));
            }
        }
        let mut seen = self.ids.clone();
        seen.sort_unstable();
        // lint:allow(hot-panic): windows(2) yields exactly-2-element slices
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate cluster ids in state".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(ids: Vec<u64>, next_id: u64) -> ClustererState<u64> {
        let summaries = vec![0u64; ids.len()];
        ClustererState {
            ids,
            summaries,
            next_id,
            points_processed: 0,
            since_refresh: 0,
            variances: Vec::new(),
            last_seen: 0,
        }
    }

    #[test]
    fn valid_state_passes() {
        assert!(state(vec![0, 3, 1], 4).validate().is_ok());
        assert!(state(Vec::new(), 0).validate().is_ok());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let mut s = state(vec![0, 1], 2);
        s.summaries.pop();
        assert!(s.validate().is_err());
    }

    #[test]
    fn stale_allocator_rejected() {
        assert!(state(vec![0, 5], 5).validate().is_err());
    }

    #[test]
    fn duplicate_ids_rejected() {
        assert!(state(vec![2, 2], 3).validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        use serde::{Deserialize, Serialize};
        let s = state(vec![0, 7, 2], 8);
        let v = s.to_value();
        let back = ClustererState::<u64>::from_value(&v).unwrap();
        assert_eq!(s, back);
    }
}
