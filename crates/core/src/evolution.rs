//! Cluster-evolution analysis over the pyramidal time frame.
//!
//! The paper positions UMicro "as in \[3\] … to perform interactive and
//! online clustering in a data stream environment"; the CluStream line of
//! work uses exactly this machinery to characterise *evolution*: comparing
//! the micro-cluster statistics of two horizons exposes clusters that were
//! **created**, **faded**, **persisted** or **drifted** between them. The
//! stable micro-cluster ids (plus the subtractive property) make the
//! comparison exact rather than heuristic.

use ustream_common::point::sq_euclidean;
use ustream_common::AdditiveFeature;
use ustream_snapshot::ClusterSetSnapshot;

/// How one micro-cluster changed between two windows.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterChange {
    /// Present in the recent window only: new structure appeared.
    Emerged {
        /// Cluster id.
        id: u64,
        /// Weight accumulated in the recent window.
        weight: f64,
    },
    /// Present in the earlier window only: its region stopped receiving
    /// points (or the cluster was evicted).
    Faded {
        /// Cluster id.
        id: u64,
        /// Weight it had in the earlier window.
        weight: f64,
    },
    /// Present in both windows.
    Persisted {
        /// Cluster id.
        id: u64,
        /// Weight in the earlier window.
        weight_before: f64,
        /// Weight in the recent window.
        weight_after: f64,
        /// Euclidean displacement of the centroid between the windows.
        centroid_shift: f64,
    },
}

impl ClusterChange {
    /// The cluster id the change describes.
    pub fn id(&self) -> u64 {
        match self {
            ClusterChange::Emerged { id, .. }
            | ClusterChange::Faded { id, .. }
            | ClusterChange::Persisted { id, .. } => *id,
        }
    }
}

/// Summary of the evolution between two windows.
#[derive(Debug, Clone, Default)]
pub struct EvolutionReport {
    /// Per-cluster changes, emerged first, then persisted, then faded.
    pub changes: Vec<ClusterChange>,
    /// Total weight that arrived in clusters absent from the earlier window.
    pub emerged_weight: f64,
    /// Total weight of clusters absent from the recent window.
    pub faded_weight: f64,
    /// Weight-averaged centroid shift of persisted clusters.
    pub mean_drift: f64,
}

impl EvolutionReport {
    /// Number of emerged clusters.
    pub fn emerged(&self) -> usize {
        self.changes
            .iter()
            .filter(|c| matches!(c, ClusterChange::Emerged { .. }))
            .count()
    }

    /// Number of faded clusters.
    pub fn faded(&self) -> usize {
        self.changes
            .iter()
            .filter(|c| matches!(c, ClusterChange::Faded { .. }))
            .count()
    }

    /// Number of persisted clusters.
    pub fn persisted(&self) -> usize {
        self.changes
            .iter()
            .filter(|c| matches!(c, ClusterChange::Persisted { .. }))
            .count()
    }

    /// A scalar "how much did the stream change" score in [0, 1]:
    /// the fraction of total weight involved in emergence/fading.
    pub fn turbulence(&self) -> f64 {
        let persisted_weight: f64 = self
            .changes
            .iter()
            .filter_map(|c| match c {
                ClusterChange::Persisted {
                    weight_before,
                    weight_after,
                    ..
                } => Some(weight_before + weight_after),
                _ => None,
            })
            .sum();
        let churn = self.emerged_weight + self.faded_weight;
        let total = churn + persisted_weight;
        if total <= 0.0 {
            0.0
        } else {
            churn / total
        }
    }
}

/// Compares the micro-cluster statistics of two windows (each produced by
/// horizon subtraction or direct snapshots).
///
/// Clusters below `min_weight` in both windows are ignored — they carry too
/// little evidence to classify.
///
/// Generic over any additive summary (a cluster's weight is its
/// [`AdditiveFeature::count`], which for the ECF is the possibly-decayed
/// point weight), so evolution analysis works for UMicro and CluStream
/// windows alike — including the merged cluster sets the sharded engine
/// produces.
pub fn compare_windows<F: AdditiveFeature>(
    earlier: &ClusterSetSnapshot<F>,
    recent: &ClusterSetSnapshot<F>,
    min_weight: f64,
) -> EvolutionReport {
    let mut report = EvolutionReport::default();
    let mut drift_acc = 0.0;
    let mut drift_weight = 0.0;

    for (id, now) in &recent.clusters {
        let w_now = now.count();
        match earlier.clusters.get(id) {
            Some(then) => {
                let w_then = then.count();
                if w_now < min_weight && w_then < min_weight {
                    continue;
                }
                let shift = sq_euclidean(&then.centroid(), &now.centroid()).sqrt();
                drift_acc += (w_then + w_now) * shift;
                drift_weight += w_then + w_now;
                report.changes.push(ClusterChange::Persisted {
                    id: *id,
                    weight_before: w_then,
                    weight_after: w_now,
                    centroid_shift: shift,
                });
            }
            None => {
                if w_now < min_weight {
                    continue;
                }
                report.emerged_weight += w_now;
                report.changes.push(ClusterChange::Emerged {
                    id: *id,
                    weight: w_now,
                });
            }
        }
    }
    for (id, then) in &earlier.clusters {
        if recent.clusters.contains_key(id) {
            continue;
        }
        let w_then = then.count();
        if w_then < min_weight {
            continue;
        }
        report.faded_weight += w_then;
        report.changes.push(ClusterChange::Faded {
            id: *id,
            weight: w_then,
        });
    }

    report.mean_drift = if drift_weight > 0.0 {
        drift_acc / drift_weight
    } else {
        0.0
    };
    // Emerged first, then persisted, then faded; stable by id within kind.
    report.changes.sort_by_key(|c| {
        let kind = match c {
            ClusterChange::Emerged { .. } => 0,
            ClusterChange::Persisted { .. } => 1,
            ClusterChange::Faded { .. } => 2,
        };
        (kind, c.id())
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecf::Ecf;
    use ustream_common::UncertainPoint;

    fn ecf(values: &[(f64, f64)]) -> Ecf {
        let mut e = Ecf::empty(2);
        for (i, (x, y)) in values.iter().enumerate() {
            e.insert(&UncertainPoint::new(
                vec![*x, *y],
                vec![0.1, 0.1],
                i as u64,
                None,
            ));
        }
        e
    }

    fn snap(entries: Vec<(u64, Ecf)>) -> ClusterSetSnapshot<Ecf> {
        ClusterSetSnapshot::from_pairs(entries)
    }

    #[test]
    fn detects_emerged_faded_persisted() {
        let earlier = snap(vec![
            (1, ecf(&[(0.0, 0.0), (0.2, 0.0)])),
            (2, ecf(&[(5.0, 5.0), (5.2, 5.0)])),
        ]);
        let recent = snap(vec![
            (1, ecf(&[(1.0, 0.0), (1.2, 0.0)])), // persisted, drifted by ~1
            (3, ecf(&[(9.0, 9.0), (9.1, 9.0)])), // emerged
        ]);
        let report = compare_windows(&earlier, &recent, 0.0);
        assert_eq!(report.emerged(), 1);
        assert_eq!(report.faded(), 1);
        assert_eq!(report.persisted(), 1);
        assert_eq!(report.changes.len(), 3);
        // Order: emerged, persisted, faded.
        assert!(matches!(
            report.changes[0],
            ClusterChange::Emerged { id: 3, .. }
        ));
        assert!(matches!(
            report.changes[1],
            ClusterChange::Persisted { id: 1, .. }
        ));
        assert!(matches!(
            report.changes[2],
            ClusterChange::Faded { id: 2, .. }
        ));
        if let ClusterChange::Persisted { centroid_shift, .. } = &report.changes[1] {
            assert!((centroid_shift - 1.0).abs() < 1e-9);
        }
        assert!((report.emerged_weight - 2.0).abs() < 1e-9);
        assert!((report.faded_weight - 2.0).abs() < 1e-9);
    }

    #[test]
    fn identical_windows_are_calm() {
        let a = snap(vec![(1, ecf(&[(0.0, 0.0), (1.0, 1.0)]))]);
        let report = compare_windows(&a, &a.clone(), 0.0);
        assert_eq!(report.emerged(), 0);
        assert_eq!(report.faded(), 0);
        assert_eq!(report.persisted(), 1);
        assert_eq!(report.mean_drift, 0.0);
        assert_eq!(report.turbulence(), 0.0);
    }

    #[test]
    fn full_replacement_is_maximally_turbulent() {
        let earlier = snap(vec![(1, ecf(&[(0.0, 0.0), (0.1, 0.1)]))]);
        let recent = snap(vec![(2, ecf(&[(8.0, 8.0), (8.1, 8.1)]))]);
        let report = compare_windows(&earlier, &recent, 0.0);
        assert_eq!(report.turbulence(), 1.0);
    }

    #[test]
    fn min_weight_filters_noise_clusters() {
        let earlier = snap(vec![(1, ecf(&[(0.0, 0.0)]))]); // weight 1
        let recent = snap(vec![(2, ecf(&[(5.0, 5.0)]))]); // weight 1
        let report = compare_windows(&earlier, &recent, 2.0);
        assert!(report.changes.is_empty());
        assert_eq!(report.turbulence(), 0.0);
    }

    #[test]
    fn empty_windows() {
        let empty = ClusterSetSnapshot::<Ecf>::default();
        let report = compare_windows(&empty, &empty, 0.0);
        assert!(report.changes.is_empty());
        assert_eq!(report.mean_drift, 0.0);
    }
}
