//! The dimension-counting similarity function (§II-B, last paragraph).
//!
//! Raw expected distances carry all the noise of the uncertain dimensions.
//! The paper's remedy: compute, per dimension, a bounded similarity credit
//! `max{0, 1 − E[(X_j − Z_j)²] / (thresh · σ_j²)}`, where `σ_j²` is the
//! variance of the data along dimension `j` estimated from the *global*
//! cluster feature vector (the sum of all micro-cluster ECFs). Dimensions
//! whose expected deviation exceeds `thresh · σ_j²` — which is exactly what
//! happens on heavily uncertain dimensions — contribute nothing, so the
//! comparison concentrates on informative dimensions.

use crate::ecf::Ecf;
use ustream_common::UncertainPoint;

/// Tracks the global per-dimension variances `σ_j²` from the aggregate of
/// all live micro-clusters.
///
/// Recomputation is `O(k·d)`; the algorithm refreshes it every
/// `variance_refresh_interval` insertions rather than per point.
#[derive(Debug, Clone)]
pub struct GlobalVariance {
    variances: Vec<f64>,
    /// Floor applied when a dimension has (numerically) zero variance so
    /// the similarity ratio stays finite.
    floor: f64,
}

impl GlobalVariance {
    /// Starts with all-zero variances (similarity falls back to expected
    /// distance until the first refresh).
    pub fn new(dims: usize) -> Self {
        Self {
            variances: vec![0.0; dims],
            floor: 1e-12,
        }
    }

    /// Recomputes from the live micro-cluster summaries: the per-dimension
    /// variance of the union is derived from the summed feature vector,
    /// exactly as the paper prescribes ("the cluster feature statistics of
    /// all micro-clusters are added to create one global cluster feature
    /// vector").
    pub fn refresh<'a>(&mut self, clusters: impl Iterator<Item = &'a Ecf>) {
        let mut cf1 = vec![0.0; self.variances.len()];
        let mut cf2 = vec![0.0; self.variances.len()];
        let mut w = 0.0;
        for ecf in clusters {
            debug_assert_eq!(ecf.dims(), self.variances.len());
            for j in 0..cf1.len() {
                cf1[j] += ecf.cf1()[j];
                cf2[j] += ecf.cf2()[j];
            }
            w += ecf.weight();
        }
        if w <= 0.0 {
            for v in &mut self.variances {
                *v = 0.0;
            }
            return;
        }
        for j in 0..cf1.len() {
            let mean = cf1[j] / w;
            self.variances[j] = (cf2[j] / w - mean * mean).max(0.0);
        }
    }

    /// Overwrites the tracked variances with previously exported values —
    /// the checkpoint/restore path. Negative or non-finite entries clamp to
    /// zero (uninformative) so a corrupted checkpoint cannot poison the
    /// similarity ranking.
    pub fn restore_variances(&mut self, variances: &[f64]) {
        debug_assert_eq!(variances.len(), self.variances.len());
        for (dst, &src) in self.variances.iter_mut().zip(variances) {
            *dst = if src.is_finite() && src > 0.0 {
                src
            } else {
                0.0
            };
        }
    }

    /// Whether any dimension has accumulated usable variance.
    pub fn is_informative(&self) -> bool {
        self.variances.iter().any(|v| *v > self.floor)
    }

    /// The tracked variances.
    pub fn variances(&self) -> &[f64] {
        &self.variances
    }

    /// The zero-variance floor below which a dimension is considered
    /// uninformative and skipped.
    #[inline]
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// Writes the inverse similarity coefficients `1/(thresh · σ_j²)` into
    /// `out`, using `f64::INFINITY` as the sentinel for dimensions at or
    /// below the variance floor. The kernel's dimension-counting ranking
    /// consumes this: an infinite coefficient forces the per-dimension
    /// credit to clamp to zero, reproducing the scalar path's skip.
    pub fn inverse_coefficients_into(&self, thresh: f64, out: &mut [f64]) {
        debug_assert!(thresh > 0.0);
        debug_assert_eq!(out.len(), self.variances.len());
        for (o, &sigma2) in out.iter_mut().zip(&self.variances) {
            *o = if sigma2 <= self.floor {
                f64::INFINITY
            } else {
                1.0 / (thresh * sigma2)
            };
        }
    }
}

/// Dimension-counting similarity of `point` to `ecf`:
/// `Σ_j max{0, 1 − E[(X_j − Z_j)²]/(thresh · σ_j²)}`.
///
/// Dimensions with non-positive global variance are skipped (they carry no
/// information for comparison). The result lies in `[0, d]`; larger means
/// more similar.
pub fn dimension_counting_similarity(
    point: &UncertainPoint,
    ecf: &Ecf,
    global: &GlobalVariance,
    thresh: f64,
) -> f64 {
    debug_assert!(thresh > 0.0);
    debug_assert_eq!(point.dims(), ecf.dims());
    let vars = global.variances();
    let floor = global.floor;
    let (values, errors) = (point.values(), point.errors());
    let w = ecf.weight();
    // Hoist the weight load, the `w <= 0` branch and the reciprocals out of
    // the per-dimension loop; the body is then pure multiply-adds.
    let (inv_w, inv_w2) = if w > 0.0 {
        let inv_w = 1.0 / w;
        (inv_w, inv_w * inv_w)
    } else {
        (0.0, 0.0)
    };
    let (cf1, ef2) = (ecf.cf1(), ecf.ef2());
    let inv_thresh = 1.0 / thresh;
    let mut sim = 0.0;
    for (j, &sigma2) in vars.iter().enumerate() {
        if sigma2 <= floor {
            continue;
        }
        let diff = values[j] - cf1[j] * inv_w;
        let psi = errors[j];
        let vj = (diff * diff + psi * psi + ef2[j] * inv_w2).max(0.0);
        let credit = 1.0 - vj * inv_thresh / sigma2;
        if credit > 0.0 {
            sim += credit;
        }
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(values: &[f64], errors: &[f64]) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), errors.to_vec(), 0, None)
    }

    fn cluster(points: &[(&[f64], &[f64])]) -> Ecf {
        let mut e = Ecf::empty(points[0].0.len());
        for (v, err) in points {
            e.insert(&pt(v, err));
        }
        e
    }

    #[test]
    fn refresh_computes_union_variance() {
        // Two clusters summarising {0, 2} and {10, 12} in 1-d.
        let a = cluster(&[(&[0.0], &[0.0]), (&[2.0], &[0.0])]);
        let b = cluster(&[(&[10.0], &[0.0]), (&[12.0], &[0.0])]);
        let mut g = GlobalVariance::new(1);
        g.refresh([&a, &b].into_iter());
        // Union {0,2,10,12}: mean 6, variance (36+16+16+36)/4 = 26.
        assert!((g.variances()[0] - 26.0).abs() < 1e-9);
        assert!(g.is_informative());
    }

    #[test]
    fn refresh_with_no_clusters_resets() {
        let mut g = GlobalVariance::new(2);
        g.refresh(std::iter::empty());
        assert!(!g.is_informative());
        assert_eq!(g.variances(), &[0.0, 0.0]);
    }

    #[test]
    fn close_point_scores_higher() {
        let a = cluster(&[(&[0.0, 0.0], &[0.1, 0.1]), (&[1.0, 1.0], &[0.1, 0.1])]);
        let b = cluster(&[(&[10.0, 10.0], &[0.1, 0.1]), (&[11.0, 11.0], &[0.1, 0.1])]);
        let mut g = GlobalVariance::new(2);
        g.refresh([&a, &b].into_iter());
        let x = pt(&[0.5, 0.5], &[0.1, 0.1]);
        let sa = dimension_counting_similarity(&x, &a, &g, 2.0);
        let sb = dimension_counting_similarity(&x, &b, &g, 2.0);
        assert!(sa > sb, "sa={sa} sb={sb}");
        assert!(sa <= 2.0 + 1e-12); // bounded by d.
    }

    #[test]
    fn noisy_dimension_is_pruned() {
        // Dimension 0 is informative, dimension 1 is swamped by error.
        let a = cluster(&[(&[0.0, 0.0], &[0.05, 5.0]), (&[1.0, 1.0], &[0.05, 5.0])]);
        let b = cluster(&[(&[10.0, 0.5], &[0.05, 5.0]), (&[11.0, 0.7], &[0.05, 5.0])]);
        let mut g = GlobalVariance::new(2);
        g.refresh([&a, &b].into_iter());

        // A point near cluster a in dim 0, with huge dim-1 uncertainty.
        let x = pt(&[0.4, 0.9], &[0.05, 5.0]);
        let sa = dimension_counting_similarity(&x, &a, &g, 1.0);
        // The dim-1 credit must be zero for both clusters: ψ² = 25 alone
        // exceeds thresh·σ₁² because σ₁² is dominated by the data spread
        // (values stayed in [0, 1]), so only dim 0 separates them.
        let sb = dimension_counting_similarity(&x, &b, &g, 1.0);
        assert!(sa > sb);
        assert!(sa <= 1.0 + 1e-12, "noisy dim contributed: sa={sa}");
    }

    #[test]
    fn zero_variance_dimensions_skipped() {
        // A constant dimension contributes nothing and divides by nothing.
        let a = cluster(&[(&[0.0, 7.0], &[0.0, 0.0]), (&[1.0, 7.0], &[0.0, 0.0])]);
        let mut g = GlobalVariance::new(2);
        g.refresh([&a].into_iter());
        assert_eq!(g.variances()[1], 0.0);
        let x = pt(&[0.5, 7.0], &[0.0, 0.0]);
        let s = dimension_counting_similarity(&x, &a, &g, 2.0);
        assert!(s.is_finite());
        assert!(s > 0.0);
    }

    #[test]
    fn similarity_never_negative() {
        let a = cluster(&[(&[0.0], &[0.1]), (&[1.0], &[0.1])]);
        let mut g = GlobalVariance::new(1);
        g.refresh([&a].into_iter());
        let far = pt(&[1000.0], &[0.1]);
        assert_eq!(dimension_counting_similarity(&far, &a, &g, 2.0), 0.0);
    }
}
