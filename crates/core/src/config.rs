//! UMicro configuration.

use serde::{Deserialize, Serialize};
use ustream_common::{Result, UStreamError};

/// How the "closest" micro-cluster for an incoming point is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimilarityMode {
    /// Rank clusters by the raw expected squared distance of Lemma 2.2
    /// (smaller is closer).
    ExpectedDistance,
    /// The paper's *dimension-counting similarity*: per dimension `j`, add
    /// `max{0, 1 − E[(X_j − Z_j)²]/(thresh · σ_j²)}` where `σ_j²` is the
    /// global data variance along `j`; noisy dimensions contribute zero and
    /// are thereby pruned. Larger is closer.
    DimensionCounting {
        /// The `thresh` multiplier on the global per-dimension variance.
        thresh: f64,
    },
}

impl Default for SimilarityMode {
    fn default() -> Self {
        SimilarityMode::DimensionCounting { thresh: 2.0 }
    }
}

/// How the critical uncertainty boundary (§II-C) is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BoundaryMode {
    /// Literal reading of Eq. 6: boundary = `t ×` the uncertain radius
    /// (expected RMS deviation, *including* the error terms), tested
    /// against the expected distance of Lemma 2.2. In high dimensions with
    /// strong noise the shared `Σψ²` floor inflates every cluster's
    /// boundary equally and absorption stops being local; kept for the
    /// boundary-mode ablation.
    UncertainRadius,
    /// Error-corrected geometry (default): boundary = `t ×` the corrected
    /// radius (observed spread minus the known error variance), tested
    /// against the corrected distance. Uses the uncertainty information to
    /// *de-noise* the boundary decision — the advantage a deterministic
    /// algorithm cannot replicate.
    #[default]
    ErrorCorrected,
}

/// Configuration of the [`crate::UMicro`] algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UMicroConfig {
    /// Budget `n_micro` of concurrently maintained micro-clusters.
    pub n_micro: usize,
    /// Dimensionality `d` of the stream.
    pub dims: usize,
    /// Uncertainty-boundary width in units of the uncertain radius; the
    /// paper recommends `t = 3` ("a high level of certainty … with the use
    /// of the normal distribution assumption").
    pub boundary_factor: f64,
    /// Closest-cluster ranking strategy.
    pub similarity: SimilarityMode,
    /// Uncertainty-boundary evaluation mode.
    pub boundary_mode: BoundaryMode,
    /// The global per-dimension variances used by dimension counting are
    /// recomputed from the aggregate of all micro-clusters every this many
    /// insertions (they drift slowly; recomputing per point is wasted work).
    pub variance_refresh_interval: usize,
    /// Radius below which a cluster is treated as degenerate (e.g. a
    /// deterministic singleton); its boundary then falls back to the
    /// distance to the nearest other micro-cluster, as in CluStream.
    pub degenerate_radius: f64,
}

impl UMicroConfig {
    /// Validated constructor with the paper's defaults (`t = 3`,
    /// dimension-counting similarity).
    pub fn new(n_micro: usize, dims: usize) -> Result<Self> {
        let cfg = Self {
            n_micro,
            dims,
            boundary_factor: 3.0,
            similarity: SimilarityMode::default(),
            boundary_mode: BoundaryMode::default(),
            variance_refresh_interval: 100,
            degenerate_radius: 1e-9,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Uses raw expected distance instead of dimension counting.
    pub fn with_expected_distance(mut self) -> Self {
        self.similarity = SimilarityMode::ExpectedDistance;
        self
    }

    /// Overrides the dimension-counting threshold.
    pub fn with_dimension_counting(mut self, thresh: f64) -> Self {
        self.similarity = SimilarityMode::DimensionCounting { thresh };
        self
    }

    /// Overrides the boundary factor `t`.
    pub fn with_boundary_factor(mut self, t: f64) -> Self {
        self.boundary_factor = t;
        self
    }

    /// Overrides the boundary evaluation mode.
    pub fn with_boundary_mode(mut self, mode: BoundaryMode) -> Self {
        self.boundary_mode = mode;
        self
    }

    /// Checks parameter domains.
    pub fn validate(&self) -> Result<()> {
        if self.n_micro == 0 {
            return Err(UStreamError::InvalidConfig(
                "n_micro must be at least 1".into(),
            ));
        }
        if self.dims == 0 {
            return Err(UStreamError::InvalidConfig(
                "stream dimensionality must be at least 1".into(),
            ));
        }
        if !(self.boundary_factor.is_finite() && self.boundary_factor > 0.0) {
            return Err(UStreamError::InvalidConfig(format!(
                "boundary_factor must be positive, got {}",
                self.boundary_factor
            )));
        }
        if let SimilarityMode::DimensionCounting { thresh } = self.similarity {
            if !(thresh.is_finite() && thresh > 0.0) {
                return Err(UStreamError::InvalidConfig(format!(
                    "dimension-counting thresh must be positive, got {thresh}"
                )));
            }
        }
        if self.variance_refresh_interval == 0 {
            return Err(UStreamError::InvalidConfig(
                "variance_refresh_interval must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_papers() {
        let c = UMicroConfig::new(100, 20).unwrap();
        assert_eq!(c.boundary_factor, 3.0);
        assert!(matches!(
            c.similarity,
            SimilarityMode::DimensionCounting { .. }
        ));
        assert_eq!(c.boundary_mode, BoundaryMode::ErrorCorrected);
    }

    #[test]
    fn boundary_mode_override() {
        let c = UMicroConfig::new(10, 2)
            .unwrap()
            .with_boundary_mode(BoundaryMode::UncertainRadius);
        assert_eq!(c.boundary_mode, BoundaryMode::UncertainRadius);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_zero_micro_budget() {
        assert!(UMicroConfig::new(0, 5).is_err());
    }

    #[test]
    fn rejects_zero_dims() {
        assert!(UMicroConfig::new(5, 0).is_err());
    }

    #[test]
    fn rejects_bad_boundary_factor() {
        let c = UMicroConfig::new(5, 2).unwrap().with_boundary_factor(-1.0);
        assert!(c.validate().is_err());
        let c = UMicroConfig::new(5, 2)
            .unwrap()
            .with_boundary_factor(f64::NAN);
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_thresh() {
        let c = UMicroConfig::new(5, 2)
            .unwrap()
            .with_dimension_counting(0.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_style_overrides() {
        let c = UMicroConfig::new(10, 3)
            .unwrap()
            .with_expected_distance()
            .with_boundary_factor(2.0);
        assert_eq!(c.similarity, SimilarityMode::ExpectedDistance);
        assert_eq!(c.boundary_factor, 2.0);
        assert!(c.validate().is_ok());
    }
}
