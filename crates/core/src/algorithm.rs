//! The UMicro online loop (Figure 1 of the paper).
//!
//! ```text
//! S = {}                                  // ≤ n_micro micro-clusters
//! repeat
//!     receive next stream point X
//!     M    = closest micro-cluster by expected similarity
//!     if X inside critical uncertainty boundary of M
//!         add X to the statistics of M
//!     else
//!         add new singleton micro-cluster {X} to S
//!         if |S| = n_micro + 1
//!             remove least-recently-updated micro-cluster
//! until stream ends
//! ```

use crate::boundary::{boundary_decision, BoundaryDecision};
use crate::config::{BoundaryMode, SimilarityMode, UMicroConfig};
use crate::distance::{corrected_sq_distance, expected_sq_distance};
use crate::ecf::Ecf;
use crate::kernel::ClusterKernel;
use crate::macrocluster::{macro_cluster_ecfs, MacroClustering};
use crate::similarity::{dimension_counting_similarity, GlobalVariance};
use crate::state::ClustererState;
use ustream_common::point::sq_euclidean;
use ustream_common::{AdditiveFeature, DecayableFeature, Timestamp, UStreamError, UncertainPoint};
use ustream_snapshot::ClusterSetSnapshot;

/// A live micro-cluster: a stable identity plus its ECF statistics.
///
/// Ids are unique across the whole run (never recycled), which is what lets
/// pyramidal snapshots match clusters across time for horizon subtraction.
#[derive(Debug, Clone)]
pub struct MicroCluster {
    /// Stable, run-unique identifier.
    pub id: u64,
    /// The error-based cluster feature vector.
    pub ecf: Ecf,
}

/// What happened to an inserted point — surfaced so evaluation layers can
/// attribute class labels to clusters without re-querying the algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Id of the micro-cluster that received the point, or
    /// [`InsertOutcome::REJECTED_ID`] when the point was refused.
    pub cluster_id: u64,
    /// Whether the point seeded a brand-new micro-cluster.
    pub created: bool,
    /// Id of the micro-cluster evicted to make room, if any.
    pub evicted: Option<u64>,
}

impl InsertOutcome {
    /// Sentinel id reported when a point was rejected rather than
    /// clustered. Real ids are allocated sequentially from zero and can
    /// never reach this value within a run.
    pub const REJECTED_ID: u64 = u64::MAX;

    /// The outcome for a point refused before touching any statistics
    /// (non-finite coordinate or invalid error vector).
    pub fn rejected() -> Self {
        Self {
            cluster_id: Self::REJECTED_ID,
            created: false,
            evicted: None,
        }
    }

    /// Whether this outcome reports a rejected point.
    pub fn is_rejected(&self) -> bool {
        self.cluster_id == Self::REJECTED_ID && !self.created
    }
}

/// The UMicro algorithm (undecayed form; see
/// [`crate::DecayedUMicro`] for the §II-E time-decay variant).
#[derive(Debug, Clone)]
pub struct UMicro {
    config: UMicroConfig,
    clusters: Vec<MicroCluster>,
    next_id: u64,
    global: GlobalVariance,
    since_refresh: usize,
    inserted: u64,
    /// Exponential decay rate λ; 0 disables decay.
    lambda: f64,
    /// SoA mirror of `clusters` serving the hot ranking loop.
    kernel: ClusterKernel,
    /// Set whenever `clusters` may have changed without the kernel being
    /// told (bulk restore, decay synchronisation, kernel toggling); the next
    /// ranking rebuilds before consulting any row.
    kernel_stale: bool,
    /// Runtime switch; disabling falls back to the scalar per-ECF loops
    /// (used by benches to measure the kernel's contribution).
    kernel_enabled: bool,
    /// Cached `1/(thresh·σ_j²)` similarity coefficients (∞ = skip), kept in
    /// lockstep with `global`.
    scratch_inv: Vec<f64>,
}

impl UMicro {
    /// Creates the algorithm with a validated configuration.
    pub fn new(config: UMicroConfig) -> Self {
        config
            .validate()
            // lint:allow(hot-panic): constructor contract — fails fast at setup, never on the stream path
            .expect("UMicroConfig must be validated before use");
        let dims = config.dims;
        Self {
            config,
            clusters: Vec::new(),
            next_id: 0,
            global: GlobalVariance::new(dims),
            since_refresh: 0,
            inserted: 0,
            lambda: 0.0,
            kernel: ClusterKernel::new(dims),
            kernel_stale: false,
            kernel_enabled: true,
            scratch_inv: vec![f64::INFINITY; dims],
        }
    }

    /// Internal: same algorithm with exponential decay rate `lambda`.
    pub(crate) fn with_lambda(config: UMicroConfig, lambda: f64) -> Self {
        let mut alg = Self::new(config);
        alg.lambda = lambda;
        alg
    }

    /// The configuration in force.
    pub fn config(&self) -> &UMicroConfig {
        &self.config
    }

    /// Points processed so far.
    pub fn points_processed(&self) -> u64 {
        self.inserted
    }

    /// The live micro-clusters (at most `n_micro`).
    pub fn micro_clusters(&self) -> &[MicroCluster] {
        &self.clusters
    }

    /// The global per-dimension variance estimate currently in use by the
    /// dimension-counting similarity.
    pub fn global_variances(&self) -> &[f64] {
        self.global.variances()
    }

    /// Toggles the SoA distance kernel at runtime. Disabling routes ranking
    /// through the scalar per-ECF loops; re-enabling rebuilds the kernel at
    /// the next insertion. Benches use this to isolate the kernel's
    /// contribution — production code leaves it on (the default).
    pub fn set_kernel_enabled(&mut self, enabled: bool) {
        self.kernel_enabled = enabled;
        self.kernel_stale = true;
    }

    /// Opts the kernel's expected-distance ranking into (or out of) the
    /// f32 pre-scan mode. The returned winner and distance stay
    /// bit-identical to the pure-f64 scan — the pre-scan only prunes
    /// rows, and every surviving candidate is re-ranked in exact f64 —
    /// so this is purely a speed/bandwidth knob. Off by default.
    pub fn set_f32_rank(&mut self, enabled: bool) {
        self.kernel.set_f32_rank(enabled);
    }

    /// The kernel, synchronised with the live cluster set — rebuilds first
    /// when stale. Row `i` mirrors `micro_clusters()[i]`; parity tests and
    /// diagnostics read cached invariants through this.
    pub fn kernel_synced(&mut self) -> &ClusterKernel {
        if self.kernel_stale {
            self.sync_kernel();
        }
        &self.kernel
    }

    /// Processes one stream point and reports where it went.
    ///
    /// # Panics
    /// Debug builds assert the point's dimensionality matches the
    /// configuration.
    pub fn insert(&mut self, point: &UncertainPoint) -> InsertOutcome {
        debug_assert_eq!(point.dims(), self.config.dims);
        // Last line of defence against poison points: a NaN/∞ coordinate
        // absorbed into an ECF contaminates every derived statistic
        // (centroid, radii, global variances) irreversibly, and the distance
        // guards alone cannot stop a non-finite point from *seeding* a new
        // cluster. Engines validate earlier with richer policy; this keeps
        // direct users safe too.
        if !point.values_finite() || !point.errors_valid() {
            return InsertOutcome::rejected();
        }
        let now = point.timestamp();
        self.inserted += 1;
        self.maybe_refresh_variances();
        if self.kernel_enabled && self.kernel_stale {
            self.sync_kernel();
        }

        // Bootstrap (§II-A): "in the initial stages of the algorithm, the
        // current number of micro-clusters is less than n_micro. If this is
        // the case, then the new data point is added to the current set of
        // micro-clusters as a separate micro-cluster with a singleton point
        // in it." Filling the budget with spread-out singletons is what
        // keeps micro-clusters *micro*: afterwards every point lands on a
        // nearby seed instead of inflating one early cluster.
        if self.clusters.len() < self.config.n_micro {
            let id = self.create_cluster(point);
            return InsertOutcome {
                cluster_id: id,
                created: true,
                evicted: None,
            };
        }

        let best = self.closest_cluster(point);
        let best_ecf = &self.clusters[best].ecf;
        let live = self.kernel_live();
        // Radius/distance pair per the configured boundary mode; the kernel
        // serves both radii and the expected distance from cached rows.
        let (radius, d2) = match self.config.boundary_mode {
            BoundaryMode::UncertainRadius => {
                let r = if live {
                    self.kernel.uncertain_radius(best)
                } else {
                    best_ecf.uncertain_radius()
                };
                (r, self.expected_sq_distance_to(point, best))
            }
            BoundaryMode::ErrorCorrected => {
                let r = if live {
                    self.kernel.corrected_radius(best)
                } else {
                    best_ecf.corrected_radius()
                };
                (r, corrected_sq_distance(point, best_ecf))
            }
        };

        // A lone degenerate cluster has no neighbour to borrow a boundary
        // from; under the corrected mode fall back to the uncertain-radius
        // geometry so that n_micro = 1 configurations can still absorb
        // noise-compatible points.
        let (radius, d2) = if radius <= self.config.degenerate_radius
            && self.clusters.len() == 1
            && self.config.boundary_mode == BoundaryMode::ErrorCorrected
        {
            let r = if live {
                self.kernel.uncertain_radius(best)
            } else {
                best_ecf.uncertain_radius()
            };
            (r, self.expected_sq_distance_to(point, best))
        } else {
            (radius, d2)
        };

        // The fallback boundary for degenerate clusters needs the distance
        // to the nearest other centroid; compute it only when needed.
        let needs_fallback = radius <= self.config.degenerate_radius;
        let nearest_other_sq = if needs_fallback && self.clusters.len() > 1 {
            Some(self.nearest_other_centroid_sq(best))
        } else if needs_fallback {
            None
        } else {
            Some(0.0) // unused by boundary_decision when radius is healthy
        };

        match boundary_decision(
            radius,
            d2,
            self.config.boundary_factor,
            self.config.degenerate_radius,
            nearest_other_sq,
        ) {
            BoundaryDecision::Absorb => {
                let cluster = &mut self.clusters[best];
                if self.lambda > 0.0 {
                    cluster.ecf.decay_to(now, self.lambda);
                }
                cluster.ecf.insert(point);
                let cluster_id = cluster.id;
                if self.kernel_live() {
                    self.kernel.refresh(best, &self.clusters[best].ecf);
                } else {
                    self.kernel_stale = true;
                }
                InsertOutcome {
                    cluster_id,
                    created: false,
                    evicted: None,
                }
            }
            BoundaryDecision::NewCluster => {
                let id = self.create_cluster(point);
                let evicted = self.enforce_budget(id);
                InsertOutcome {
                    cluster_id: id,
                    created: true,
                    evicted,
                }
            }
        }
    }

    /// Processes a mini-batch of stream points, appending one outcome per
    /// point to `out`.
    ///
    /// Equivalent to calling [`UMicro::insert`] in a loop, but any pending
    /// kernel rebuild is paid once for the whole block and the outcome
    /// buffer is reserved up front — the shape [`crate::OnlineClusterer`]
    /// batch ingestion routes through.
    pub fn insert_batch(&mut self, points: &[UncertainPoint], out: &mut Vec<InsertOutcome>) {
        out.reserve(points.len());
        if self.kernel_enabled && self.kernel_stale {
            self.sync_kernel();
        }
        for p in points {
            out.push(self.insert(p));
        }
    }

    /// Snapshot of the current micro-cluster set, keyed by stable id, for
    /// the pyramidal store.
    pub fn snapshot(&self) -> ClusterSetSnapshot<Ecf> {
        ClusterSetSnapshot::from_pairs(self.clusters.iter().map(|c| (c.id, c.ecf.clone())))
    }

    /// Snapshot naming unified with [`crate::DecayedUMicro::snapshot_at`]:
    /// undecayed statistics are time-invariant, so `now` is accepted for
    /// interface symmetry and ignored.
    pub fn snapshot_at(&self, _now: Timestamp) -> ClusterSetSnapshot<Ecf> {
        self.snapshot()
    }

    /// Rebuilds an algorithm from a configuration and a previously captured
    /// snapshot — checkpoint/restore for long-running deployments. Cluster
    /// ids are preserved (so pyramidal stores from before the restart stay
    /// compatible) and fresh ids continue after the largest restored one.
    ///
    /// The restored instance refreshes its global variance estimate from
    /// the snapshot immediately, so the first post-restore insertions rank
    /// clusters the way a continuously-running instance would at its next
    /// refresh boundary.
    pub fn restore(config: UMicroConfig, snapshot: &ClusterSetSnapshot<Ecf>) -> Self {
        let mut alg = Self::new(config);
        for (id, ecf) in &snapshot.clusters {
            debug_assert_eq!(ecf.dims(), alg.config.dims);
            alg.clusters.push(MicroCluster {
                id: *id,
                ecf: ecf.clone(),
            });
            alg.next_id = alg.next_id.max(id + 1);
        }
        alg.inserted = alg.clusters.iter().map(|c| c.ecf.point_count()).sum();
        alg.global.refresh(alg.clusters.iter().map(|c| &c.ecf));
        alg.refresh_inv_coefficients();
        // Clusters were pushed behind the kernel's back.
        alg.kernel_stale = true;
        alg
    }

    /// Offline macro-clustering of the live micro-clusters into `k`
    /// higher-level clusters (weighted k-means over ECF centroids).
    pub fn macro_cluster(&self, k: usize, seed: u64) -> MacroClustering {
        macro_cluster_ecfs(self.clusters.iter().map(|c| (c.id, &c.ecf)), k, seed)
    }

    /// Exports the complete mutable state for checkpointing — unlike
    /// [`UMicro::snapshot`] this includes the id allocator, the insertion
    /// counter, the variance-refresh phase and the cached global variances,
    /// so [`UMicro::import_state`] continues the stream exactly where this
    /// instance left off.
    pub fn export_state(&self) -> ClustererState<Ecf> {
        ClustererState {
            ids: self.clusters.iter().map(|c| c.id).collect(),
            summaries: self.clusters.iter().map(|c| c.ecf.clone()).collect(),
            next_id: self.next_id,
            points_processed: self.inserted,
            since_refresh: self.since_refresh as u64,
            variances: self.global.variances().to_vec(),
            last_seen: 0,
        }
    }

    /// Replaces this instance's state with a previously exported one.
    ///
    /// The configuration is *not* part of the state — the caller constructs
    /// the instance with the intended configuration first. Fails without
    /// modifying `self` when the state is structurally invalid or its
    /// summaries disagree with the configured dimensionality.
    pub fn import_state(&mut self, state: &ClustererState<Ecf>) -> Result<(), UStreamError> {
        state.validate().map_err(UStreamError::Checkpoint)?;
        for ecf in &state.summaries {
            if ecf.dims() != self.config.dims {
                return Err(UStreamError::DimensionMismatch {
                    expected: self.config.dims,
                    actual: ecf.dims(),
                });
            }
        }
        self.clusters = state
            .ids
            .iter()
            .zip(&state.summaries)
            .map(|(id, ecf)| MicroCluster {
                id: *id,
                ecf: ecf.clone(),
            })
            .collect();
        self.next_id = state.next_id;
        self.inserted = state.points_processed;
        self.since_refresh = state.since_refresh as usize;
        if state.variances.len() == self.config.dims {
            self.global.restore_variances(&state.variances);
        } else {
            // Older or partial states: rebuild from the summaries, same as
            // the snapshot-based `restore`.
            self.global.refresh(self.clusters.iter().map(|c| &c.ecf));
        }
        self.refresh_inv_coefficients();
        self.kernel_stale = true;
        Ok(())
    }

    // --- internals -------------------------------------------------------

    /// Mutable cluster access for the decayed wrapper (same crate only).
    /// Hands out raw statistics, so the kernel mirror is written off until
    /// the next synchronisation.
    pub(crate) fn clusters_mut(&mut self) -> &mut Vec<MicroCluster> {
        self.kernel_stale = true;
        &mut self.clusters
    }

    /// Whether kernel rows may be consulted and incrementally maintained.
    #[inline]
    fn kernel_live(&self) -> bool {
        self.kernel_enabled && !self.kernel_stale
    }

    /// Rebuilds the kernel mirror from the live cluster set.
    fn sync_kernel(&mut self) {
        self.kernel.rebuild(self.clusters.iter().map(|c| &c.ecf));
        self.kernel_stale = false;
    }

    /// Expected squared distance to cluster `idx` — cached rows when live,
    /// the scalar Lemma 2.2 evaluation otherwise.
    fn expected_sq_distance_to(&self, point: &UncertainPoint, idx: usize) -> f64 {
        if self.kernel_live() {
            self.kernel
                .expected_sq_distance(point.values(), point.errors(), idx)
        } else {
            expected_sq_distance(point, &self.clusters[idx].ecf)
        }
    }

    fn create_cluster(&mut self, point: &UncertainPoint) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let ecf = Ecf::from_point(point);
        if self.kernel_live() {
            self.kernel.push(&ecf);
        } else {
            self.kernel_stale = true;
        }
        self.clusters.push(MicroCluster { id, ecf });
        id
    }

    /// Evicts the least-recently-updated cluster if the budget is exceeded.
    /// The just-created cluster (`protect`) is never the victim — it is by
    /// definition the most recently updated, but floating ties at equal
    /// timestamps must not delete it.
    fn enforce_budget(&mut self, protect: u64) -> Option<u64> {
        if self.clusters.len() <= self.config.n_micro {
            return None;
        }
        let victim_idx = self
            .clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.id != protect)
            .min_by_key(|(_, c)| (c.ecf.last_update(), c.id))
            .map(|(i, _)| i)?;
        let victim = self.clusters.swap_remove(victim_idx);
        if self.kernel_live() {
            // Mirror the swap-remove so row i keeps tracking cluster i.
            self.kernel.swap_remove(victim_idx);
        } else {
            self.kernel_stale = true;
        }
        Some(victim.id)
    }

    /// Index of the closest cluster under the configured similarity.
    fn closest_cluster(&self, point: &UncertainPoint) -> usize {
        debug_assert!(!self.clusters.is_empty());
        match self.config.similarity {
            SimilarityMode::ExpectedDistance => self.closest_by_expected_distance(point),
            SimilarityMode::DimensionCounting { thresh } => {
                if !self.global.is_informative() {
                    // Early stream: no variance estimate yet.
                    return self.closest_by_expected_distance(point);
                }
                if self.kernel_live() {
                    let fused = self
                        .kernel
                        .rank_fused(point.values(), point.errors(), &self.scratch_inv)
                        // lint:allow(hot-panic): kernel mirrors self.clusters, checked non-empty above
                        .expect("ranking requires a non-empty cluster set");
                    // The point earned no credit anywhere (far from all
                    // clusters on every informative dimension): fall back
                    // to expected-distance ranking, whose argmin the fused
                    // sweep already carries — no second pass over the rows.
                    return if fused.sim <= 0.0 {
                        fused.dist_idx
                    } else {
                        fused.sim_idx
                    };
                }
                let mut best = 0usize;
                let mut best_sim = f64::NEG_INFINITY;
                for (i, c) in self.clusters.iter().enumerate() {
                    let s = dimension_counting_similarity(point, &c.ecf, &self.global, thresh);
                    if s > best_sim {
                        best_sim = s;
                        best = i;
                    }
                }
                if best_sim <= 0.0 {
                    // Scalar fallback keeps the explicit second ranking pass.
                    return self.closest_by_expected_distance(point);
                }
                best
            }
        }
    }

    fn closest_by_expected_distance(&self, point: &UncertainPoint) -> usize {
        if self.kernel_live() {
            if let Some((best, _)) = self.kernel.nearest_expected(point.values(), point.errors()) {
                return best;
            }
        }
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.clusters.iter().enumerate() {
            let d = expected_sq_distance(point, &c.ecf);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    fn nearest_other_centroid_sq(&self, idx: usize) -> f64 {
        if self.kernel_live() {
            return self
                .kernel
                .nearest_other_centroid_sq(idx)
                .unwrap_or(f64::INFINITY);
        }
        // Scalar fallback: two reusable buffers instead of one fresh `Vec`
        // per cluster visited.
        let mut me = vec![0.0; self.config.dims];
        self.clusters[idx].ecf.centroid_into(&mut me);
        let mut other = vec![0.0; self.config.dims];
        let mut best = f64::INFINITY;
        for (i, c) in self.clusters.iter().enumerate() {
            if i == idx {
                continue;
            }
            c.ecf.centroid_into(&mut other);
            let d = sq_euclidean(&me, &other);
            if d < best {
                best = d;
            }
        }
        best
    }

    fn maybe_refresh_variances(&mut self) {
        self.since_refresh += 1;
        if self.since_refresh >= self.config.variance_refresh_interval {
            self.since_refresh = 0;
            self.global.refresh(self.clusters.iter().map(|c| &c.ecf));
            self.refresh_inv_coefficients();
        }
    }

    /// Re-derives the cached `1/(thresh·σ_j²)` coefficients after a global
    /// variance refresh.
    fn refresh_inv_coefficients(&mut self) {
        if let SimilarityMode::DimensionCounting { thresh } = self.config.similarity {
            self.global
                .inverse_coefficients_into(thresh, &mut self.scratch_inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_common::ClassLabel;

    use ustream_common::Timestamp;

    fn pt(values: &[f64], errors: &[f64], t: Timestamp) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), errors.to_vec(), t, None)
    }

    fn config(n_micro: usize, dims: usize) -> UMicroConfig {
        UMicroConfig::new(n_micro, dims).unwrap()
    }

    #[test]
    fn first_point_seeds_cluster() {
        let mut alg = UMicro::new(config(4, 2));
        let out = alg.insert(&pt(&[1.0, 1.0], &[0.1, 0.1], 1));
        assert!(out.created);
        assert_eq!(out.evicted, None);
        assert_eq!(alg.micro_clusters().len(), 1);
        assert_eq!(alg.points_processed(), 1);
    }

    #[test]
    fn nearby_uncertain_points_absorb_once_budget_full() {
        let mut alg = UMicro::new(config(2, 2));
        // Bootstrap: two singleton seeds fill the budget.
        alg.insert(&pt(&[0.0, 0.0], &[0.5, 0.5], 1));
        alg.insert(&pt(&[20.0, 20.0], &[0.5, 0.5], 2));
        // A close noisy point now absorbs into the origin seed (its
        // uncertain radius √(2Σψ²) = 1 gives a 3σ boundary of 3).
        let out = alg.insert(&pt(&[0.3, -0.2], &[0.5, 0.5], 3));
        assert!(!out.created, "close noisy point should absorb");
        assert_eq!(alg.micro_clusters().len(), 2);
        assert_eq!(alg.micro_clusters()[0].ecf.point_count(), 2);
    }

    #[test]
    fn bootstrap_fills_budget_with_singletons() {
        let mut alg = UMicro::new(config(3, 1));
        // Identical points still seed separate clusters until the budget
        // fills (§II-A).
        for t in 1..=3u64 {
            let out = alg.insert(&pt(&[0.0], &[0.2], t));
            assert!(out.created);
            assert_eq!(out.evicted, None);
        }
        assert_eq!(alg.micro_clusters().len(), 3);
        // The next identical point absorbs instead.
        let out = alg.insert(&pt(&[0.0], &[0.2], 4));
        assert!(!out.created);
    }

    #[test]
    fn distant_point_creates_cluster() {
        let mut alg = UMicro::new(config(2, 2));
        alg.insert(&pt(&[0.0, 0.0], &[0.1, 0.1], 1));
        alg.insert(&pt(&[0.1, 0.1], &[0.1, 0.1], 2));
        // Budget full; a distant point must evict the least recently
        // updated seed rather than being absorbed.
        let out = alg.insert(&pt(&[50.0, 50.0], &[0.1, 0.1], 3));
        assert!(out.created);
        assert_eq!(out.evicted, Some(0));
        assert_eq!(alg.micro_clusters().len(), 2);
    }

    #[test]
    fn distant_point_creates_cluster_uncorrected_mode() {
        use crate::config::BoundaryMode;
        let mut alg = UMicro::new(config(2, 2).with_boundary_mode(BoundaryMode::UncertainRadius));
        alg.insert(&pt(&[0.0, 0.0], &[0.1, 0.1], 1));
        alg.insert(&pt(&[0.1, 0.1], &[0.1, 0.1], 2));
        let out = alg.insert(&pt(&[50.0, 50.0], &[0.1, 0.1], 3));
        assert!(out.created);
        assert_eq!(out.evicted, Some(0));
        assert_eq!(alg.micro_clusters().len(), 2);
    }

    #[test]
    fn budget_enforced_by_lru_eviction() {
        let mut alg = UMicro::new(config(2, 1));
        // Three mutually distant singletons with tiny errors.
        alg.insert(&pt(&[0.0], &[0.01], 1));
        alg.insert(&pt(&[100.0], &[0.01], 2));
        // 250 is farther from the nearest seed (150) than that seed's
        // borrowed boundary (100), so a new cluster is created.
        let out = alg.insert(&pt(&[250.0], &[0.01], 3));
        assert!(out.created);
        // The least recently updated cluster (t=1, centred at 0) is evicted.
        assert_eq!(out.evicted, Some(0));
        assert_eq!(alg.micro_clusters().len(), 2);
        let centroids: Vec<f64> = alg
            .micro_clusters()
            .iter()
            .map(|c| c.ecf.centroid()[0])
            .collect();
        assert!(centroids.contains(&100.0));
        assert!(centroids.contains(&250.0));
    }

    #[test]
    fn eviction_never_removes_the_new_cluster() {
        let mut alg = UMicro::new(config(1, 1));
        alg.insert(&pt(&[0.0], &[0.01], 5));
        // Same timestamp as existing cluster: tie must evict the *old* one.
        let out = alg.insert(&pt(&[100.0], &[0.01], 5));
        assert!(out.created);
        assert_eq!(out.evicted, Some(0));
        assert_eq!(alg.micro_clusters()[0].id, 1);
    }

    #[test]
    fn two_blobs_end_up_in_distinct_clusters() {
        let mut alg = UMicro::new(config(8, 2));
        let mut t = 0;
        for i in 0..40 {
            t += 1;
            let wiggle = (i % 5) as f64 * 0.05;
            alg.insert(&pt(&[wiggle, -wiggle], &[0.2, 0.2], t));
            t += 1;
            alg.insert(&pt(&[10.0 + wiggle, 10.0 - wiggle], &[0.2, 0.2], t));
        }
        // Both blobs must be represented and no cluster may straddle them.
        assert!(alg.micro_clusters().len() >= 2);
        for c in alg.micro_clusters() {
            let cen = c.ecf.centroid();
            let near_a = cen[0] < 5.0;
            let near_b = cen[0] > 5.0;
            assert!(near_a || near_b);
            if c.ecf.point_count() > 1 {
                // Multi-point clusters must sit tightly inside one blob.
                assert!(cen[0] < 2.0 || cen[0] > 8.0, "straddling centroid: {cen:?}");
            }
        }
    }

    #[test]
    fn ids_are_stable_and_unique() {
        let mut alg = UMicro::new(config(3, 1));
        let mut seen = std::collections::HashSet::new();
        for i in 0..20 {
            let out = alg.insert(&pt(&[(i * 37 % 11) as f64 * 50.0], &[0.01], i as Timestamp));
            if out.created {
                assert!(seen.insert(out.cluster_id), "id reuse: {}", out.cluster_id);
            }
        }
    }

    #[test]
    fn snapshot_matches_live_state() {
        let mut alg = UMicro::new(config(4, 1));
        alg.insert(&pt(&[0.0], &[0.1], 1));
        alg.insert(&pt(&[100.0], &[0.1], 2));
        let snap = alg.snapshot();
        assert_eq!(snap.len(), 2);
        for c in alg.micro_clusters() {
            let in_snap = &snap.clusters[&c.id];
            assert_eq!(in_snap.cf1(), c.ecf.cf1());
        }
    }

    #[test]
    fn macro_clustering_groups_micro_clusters() {
        let mut alg = UMicro::new(config(20, 2));
        let mut t = 0;
        for i in 0..60 {
            t += 1;
            let (cx, cy) = match i % 3 {
                0 => (0.0, 0.0),
                1 => (20.0, 0.0),
                _ => (0.0, 20.0),
            };
            let w = (i % 4) as f64 * 0.1;
            alg.insert(&pt(&[cx + w, cy - w], &[0.3, 0.3], t));
        }
        let mac = alg.macro_cluster(3, 9);
        assert_eq!(mac.centroids.len(), 3);
        // Each macro centroid should land near one of the three blobs.
        for c in &mac.centroids {
            let near = [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0)]
                .iter()
                .any(|(x, y)| (c[0] - x).abs() < 3.0 && (c[1] - y).abs() < 3.0);
            assert!(near, "macro centroid {c:?} near no blob");
        }
    }

    #[test]
    fn expected_distance_mode_also_works() {
        let mut alg = UMicro::new(config(2, 2).with_expected_distance());
        alg.insert(&pt(&[0.0, 0.0], &[0.3, 0.3], 1));
        alg.insert(&pt(&[0.2, 0.2], &[0.3, 0.3], 2));
        let out = alg.insert(&pt(&[30.0, 30.0], &[0.3, 0.3], 3));
        assert!(out.created);
        assert_eq!(alg.micro_clusters().len(), 2);
        // And a point near the surviving seeds absorbs.
        let out = alg.insert(&pt(&[0.1, 0.1], &[0.3, 0.3], 4));
        assert!(!out.created);
    }

    #[test]
    fn labels_do_not_affect_clustering() {
        let mut a = UMicro::new(config(4, 1));
        let mut b = UMicro::new(config(4, 1));
        for i in 0..30u64 {
            let x = (i % 3) as f64 * 40.0;
            let unl = pt(&[x], &[0.1], i);
            let lab = unl.clone().with_label(ClassLabel((i % 2) as u32));
            a.insert(&unl);
            b.insert(&lab);
        }
        assert_eq!(a.micro_clusters().len(), b.micro_clusters().len());
        for (ca, cb) in a.micro_clusters().iter().zip(b.micro_clusters()) {
            assert_eq!(ca.ecf.cf1(), cb.ecf.cf1());
        }
    }

    #[test]
    fn restore_round_trips_state() {
        let mut alg = UMicro::new(config(6, 2));
        for i in 0..100u64 {
            let x = (i % 3) as f64 * 30.0;
            alg.insert(&pt(&[x, -x], &[0.4, 0.4], i));
        }
        let snap = alg.snapshot();
        let restored = UMicro::restore(config(6, 2), &snap);
        assert_eq!(restored.micro_clusters().len(), alg.micro_clusters().len());
        assert_eq!(restored.points_processed(), 100);
        for (a, b) in alg.micro_clusters().iter().zip(restored.micro_clusters()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.ecf.cf1(), b.ecf.cf1());
        }
        // Fresh ids continue past the restored ones.
        let max_id = alg.micro_clusters().iter().map(|c| c.id).max().unwrap();
        let mut restored = restored;
        let out = restored.insert(&pt(&[999.0, 999.0], &[0.4, 0.4], 101));
        assert!(out.created);
        assert!(out.cluster_id > max_id, "id reuse after restore");
        // Global variances were rebuilt from the snapshot.
        assert!(restored.global_variances()[0] > 1.0);
    }

    #[test]
    fn restore_then_stream_matches_continuous_run() {
        // Split a stream at a variance-refresh boundary: restoring there
        // and continuing must equal the uninterrupted run exactly.
        let mut cfg = config(8, 1);
        cfg.variance_refresh_interval = 50;
        let points: Vec<UncertainPoint> = (0..200u64)
            .map(|i| pt(&[(i % 4) as f64 * 25.0], &[0.3], i))
            .collect();

        let mut continuous = UMicro::new(cfg.clone());
        for p in &points {
            continuous.insert(p);
        }

        let mut first_half = UMicro::new(cfg.clone());
        for p in &points[..100] {
            first_half.insert(p);
        }
        let mut resumed = UMicro::restore(cfg, &first_half.snapshot());
        for p in &points[100..] {
            resumed.insert(p);
        }
        assert_eq!(
            continuous.micro_clusters().len(),
            resumed.micro_clusters().len()
        );
        let mut a: Vec<_> = continuous.micro_clusters().iter().map(|c| c.id).collect();
        let mut b: Vec<_> = resumed.micro_clusters().iter().map(|c| c.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "cluster identity must survive restore");
    }

    #[test]
    fn nan_point_is_rejected_not_absorbed() {
        let mut alg = UMicro::new(config(4, 2));
        alg.insert(&pt(&[0.0, 0.0], &[0.1, 0.1], 1));
        alg.insert(&pt(&[5.0, 5.0], &[0.1, 0.1], 2));
        let before: Vec<_> = alg
            .micro_clusters()
            .iter()
            .map(|c| (c.id, c.ecf.cf1().to_vec()))
            .collect();
        let out = alg.insert(&pt(&[f64::NAN, 1.0], &[0.1, 0.1], 3));
        assert!(out.is_rejected());
        assert_eq!(out.cluster_id, InsertOutcome::REJECTED_ID);
        // No statistic moved and the counter did not advance.
        assert_eq!(alg.points_processed(), 2);
        let after: Vec<_> = alg
            .micro_clusters()
            .iter()
            .map(|c| (c.id, c.ecf.cf1().to_vec()))
            .collect();
        assert_eq!(before, after);
        // Infinity is rejected the same way.
        assert!(alg
            .insert(&pt(&[f64::INFINITY, 0.0], &[0.1, 0.1], 4))
            .is_rejected());
        // A sane point still clusters normally afterwards.
        assert!(!alg.insert(&pt(&[0.1, 0.1], &[0.1, 0.1], 5)).is_rejected());
    }

    #[test]
    fn export_import_state_continues_identically() {
        let mut cfg = config(8, 1);
        cfg.variance_refresh_interval = 37; // deliberately misaligned split
        let points: Vec<UncertainPoint> = (0..200u64)
            .map(|i| pt(&[(i % 4) as f64 * 25.0 + (i % 7) as f64 * 0.1], &[0.3], i))
            .collect();

        let mut continuous = UMicro::new(cfg.clone());
        for p in &points {
            continuous.insert(p);
        }

        let mut first_half = UMicro::new(cfg.clone());
        for p in &points[..101] {
            first_half.insert(p);
        }
        let state = first_half.export_state();
        let mut resumed = UMicro::new(cfg);
        resumed.import_state(&state).unwrap();
        for p in &points[101..] {
            resumed.insert(p);
        }
        // Bit-for-bit identical final state — the split point was NOT on a
        // variance-refresh boundary, which snapshot-based restore cannot
        // survive but full-state restore must.
        assert_eq!(
            continuous.micro_clusters().len(),
            resumed.micro_clusters().len()
        );
        for (a, b) in continuous
            .micro_clusters()
            .iter()
            .zip(resumed.micro_clusters())
        {
            assert_eq!(a.id, b.id);
            assert_eq!(a.ecf.cf1(), b.ecf.cf1());
            assert_eq!(a.ecf.cf2(), b.ecf.cf2());
            assert_eq!(a.ecf.ef2(), b.ecf.ef2());
        }
        assert_eq!(continuous.points_processed(), resumed.points_processed());
    }

    #[test]
    fn import_state_rejects_corrupt_states() {
        let mut alg = UMicro::new(config(4, 2));
        alg.insert(&pt(&[0.0, 0.0], &[0.1, 0.1], 1));
        let mut state = alg.export_state();
        state.summaries.pop();
        let mut target = UMicro::new(config(4, 2));
        assert!(target.import_state(&state).is_err());
        // Dimension mismatch is caught too.
        let state = alg.export_state();
        let mut wrong_dims = UMicro::new(config(4, 3));
        assert!(wrong_dims.import_state(&state).is_err());
    }

    #[test]
    fn variance_refresh_populates_globals() {
        let mut cfg = config(8, 2);
        cfg.variance_refresh_interval = 5;
        let mut alg = UMicro::new(cfg);
        for i in 0..20u64 {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            alg.insert(&pt(&[x, 0.5], &[0.1, 0.1], i));
        }
        let vars = alg.global_variances();
        assert!(vars[0] > 1.0, "dim 0 variance should be large: {vars:?}");
        assert!(vars[1] < vars[0]);
    }
}
