//! Offline macro-clustering over uncertain micro-cluster summaries.
//!
//! Micro-clusters are an intermediate statistical representation; the
//! user-facing clusters ("higher level macro-clusters", §II-D) are obtained
//! by clustering the micro-cluster centroids with a weighted k-means where
//! each centroid carries the weight of its micro-cluster — exactly the
//! CluStream offline phase, reused for the uncertain setting.

use crate::ecf::Ecf;
use ustream_common::AdditiveFeature;

pub use ustream_kmeans::MacroClustering;

/// Runs weighted k-means over `(id, ECF)` pairs; the ECF centroid carries
/// the cluster's (possibly decayed) weight.
pub fn macro_cluster_ecfs<'a>(
    clusters: impl Iterator<Item = (u64, &'a Ecf)>,
    k: usize,
    seed: u64,
) -> MacroClustering {
    ustream_kmeans::macro_cluster_weighted(
        clusters.map(|(id, ecf)| (id, ecf.centroid(), ecf.weight())),
        k,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_common::UncertainPoint;

    fn ecf_at(x: f64, y: f64, n: usize) -> Ecf {
        let mut e = Ecf::empty(2);
        for i in 0..n {
            e.insert(&UncertainPoint::new(
                vec![x + (i % 3) as f64 * 0.01, y],
                vec![0.1, 0.1],
                i as u64,
                None,
            ));
        }
        e
    }

    #[test]
    fn groups_micro_centroids() {
        let micro = [
            (1u64, ecf_at(0.0, 0.0, 5)),
            (2, ecf_at(0.2, 0.1, 5)),
            (3, ecf_at(10.0, 10.0, 5)),
            (4, ecf_at(10.1, 9.9, 5)),
        ];
        let mac = macro_cluster_ecfs(micro.iter().map(|(i, e)| (*i, e)), 2, 7);
        assert_eq!(mac.k(), 2);
        assert_eq!(mac.micro_assignments.len(), 4);
        assert_eq!(mac.macro_of_micro(1), mac.macro_of_micro(2));
        assert_eq!(mac.macro_of_micro(3), mac.macro_of_micro(4));
        assert_ne!(mac.macro_of_micro(1), mac.macro_of_micro(3));
        // Weights: 10 points per side.
        assert!((mac.weights.iter().sum::<f64>() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn assign_routes_points_to_nearest_macro() {
        let micro = [(1u64, ecf_at(0.0, 0.0, 4)), (2, ecf_at(10.0, 10.0, 4))];
        let mac = macro_cluster_ecfs(micro.iter().map(|(i, e)| (*i, e)), 2, 1);
        let near_origin = mac.assign(&[0.5, -0.5]);
        let near_ten = mac.assign(&[9.0, 11.0]);
        assert_ne!(near_origin, near_ten);
    }

    #[test]
    fn empty_input_yields_empty_result() {
        let mac = macro_cluster_ecfs(std::iter::empty(), 3, 0);
        assert_eq!(mac.k(), 0);
        assert!(mac.micro_assignments.is_empty());
    }

    #[test]
    fn zero_weight_clusters_skipped() {
        let empty = Ecf::empty(2);
        let full = ecf_at(1.0, 1.0, 3);
        let micro = [(1u64, empty), (2, full)];
        let mac = macro_cluster_ecfs(micro.iter().map(|(i, e)| (*i, e)), 2, 0);
        assert_eq!(mac.micro_assignments.len(), 1);
        assert_eq!(mac.micro_assignments[0].0, 2);
    }
}
