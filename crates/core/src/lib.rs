//! # umicro
//!
//! The primary contribution of *"A Framework for Clustering Uncertain Data
//! Streams"* (Charu C. Aggarwal & Philip S. Yu, ICDE 2008): **UMicro**, a
//! one-pass micro-clustering algorithm for streams of uncertain records.
//!
//! Every record is a pair `(X, ψ(X))`: an instantiation plus per-dimension
//! error standard deviations. UMicro maintains up to `n_micro` *error-based
//! micro-clusters*, each summarised by an [`Ecf`] vector
//! `(CF2x, EF2x, CF1x, t, n)` — the classic cluster feature vector extended
//! with the error second moment `EF2x`. The ECF is additive and
//! subtractive, which powers both constant-time insertion and horizon
//! queries over a pyramidal snapshot store.
//!
//! Algorithmic pipeline per arriving point (Figure 1 of the paper):
//!
//! 1. find the closest micro-cluster under the *expected* distance
//!    (Lemma 2.2) or the noise-robust *dimension-counting similarity*;
//! 2. test the point against the cluster's *uncertainty boundary* —
//!    `t` standard deviations of the expected point-to-centroid distance;
//! 3. inside → absorb the point into the ECF; outside → create a singleton
//!    micro-cluster, evicting the least-recently-updated one if the budget
//!    `n_micro` is exhausted.
//!
//! The [`decayed`] module adds the paper's exponential time-decay variant
//! (Definition 2.3) with lazy weight maintenance, and [`horizon`] implements
//! the pyramidal-time-frame integration for interactive horizon-specific
//! clustering.
//!
//! ```
//! use umicro::{UMicro, UMicroConfig};
//! use ustream_common::UncertainPoint;
//!
//! let mut alg = UMicro::new(UMicroConfig::new(2, 2).unwrap());
//! // Two seed readings fill the micro-cluster budget …
//! alg.insert(&UncertainPoint::new(vec![0.1, -0.2], vec![0.3, 0.3], 1, None));
//! alg.insert(&UncertainPoint::new(vec![10.0, 10.0], vec![0.3, 0.3], 2, None));
//! // … and a third noisy reading near the first is absorbed into it.
//! let outcome = alg.insert(&UncertainPoint::new(vec![-0.1, 0.2], vec![0.3, 0.3], 3, None));
//! assert!(!outcome.created);
//! assert_eq!(alg.micro_clusters().len(), 2);
//! ```

pub mod algorithm;
pub mod boundary;
pub mod classify;
pub mod config;
pub mod decayed;
pub mod distance;
pub mod ecf;
pub mod evolution;
pub mod horizon;
pub mod kernel;
pub mod macrocluster;
pub mod online;
pub mod query;
pub mod similarity;
pub mod state;

pub use algorithm::{InsertOutcome, MicroCluster, UMicro};
pub use classify::{Classification, MicroClassifier};
pub use config::{BoundaryMode, SimilarityMode, UMicroConfig};
pub use decayed::DecayedUMicro;
pub use ecf::Ecf;
pub use evolution::{compare_windows, ClusterChange, EvolutionReport};
pub use horizon::HorizonAnalyzer;
pub use kernel::{ClusterKernel, KernelRow};
pub use macrocluster::MacroClustering;
pub use online::OnlineClusterer;
pub use query::{ClusterQuery, QueryStats};
pub use state::ClustererState;
