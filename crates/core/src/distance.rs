//! Expected-distance computation (Lemmas 2.1 and 2.2 of the paper).
//!
//! The centroid `Z` of an uncertain cluster is itself a random variable, so
//! "distance from point to cluster" must be taken in expectation:
//!
//! ```text
//! v = E[‖X − Z‖²] = E[‖X‖²] + E[‖Z‖²] − 2·E[X]·E[Z]
//!   = Σ_j x_j² + Σ_j ψ_j(X)²                 (point second moment + error)
//!   + Σ_j CF1_j²/W² + Σ_j EF2_j/W²            (Lemma 2.1)
//!   − 2 Σ_j x_j · CF1_j / W                   (cross term)
//! ```
//!
//! Everything is computable in `O(d)` from the point and the ECF — the same
//! asymptotic cost as a deterministic distance, which the paper stresses is
//! essential because distance evaluation dominates the stream loop.

use crate::ecf::Ecf;
use ustream_common::UncertainPoint;

/// Maps a possibly-poisoned squared distance to a rankable value.
///
/// `f64::max(NaN, 0.0)` evaluates to `0.0`, so the cancellation clamps in
/// this module would silently turn a NaN-bearing point into the *nearest*
/// candidate at distance zero. NaN therefore maps to `+∞` (a non-finite
/// input can never win a nearest scan or be absorbed); genuine negative
/// cancellation residue still clamps to zero.
#[inline]
pub(crate) fn sanitize_sq(d: f64) -> f64 {
    if d.is_nan() {
        f64::INFINITY
    } else {
        d.max(0.0)
    }
}

/// Expected squared distance between an uncertain point and the centroid of
/// an uncertain cluster (Lemma 2.2). Clamped at zero: the exact expression
/// is non-negative, but floating-point cancellation can leave `−1e-16`.
/// NaN inputs rank at `+∞` — see [`sanitize_sq`].
pub fn expected_sq_distance(point: &UncertainPoint, ecf: &Ecf) -> f64 {
    debug_assert_eq!(point.dims(), ecf.dims());
    let w = ecf.weight();
    if w <= 0.0 {
        // Empty cluster: fall back to the point's own second moment; callers
        // never rank empty clusters, this is a defensive value.
        return point.values().iter().map(|x| x * x).sum::<f64>() + point.error_energy();
    }
    let (values, errors) = (point.values(), point.errors());
    let (cf1, ef2) = (ecf.cf1(), ecf.ef2());
    let w2 = w * w;
    let mut acc = 0.0;
    for j in 0..values.len() {
        let x = values[j];
        let psi = errors[j];
        acc += cf1[j] * cf1[j] / w2 + ef2[j] / w2 + psi * psi + x * x - 2.0 * x * cf1[j] / w;
    }
    sanitize_sq(acc)
}

/// The dimension-`j` component of the expected squared distance:
/// `E[(X_j − Z_j)²] = (x_j − c_j)² + ψ_j² + EF2_j/W²` where `c_j` is the
/// centroid coordinate. Summing over `j` reproduces
/// [`expected_sq_distance`]; the per-dimension form feeds the
/// dimension-counting similarity.
#[inline]
pub fn expected_sq_distance_dim(point: &UncertainPoint, ecf: &Ecf, j: usize) -> f64 {
    let w = ecf.weight();
    if w <= 0.0 {
        let x = point.values()[j];
        let psi = point.errors()[j];
        return x * x + psi * psi;
    }
    let x = point.values()[j];
    let psi = point.errors()[j];
    let c = ecf.cf1()[j] / w;
    let diff = x - c;
    sanitize_sq(diff * diff + psi * psi + ecf.ef2()[j] / (w * w))
}

/// Writes every dimension component of the expected squared distance into
/// `out` in one pass: `out[j] = E[(X_j − Z_j)²]`.
///
/// Equivalent to calling [`expected_sq_distance_dim`] for each `j`, but the
/// weight load, the `w <= 0` branch and the `1/w`, `1/w²` divisions are
/// hoisted out of the per-dimension loop — this is the form the
/// dimension-counting similarity consumes.
pub fn expected_sq_distance_dims(point: &UncertainPoint, ecf: &Ecf, out: &mut [f64]) {
    debug_assert_eq!(point.dims(), ecf.dims());
    debug_assert_eq!(out.len(), ecf.dims());
    let (values, errors) = (point.values(), point.errors());
    let w = ecf.weight();
    if w <= 0.0 {
        for j in 0..out.len() {
            let x = values[j];
            let psi = errors[j];
            out[j] = x * x + psi * psi;
        }
        return;
    }
    let (cf1, ef2) = (ecf.cf1(), ecf.ef2());
    let inv_w = 1.0 / w;
    let inv_w2 = inv_w * inv_w;
    for j in 0..out.len() {
        let diff = values[j] - cf1[j] * inv_w;
        let psi = errors[j];
        out[j] = sanitize_sq(diff * diff + psi * psi + ef2[j] * inv_w2);
    }
}

/// Error-corrected squared distance between a point's *clean* position and
/// the cluster centroid: per dimension,
/// `max{0, (x_j − c_j)² − ψ_j² − EF2_j/W²}`.
///
/// The realised `(x_j − c_j)²` over-estimates the clean squared distance by
/// the point's error variance plus the centroid's error variance, both of
/// which are known; subtracting them de-noises the geometry. Used by the
/// error-corrected uncertainty boundary.
pub fn corrected_sq_distance(point: &UncertainPoint, ecf: &Ecf) -> f64 {
    debug_assert_eq!(point.dims(), ecf.dims());
    let w = ecf.weight();
    if w <= 0.0 {
        return point.values().iter().map(|x| x * x).sum();
    }
    let (values, errors) = (point.values(), point.errors());
    let (cf1, ef2) = (ecf.cf1(), ecf.ef2());
    let w2 = w * w;
    let mut acc = 0.0;
    for j in 0..values.len() {
        let diff = values[j] - cf1[j] / w;
        let psi = errors[j];
        let c = diff * diff - psi * psi - ef2[j] / w2;
        if c.is_nan() || c == f64::NEG_INFINITY {
            // A non-finite coordinate or error makes the correction
            // undefined for this dimension; rank the point infinitely far
            // instead of letting the clamp below read the poisoned
            // dimension as distance zero.
            return f64::INFINITY;
        }
        acc += c.max(0.0);
    }
    acc
}

/// Expected squared distance between the centroids of two uncertain
/// clusters, used by merge heuristics and macro-clustering diagnostics:
/// `E[‖Z_a − Z_b‖²] = ‖c_a − c_b‖² + Σ_j EF2a_j/Wa² + Σ_j EF2b_j/Wb²`
/// (cross terms vanish by independence).
pub fn expected_centroid_sq_distance(a: &Ecf, b: &Ecf) -> f64 {
    debug_assert_eq!(a.dims(), b.dims());
    let (wa, wb) = (a.weight(), b.weight());
    if wa <= 0.0 || wb <= 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for j in 0..a.dims() {
        let ca = a.cf1()[j] / wa;
        let cb = b.cf1()[j] / wb;
        let diff = ca - cb;
        acc += diff * diff + a.ef2()[j] / (wa * wa) + b.ef2()[j] / (wb * wb);
    }
    sanitize_sq(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_common::UncertainPoint;

    fn pt(values: &[f64], errors: &[f64]) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), errors.to_vec(), 0, None)
    }

    #[test]
    fn reduces_to_plain_distance_when_certain() {
        // ψ = 0 everywhere → expected distance = squared Euclidean distance
        // to the deterministic centroid.
        let mut ecf = Ecf::empty(2);
        ecf.insert(&pt(&[0.0, 0.0], &[0.0, 0.0]));
        ecf.insert(&pt(&[2.0, 2.0], &[0.0, 0.0]));
        // centroid (1, 1).
        let x = pt(&[4.0, 5.0], &[0.0, 0.0]);
        let want = (4.0f64 - 1.0).powi(2) + (5.0f64 - 1.0).powi(2);
        assert!((expected_sq_distance(&x, &ecf) - want).abs() < 1e-12);
    }

    #[test]
    fn per_dimension_components_sum_to_total() {
        let mut ecf = Ecf::empty(3);
        ecf.insert(&pt(&[1.0, -2.0, 0.5], &[0.3, 0.1, 0.0]));
        ecf.insert(&pt(&[2.0, 1.0, -0.5], &[0.2, 0.4, 0.1]));
        let x = pt(&[0.0, 3.0, 1.0], &[0.5, 0.0, 0.2]);
        let total = expected_sq_distance(&x, &ecf);
        let summed: f64 = (0..3).map(|j| expected_sq_distance_dim(&x, &ecf, j)).sum();
        assert!(
            (total - summed).abs() < 1e-10,
            "total={total} summed={summed}"
        );
    }

    #[test]
    fn one_pass_components_match_per_dim_calls() {
        let mut ecf = Ecf::empty(3);
        ecf.insert(&pt(&[1.0, -2.0, 0.5], &[0.3, 0.1, 0.0]));
        ecf.insert(&pt(&[2.0, 1.0, -0.5], &[0.2, 0.4, 0.1]));
        let x = pt(&[0.0, 3.0, 1.0], &[0.5, 0.0, 0.2]);
        let mut out = [0.0; 3];
        expected_sq_distance_dims(&x, &ecf, &mut out);
        for (j, &got) in out.iter().enumerate() {
            let want = expected_sq_distance_dim(&x, &ecf, j);
            assert!((got - want).abs() < 1e-12, "dim {j}: {got} vs {want}");
        }
        // Empty-cluster defensive path agrees too.
        let empty = Ecf::empty(3);
        expected_sq_distance_dims(&x, &empty, &mut out);
        for (j, &got) in out.iter().enumerate() {
            let want = expected_sq_distance_dim(&x, &empty, j);
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn point_error_inflates_distance() {
        let mut ecf = Ecf::empty(1);
        ecf.insert(&pt(&[0.0], &[0.0]));
        ecf.insert(&pt(&[2.0], &[0.0]));
        let clean = pt(&[1.0], &[0.0]);
        let noisy = pt(&[1.0], &[3.0]);
        let d_clean = expected_sq_distance(&clean, &ecf);
        let d_noisy = expected_sq_distance(&noisy, &ecf);
        // Same instantiation at the centroid: clean distance is 0, noisy
        // distance is exactly ψ² = 9.
        assert!(d_clean.abs() < 1e-12);
        assert!((d_noisy - 9.0).abs() < 1e-12);
    }

    #[test]
    fn cluster_error_inflates_distance() {
        let mut clean = Ecf::empty(1);
        clean.insert(&pt(&[0.0], &[0.0]));
        clean.insert(&pt(&[2.0], &[0.0]));
        let mut noisy = Ecf::empty(1);
        noisy.insert(&pt(&[0.0], &[2.0]));
        noisy.insert(&pt(&[2.0], &[2.0]));
        let x = pt(&[1.0], &[0.0]);
        // EF2/W² = 8/4 = 2.
        assert!(
            (expected_sq_distance(&x, &noisy) - expected_sq_distance(&x, &clean) - 2.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn monte_carlo_validates_lemma_2_2() {
        // Simulate the generative model: cluster points y_i + N(0, ψ_i),
        // point x + N(0, ψ_x); compare the analytic expectation against the
        // empirical mean of ‖X − Z‖².
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use rand_distr::{Distribution, Normal};

        let member_values = [[0.0, 1.0], [2.0, -1.0], [1.0, 0.5]];
        let member_errors = [[0.5, 0.2], [0.3, 0.6], [0.4, 0.4]];
        let x_values = [3.0, 2.0];
        let x_errors = [0.7, 0.3];

        let mut ecf = Ecf::empty(2);
        for (v, e) in member_values.iter().zip(&member_errors) {
            ecf.insert(&pt(v, e));
        }
        let x = pt(&x_values, &x_errors);
        let analytic = expected_sq_distance(&x, &ecf);

        let mut rng = StdRng::seed_from_u64(42);
        let trials = 200_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            // Instantiate the true (latent) point: X = x + e_x.
            let mut x_sample = [0.0; 2];
            for j in 0..2 {
                let n = Normal::new(0.0, x_errors[j]).unwrap();
                x_sample[j] = x_values[j] + n.sample(&mut rng);
            }
            // Instantiate the centroid: mean of latent member points.
            let mut z = [0.0; 2];
            for (v, e) in member_values.iter().zip(&member_errors) {
                for j in 0..2 {
                    let n = Normal::new(0.0, e[j]).unwrap();
                    z[j] += (v[j] + n.sample(&mut rng)) / member_values.len() as f64;
                }
            }
            acc += (0..2)
                .map(|j| (x_sample[j] - z[j]) * (x_sample[j] - z[j]))
                .sum::<f64>();
        }
        let empirical = acc / trials as f64;
        let rel = (analytic - empirical).abs() / empirical;
        assert!(
            rel < 0.02,
            "Lemma 2.2 mismatch: analytic={analytic}, empirical={empirical}, rel={rel}"
        );
    }

    #[test]
    fn centroid_distance_symmetric_and_zero_for_self() {
        let mut a = Ecf::empty(2);
        a.insert(&pt(&[0.0, 0.0], &[0.1, 0.1]));
        a.insert(&pt(&[1.0, 1.0], &[0.1, 0.1]));
        let mut b = Ecf::empty(2);
        b.insert(&pt(&[5.0, 5.0], &[0.2, 0.2]));
        let dab = expected_centroid_sq_distance(&a, &b);
        let dba = expected_centroid_sq_distance(&b, &a);
        assert!((dab - dba).abs() < 1e-12);
        assert!(dab > 0.0);
    }

    #[test]
    fn nan_coordinate_never_ranks_at_zero() {
        // Regression: `f64::max(NaN, 0.0) == 0.0`, so before the sanitize
        // guard a NaN-bearing point scored distance 0 against every cluster
        // and won every nearest scan.
        let mut ecf = Ecf::empty(2);
        ecf.insert(&pt(&[0.0, 0.0], &[0.1, 0.1]));
        ecf.insert(&pt(&[1.0, 1.0], &[0.1, 0.1]));
        let poison = pt(&[f64::NAN, 0.5], &[0.1, 0.1]);
        assert_eq!(expected_sq_distance(&poison, &ecf), f64::INFINITY);
        assert_eq!(corrected_sq_distance(&poison, &ecf), f64::INFINITY);
        let mut out = [0.0; 2];
        expected_sq_distance_dims(&poison, &ecf, &mut out);
        assert_eq!(out[0], f64::INFINITY);
        assert!(out[1].is_finite());
        assert_eq!(expected_sq_distance_dim(&poison, &ecf, 0), f64::INFINITY);
    }

    #[test]
    fn infinite_error_never_ranks_at_zero() {
        // ψ = +∞ makes the corrected per-dimension term −∞, which the old
        // clamp read as zero. `UncertainPoint::new` rejects non-finite ψ,
        // but serde bypasses the constructor — emulate that path.
        use serde::{Deserialize, Serialize};
        let mut ecf = Ecf::empty(1);
        ecf.insert(&pt(&[0.0], &[0.1]));
        ecf.insert(&pt(&[1.0], &[0.1]));
        let sane = corrected_sq_distance(&pt(&[100.0], &[0.0]), &ecf);
        assert!(sane.is_finite() && sane > 0.0);
        let mut v = pt(&[100.0], &[0.0]).to_value();
        if let serde::Value::Obj(fields) = &mut v {
            for (name, val) in fields.iter_mut() {
                if name == "errors" {
                    *val = serde::Value::Arr(vec![serde::Value::Float(f64::INFINITY)]);
                }
            }
        }
        let poison = UncertainPoint::from_value(&v).expect("bypass construction");
        assert!(!poison.errors_valid());
        assert_eq!(
            corrected_sq_distance(&poison, &ecf),
            f64::INFINITY,
            "infinite ψ must rank infinitely far, not at zero"
        );
    }

    #[test]
    fn empty_cluster_defensive_distance() {
        let ecf = Ecf::empty(2);
        let x = pt(&[3.0, 4.0], &[1.0, 0.0]);
        // ‖x‖² + Σψ² = 25 + 1.
        assert!((expected_sq_distance(&x, &ecf) - 26.0).abs() < 1e-12);
        assert_eq!(expected_centroid_sq_distance(&ecf, &ecf), 0.0);
    }
}
