//! Explicit SIMD backends for the [`ClusterKernel`](super::ClusterKernel)
//! hot path, behind one safe runtime-dispatch point.
//!
//! # Backend matrix
//!
//! | Backend    | Compiled on        | Selected when                         |
//! |------------|--------------------|---------------------------------------|
//! | `Scalar`   | everywhere         | forced, or unavailable fallback       |
//! | `Portable` | everywhere         | no wider unit detected                |
//! | `Avx2`     | `x86_64`           | `is_x86_feature_detected!("avx2")`    |
//! | `Avx512`   | `x86_64`           | `avx512f` (+`avx2` for odd rows)      |
//! | `Neon`     | `aarch64`          | always (NEON is baseline on aarch64)  |
//!
//! # The canonical reduction contract
//!
//! Every backend — scalar included — computes dot products and
//! dimension-counting credits with the *same* floating-point operation
//! sequence, so results are **bitwise identical** across backends:
//!
//! * four independent accumulator lanes; chunk element `j` feeds lane
//!   `j % 4` as `lane += a[j] * b[j]` (separate mul then add — never FMA,
//!   which would change rounding);
//! * tail elements (length not divisible by 4) feed the same
//!   `j % 4` lane they would have occupied in a full chunk;
//! * the final reduction is `(l0 + l1) + (l2 + l3)`.
//!
//! AVX2 maps the four lanes onto one `__m256d`. AVX-512 processes *two
//! cluster rows per `__m512d`* (row `i` in lanes 0–3, row `i+1` in lanes
//! 4–7) so each row still reduces over exactly four canonical lanes.
//! NEON uses two `float64x2_t` halves. The portable backend uses plain
//! `[f64; 4]` arithmetic the autovectorizer can widen.
//!
//! Similarity credits clamp with `max(credit, 0.0)` where a NaN credit
//! (skipped dimension: `0 · ∞`) must clamp to `0`. `f64::max`,
//! `_mm256_max_pd`/`_mm512_max_pd` (NaN in the first operand returns the
//! second) and NEON `vmaxnmq_f64` (IEEE maxNum) all agree on that.
//!
//! # Dispatch
//!
//! [`active`] resolves the backend once (env override
//! [`BACKEND_ENV`], else CPU feature detection) and caches it in an
//! atomic; [`force`] overrides it process-wide (tests, the engine
//! builder's forced-scalar knob). The `_with` variants take an explicit
//! backend and never touch the global — parity tests use those. Calling
//! a `_with` function with a backend that is not compiled in or whose
//! CPU features are absent falls back to the scalar path rather than
//! executing unsupported instructions, so every entry point stays safe.
//!
//! This is the single workspace module sanctioned to contain `unsafe`
//! (the workspace otherwise denies `unsafe_code`); every `unsafe` site
//! carries a `// SAFETY:` justification, enforced by the `safety-comment`
//! ustream-lint rule.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable consulted on first dispatch: `scalar`,
/// `portable`, `avx2`, `avx512`, `neon`, or `auto` (detect). Unknown
/// values and unavailable backends degrade to `scalar`, never to UB.
pub const BACKEND_ENV: &str = "USTREAM_KERNEL_BACKEND";

/// A kernel compute backend. All backends produce bitwise-identical
/// results (see the module docs for the canonical reduction contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Backend {
    /// Canonical four-accumulator scalar Rust; the always-correct
    /// fallback and the parity reference for every other backend.
    Scalar = 1,
    /// Portable `[f64; 4]` lane arithmetic in safe Rust; relies on the
    /// autovectorizer but fixes the reduction order explicitly.
    Portable = 2,
    /// `std::arch` AVX2 intrinsics, 4 × f64 per register.
    Avx2 = 3,
    /// `std::arch` AVX-512F intrinsics, two cluster rows per register
    /// (each row keeps its own four canonical lanes).
    Avx512 = 4,
    /// `std::arch` NEON intrinsics (aarch64), 2 × 2 × f64 per row sweep.
    Neon = 5,
}

#[cfg(target_arch = "x86_64")]
const COMPILED: &[Backend] = &[
    Backend::Scalar,
    Backend::Portable,
    Backend::Avx2,
    Backend::Avx512,
];
#[cfg(target_arch = "aarch64")]
const COMPILED: &[Backend] = &[Backend::Scalar, Backend::Portable, Backend::Neon];
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
const COMPILED: &[Backend] = &[Backend::Scalar, Backend::Portable];

impl Backend {
    /// Stable lower-case name, also accepted by [`Backend::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Portable => "portable",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
            Backend::Neon => "neon",
        }
    }

    /// Parses a backend name (case-insensitive). Returns `None` for
    /// unknown names, including `auto` — callers decide what detection
    /// means in their context.
    pub fn parse(s: &str) -> Option<Backend> {
        let s = s.trim();
        [
            Backend::Scalar,
            Backend::Portable,
            Backend::Avx2,
            Backend::Avx512,
            Backend::Neon,
        ]
        .into_iter()
        .find(|b| s.eq_ignore_ascii_case(b.name()))
    }

    /// Whether this backend is both compiled into the binary and
    /// supported by the running CPU.
    pub fn available(self) -> bool {
        match self {
            Backend::Scalar | Backend::Portable => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => {
                // The odd-row helper and `dot` use AVX2 registers, so
                // the 512-bit backend requires both feature bits.
                is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx2")
            }
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => true,
            #[cfg(not(all(target_arch = "x86_64", target_arch = "aarch64")))]
            _ => false,
        }
    }

    /// All backends compiled into this binary (availability still
    /// depends on the running CPU — see [`Backend::available`]).
    pub fn compiled() -> &'static [Backend] {
        COMPILED
    }

    fn from_u8(v: u8) -> Backend {
        match v {
            2 => Backend::Portable,
            3 => Backend::Avx2,
            4 => Backend::Avx512,
            5 => Backend::Neon,
            _ => Backend::Scalar,
        }
    }
}

/// Best rows found by the fused expected-distance + dimension-counting
/// sweep ([`rank_fused`]): both rankings from one pass over the
/// centroid and error-moment matrices.
#[derive(Clone, Copy, Debug)]
pub struct FusedBest {
    /// Row with the lowest exact expected squared distance (lowest
    /// index wins ties; NaN scores never win).
    pub dist_idx: usize,
    /// Exact expected squared distance `E[‖X − Zᵢ‖²]` of `dist_idx`:
    /// `Σⱼ (xⱼ−cⱼ)² + ψⱼ(x)² + eᵢⱼ` — the per-dimension `v` terms the
    /// similarity credit already computes, summed (Lemma 2.2).
    /// `INFINITY` when the kernel is empty or every score is NaN.
    pub dist_score: f64,
    /// Row with the highest dimension-counting similarity credit
    /// (lowest index wins ties; NaN credits never win).
    pub sim_idx: usize,
    /// Similarity credit of `sim_idx` (`NEG_INFINITY` when empty).
    pub sim: f64,
}

impl FusedBest {
    fn empty() -> FusedBest {
        FusedBest {
            dist_idx: 0,
            dist_score: f64::INFINITY,
            sim_idx: 0,
            sim: f64::NEG_INFINITY,
        }
    }
}

// == Dispatch ===========================================================

/// The resolved backend, cached process-wide. `0` means "not yet
/// resolved"; any other value is a `Backend` discriminant.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Returns the live backend, resolving it on first call from
/// [`BACKEND_ENV`] and CPU feature detection and caching the result.
pub fn active() -> Backend {
    let v = ACTIVE.load(Ordering::Acquire);
    if v != 0 {
        return Backend::from_u8(v);
    }
    let b = resolve();
    ACTIVE.store(b as u8, Ordering::Release);
    b
}

/// Overrides the cached dispatch decision process-wide and returns what
/// is now live. `Some(backend)` forces that backend (an unavailable one
/// degrades to `Scalar`); `None` re-resolves from the environment and
/// CPU detection. Used by tests and the engine builder's backend knob.
pub fn force(choice: Option<Backend>) -> Backend {
    let b = match choice {
        Some(b) if b.available() => b,
        Some(_) => Backend::Scalar,
        None => resolve(),
    };
    ACTIVE.store(b as u8, Ordering::Release);
    b
}

fn resolve() -> Backend {
    if let Ok(raw) = std::env::var(BACKEND_ENV) {
        let raw = raw.trim();
        if !raw.is_empty() && !raw.eq_ignore_ascii_case("auto") {
            match Backend::parse(raw) {
                Some(b) if b.available() => return b,
                // Unknown or unavailable requests degrade to the
                // always-correct path instead of guessing.
                Some(_) | None => return Backend::Scalar,
            }
        }
    }
    detect()
}

/// Feature-detects the widest available backend for this machine,
/// ignoring the environment override and the cached decision.
#[cfg(target_arch = "x86_64")]
pub fn detect() -> Backend {
    if Backend::Avx512.available() {
        Backend::Avx512
    } else if Backend::Avx2.available() {
        Backend::Avx2
    } else {
        Backend::Portable
    }
}

/// Feature-detects the widest available backend for this machine,
/// ignoring the environment override and the cached decision.
#[cfg(target_arch = "aarch64")]
pub fn detect() -> Backend {
    Backend::Neon
}

/// Feature-detects the widest available backend for this machine,
/// ignoring the environment override and the cached decision.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub fn detect() -> Backend {
    Backend::Portable
}

// == Public entry points ================================================

/// Dot product `⟨a, b⟩` on the [`active`] backend.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    dot_with(active(), a, b)
}

/// Dot product on an explicit backend. All backends are bitwise
/// identical; an uncompiled/unavailable backend runs the scalar path.
pub fn dot_with(backend: Backend, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot operand length mismatch");
    match backend {
        Backend::Portable => portable::dot(a, b),
        #[cfg(target_arch = "x86_64")]
        // AVX-512 reuses the AVX2 dot: a single vector pair has only
        // four canonical lanes, so a 512-bit register cannot help.
        Backend::Avx2 | Backend::Avx512 if backend.available() => {
            // SAFETY: the guard above confirmed the CPU supports the
            // feature set `dot_avx2` is compiled with.
            unsafe { x86::dot_avx2(a, b) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => {
            // SAFETY: NEON is baseline on aarch64, and this arm only
            // compiles for aarch64 targets.
            unsafe { neon::dot_neon(a, b) }
        }
        _ => scalar::dot(a, b),
    }
}

/// Expected-distance ranking sweep on the [`active`] backend: returns
/// `(row, score)` minimizing `self_moment[i] − 2·⟨x, cᵢ⟩` (strictly
/// decreasing scan, so the lowest index wins ties and NaN scores never
/// win). An empty kernel returns `(0, INFINITY)`.
pub fn rank_min_score(
    centroids: &[f64],
    self_moment: &[f64],
    dims: usize,
    x: &[f64],
) -> (usize, f64) {
    rank_min_score_with(active(), centroids, self_moment, dims, x)
}

/// [`rank_min_score`] on an explicit backend.
pub fn rank_min_score_with(
    backend: Backend,
    centroids: &[f64],
    self_moment: &[f64],
    dims: usize,
    x: &[f64],
) -> (usize, f64) {
    assert_eq!(x.len(), dims, "point dimensionality mismatch");
    assert_eq!(
        centroids.len(),
        self_moment.len() * dims,
        "centroid matrix shape mismatch"
    );
    match backend {
        Backend::Portable => portable::rank_min(centroids, self_moment, dims, x),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if backend.available() => {
            // SAFETY: the guard above confirmed AVX2 support.
            unsafe { x86::rank_min_avx2(centroids, self_moment, dims, x) }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if backend.available() => {
            // SAFETY: the guard above confirmed AVX-512F + AVX2 support.
            unsafe { x86::rank_min_avx512(centroids, self_moment, dims, x) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => {
            // SAFETY: NEON is baseline on aarch64, and this arm only
            // compiles for aarch64 targets.
            unsafe { neon::rank_min_neon(centroids, self_moment, dims, x) }
        }
        _ => scalar::rank_min(centroids, self_moment, dims, x),
    }
}

/// Fused ranking sweep on the [`active`] backend: one pass over the
/// centroid and per-dimension error matrices yields both the
/// expected-distance argmin and the dimension-counting argmax (see
/// [`FusedBest`]). The distance ranking is a byproduct of the
/// similarity sweep: the per-dimension term `v = (x−c)² + ψ² + e`
/// that feeds the credit clamp sums to the exact expected squared
/// distance, so ranking costs one extra add per lane — no separate
/// dot product. `noise` is the kernel's per-row `EF2/W²` matrix,
/// `errs` the point's per-dimension errors, `inv` the cached
/// `1/(thresh·σ²)` coefficients (`INFINITY` marks skipped dimensions —
/// their credit clamps to zero).
pub fn rank_fused(
    centroids: &[f64],
    noise: &[f64],
    dims: usize,
    x: &[f64],
    errs: &[f64],
    inv: &[f64],
) -> FusedBest {
    rank_fused_with(active(), centroids, noise, dims, x, errs, inv)
}

/// [`rank_fused`] on an explicit backend.
#[allow(clippy::too_many_arguments)]
pub fn rank_fused_with(
    backend: Backend,
    centroids: &[f64],
    noise: &[f64],
    dims: usize,
    x: &[f64],
    errs: &[f64],
    inv: &[f64],
) -> FusedBest {
    assert_eq!(x.len(), dims, "point dimensionality mismatch");
    assert_eq!(errs.len(), dims, "error vector dimensionality mismatch");
    assert_eq!(
        inv.len(),
        dims,
        "coefficient vector dimensionality mismatch"
    );
    assert_eq!(noise.len(), centroids.len(), "noise matrix shape mismatch");
    if dims == 0 {
        return FusedBest::empty();
    }
    assert_eq!(centroids.len() % dims, 0, "centroid matrix shape mismatch");
    let rows = centroids.len() / dims;
    match backend {
        Backend::Portable => portable::rank_fused(centroids, noise, rows, dims, x, errs, inv),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if backend.available() => {
            // SAFETY: the guard above confirmed AVX2 support.
            unsafe { x86::rank_fused_avx2(centroids, noise, rows, dims, x, errs, inv) }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if backend.available() => {
            // SAFETY: the guard above confirmed AVX-512F + AVX2 support.
            unsafe { x86::rank_fused_avx512(centroids, noise, rows, dims, x, errs, inv) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => {
            // SAFETY: NEON is baseline on aarch64, and this arm only
            // compiles for aarch64 targets.
            unsafe { neon::rank_fused_neon(centroids, noise, rows, dims, x, errs, inv) }
        }
        _ => scalar::rank_fused(centroids, noise, rows, dims, x, errs, inv),
    }
}

/// Single-precision pre-ranking pass for the opt-in f32 mode: fills
/// `out[i] = self_moment_f32[i] − 2·⟨x, cᵢ⟩` in f32. This pass has **no**
/// cross-backend parity contract (it only pre-filters candidates; the
/// winner is re-derived in exact canonical f64), so backends may use any
/// lane width here.
pub fn fill_scores_f32(
    centroids: &[f32],
    self_moment: &[f32],
    dims: usize,
    x: &[f32],
    out: &mut [f32],
) {
    fill_scores_f32_with(active(), centroids, self_moment, dims, x, out)
}

/// [`fill_scores_f32`] on an explicit backend.
pub fn fill_scores_f32_with(
    backend: Backend,
    centroids: &[f32],
    self_moment: &[f32],
    dims: usize,
    x: &[f32],
    out: &mut [f32],
) {
    assert_eq!(x.len(), dims, "point dimensionality mismatch");
    assert_eq!(out.len(), self_moment.len(), "score buffer length mismatch");
    assert_eq!(
        centroids.len(),
        self_moment.len() * dims,
        "centroid matrix shape mismatch"
    );
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 if backend.available() => {
            // SAFETY: both backends imply AVX2 support (checked above).
            unsafe { x86::fill_scores_f32_avx2(centroids, self_moment, dims, x, out) }
        }
        _ => portable::fill_scores_f32(centroids, self_moment, dims, x, out),
    }
}

/// Overwrites `dst` with `src` narrowed to `f32` (round-to-nearest).
/// Lives here so the deliberate precision loss stays inside the one
/// module scoped for it.
pub fn narrow_into(dst: &mut Vec<f32>, src: &[f64]) {
    dst.clear();
    dst.extend(src.iter().map(|v| *v as f32));
}

/// Narrows one matrix row in place: `dst[j] = src[j] as f32`.
pub fn narrow_row(dst: &mut [f32], src: &[f64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = *s as f32;
    }
}

/// Narrows a single value to `f32` (round-to-nearest).
pub fn narrow(v: f64) -> f32 {
    v as f32
}

/// Relative error bound of an f32 score `sm − 2·⟨x, c⟩` over `dims`
/// dimensions, used to build the sound candidate margin for the f32
/// pre-ranking pass: `dims` rounding steps for the dot accumulation
/// (any association order) plus a cushion for the narrowing of inputs,
/// the multiply-by-two, and the subtraction. Each step contributes at
/// most one half-ulp (`2⁻²⁴`) relative error in f32.
pub fn f32_rank_slack(dims: usize) -> f64 {
    const F32_HALF_ULP: f64 = 1.0 / 16_777_216.0; // 2⁻²⁴
    (dims as f64 + 8.0) * 2.0 * F32_HALF_ULP
}

// == Scalar backend (the parity reference) ==============================

mod scalar {
    use super::FusedBest;

    /// Canonical four-lane dot product; every other backend must match
    /// this bitwise.
    pub(super) fn dot(a: &[f64], b: &[f64]) -> f64 {
        let d = a.len();
        let chunks = d / 4;
        let (mut l0, mut l1, mut l2, mut l3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for i in 0..chunks {
            let j = 4 * i;
            l0 += a[j] * b[j];
            l1 += a[j + 1] * b[j + 1];
            l2 += a[j + 2] * b[j + 2];
            l3 += a[j + 3] * b[j + 3];
        }
        // Tail elements land in the lane they would occupy in a full
        // chunk (j % 4 ∈ {0, 1, 2} — a tail is at most 3 long).
        for j in 4 * chunks..d {
            let t = a[j] * b[j];
            match j % 4 {
                0 => l0 += t,
                1 => l1 += t,
                _ => l2 += t,
            }
        }
        (l0 + l1) + (l2 + l3)
    }

    pub(super) fn rank_min(centroids: &[f64], sm: &[f64], dims: usize, x: &[f64]) -> (usize, f64) {
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, m) in sm.iter().enumerate() {
            let row = &centroids[i * dims..i * dims + dims];
            let score = *m - 2.0 * dot(x, row);
            if score < best_score {
                best = i;
                best_score = score;
            }
        }
        (best, best_score)
    }

    /// Canonical fused row sweep: the per-dimension deviation moment
    /// `vⱼ = (xⱼ−cⱼ)² + ψⱼ² + eⱼ` feeds BOTH rankings — `Σⱼ vⱼ` *is* the
    /// exact expected squared distance (Lemma 2.2), and the clamped
    /// `1 − vⱼ/(t·σⱼ²)` is the dimension-counting credit — so the second
    /// ranking costs one extra add per lane, not a second dot product.
    pub(super) fn row_fused(
        c: &[f64],
        e: &[f64],
        x: &[f64],
        errs: &[f64],
        inv: &[f64],
    ) -> (f64, f64) {
        let d = x.len();
        let chunks = d / 4;
        let (mut d0, mut d1, mut d2, mut d3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for i in 0..chunks {
            let j = 4 * i;
            let f0 = x[j] - c[j];
            let f1 = x[j + 1] - c[j + 1];
            let f2 = x[j + 2] - c[j + 2];
            let f3 = x[j + 3] - c[j + 3];
            let v0 = (f0 * f0 + errs[j] * errs[j]) + e[j];
            let v1 = (f1 * f1 + errs[j + 1] * errs[j + 1]) + e[j + 1];
            let v2 = (f2 * f2 + errs[j + 2] * errs[j + 2]) + e[j + 2];
            let v3 = (f3 * f3 + errs[j + 3] * errs[j + 3]) + e[j + 3];
            d0 += v0;
            d1 += v1;
            d2 += v2;
            d3 += v3;
            s0 += (1.0 - v0 * inv[j]).max(0.0);
            s1 += (1.0 - v1 * inv[j + 1]).max(0.0);
            s2 += (1.0 - v2 * inv[j + 2]).max(0.0);
            s3 += (1.0 - v3 * inv[j + 3]).max(0.0);
        }
        for j in 4 * chunks..d {
            let f = x[j] - c[j];
            let v = (f * f + errs[j] * errs[j]) + e[j];
            let credit = (1.0 - v * inv[j]).max(0.0);
            match j % 4 {
                0 => {
                    d0 += v;
                    s0 += credit;
                }
                1 => {
                    d1 += v;
                    s1 += credit;
                }
                _ => {
                    d2 += v;
                    s2 += credit;
                }
            }
        }
        ((d0 + d1) + (d2 + d3), (s0 + s1) + (s2 + s3))
    }

    pub(super) fn rank_fused(
        centroids: &[f64],
        noise: &[f64],
        rows: usize,
        dims: usize,
        x: &[f64],
        errs: &[f64],
        inv: &[f64],
    ) -> FusedBest {
        let mut out = FusedBest::empty();
        for i in 0..rows {
            let row = &centroids[i * dims..i * dims + dims];
            let erow = &noise[i * dims..i * dims + dims];
            let (dist, sim) = row_fused(row, erow, x, errs, inv);
            if dist < out.dist_score {
                out.dist_idx = i;
                out.dist_score = dist;
            }
            if sim > out.sim {
                out.sim_idx = i;
                out.sim = sim;
            }
        }
        out
    }
}

// == Portable lane backend ==============================================

mod portable {
    use super::FusedBest;

    #[inline(always)]
    fn load(s: &[f64], j: usize) -> [f64; 4] {
        [s[j], s[j + 1], s[j + 2], s[j + 3]]
    }

    #[inline(always)]
    fn add(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
        let [a0, a1, a2, a3] = a;
        let [b0, b1, b2, b3] = b;
        [a0 + b0, a1 + b1, a2 + b2, a3 + b3]
    }

    #[inline(always)]
    fn sub(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
        let [a0, a1, a2, a3] = a;
        let [b0, b1, b2, b3] = b;
        [a0 - b0, a1 - b1, a2 - b2, a3 - b3]
    }

    #[inline(always)]
    fn mul(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
        let [a0, a1, a2, a3] = a;
        let [b0, b1, b2, b3] = b;
        [a0 * b0, a1 * b1, a2 * b2, a3 * b3]
    }

    /// Per-lane `max(x, 0.0)`; NaN clamps to 0 like `f64::max`.
    #[inline(always)]
    fn relu(a: [f64; 4]) -> [f64; 4] {
        let [a0, a1, a2, a3] = a;
        [a0.max(0.0), a1.max(0.0), a2.max(0.0), a3.max(0.0)]
    }

    #[inline(always)]
    fn reduce(a: [f64; 4]) -> f64 {
        let [a0, a1, a2, a3] = a;
        (a0 + a1) + (a2 + a3)
    }

    pub(super) fn dot(a: &[f64], b: &[f64]) -> f64 {
        let d = a.len();
        let chunks = d / 4;
        let mut acc = [0.0f64; 4];
        for i in 0..chunks {
            let j = 4 * i;
            acc = add(acc, mul(load(a, j), load(b, j)));
        }
        for j in 4 * chunks..d {
            acc[j % 4] += a[j] * b[j];
        }
        reduce(acc)
    }

    pub(super) fn rank_min(centroids: &[f64], sm: &[f64], dims: usize, x: &[f64]) -> (usize, f64) {
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, m) in sm.iter().enumerate() {
            let row = &centroids[i * dims..i * dims + dims];
            let score = *m - 2.0 * dot(x, row);
            if score < best_score {
                best = i;
                best_score = score;
            }
        }
        (best, best_score)
    }

    fn row_fused(c: &[f64], e: &[f64], x: &[f64], errs: &[f64], inv: &[f64]) -> (f64, f64) {
        let d = x.len();
        let chunks = d / 4;
        let mut dacc = [0.0f64; 4];
        let mut sacc = [0.0f64; 4];
        let ones = [1.0f64; 4];
        for i in 0..chunks {
            let j = 4 * i;
            let vx = load(x, j);
            let vc = load(c, j);
            let diff = sub(vx, vc);
            let verr = load(errs, j);
            let vj = add(add(mul(diff, diff), mul(verr, verr)), load(e, j));
            dacc = add(dacc, vj);
            sacc = add(sacc, relu(sub(ones, mul(vj, load(inv, j)))));
        }
        for j in 4 * chunks..d {
            let f = x[j] - c[j];
            let v = (f * f + errs[j] * errs[j]) + e[j];
            dacc[j % 4] += v;
            sacc[j % 4] += (1.0 - v * inv[j]).max(0.0);
        }
        (reduce(dacc), reduce(sacc))
    }

    pub(super) fn rank_fused(
        centroids: &[f64],
        noise: &[f64],
        rows: usize,
        dims: usize,
        x: &[f64],
        errs: &[f64],
        inv: &[f64],
    ) -> FusedBest {
        let mut out = FusedBest::empty();
        for i in 0..rows {
            let row = &centroids[i * dims..i * dims + dims];
            let erow = &noise[i * dims..i * dims + dims];
            let (dist, sim) = row_fused(row, erow, x, errs, inv);
            if dist < out.dist_score {
                out.dist_idx = i;
                out.dist_score = dist;
            }
            if sim > out.sim {
                out.sim_idx = i;
                out.sim = sim;
            }
        }
        out
    }

    /// f32 pre-ranking scores; no parity contract, plain accumulation
    /// the autovectorizer is free to widen.
    pub(super) fn fill_scores_f32(
        centroids: &[f32],
        sm: &[f32],
        dims: usize,
        x: &[f32],
        out: &mut [f32],
    ) {
        for (i, o) in out.iter_mut().enumerate() {
            let row = &centroids[i * dims..i * dims + dims];
            let mut acc = 0.0f32;
            for (xv, cv) in x.iter().zip(row) {
                acc += xv * cv;
            }
            *o = sm[i] - 2.0 * acc;
        }
    }
}

// == AVX2 / AVX-512 backends ============================================

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m512d, _mm256_add_pd, _mm256_add_ps, _mm256_loadu_pd, _mm256_loadu_ps, _mm256_max_pd,
        _mm256_mul_pd, _mm256_mul_ps, _mm256_set1_pd, _mm256_setzero_pd, _mm256_setzero_ps,
        _mm256_storeu_pd, _mm256_storeu_ps, _mm256_sub_pd, _mm512_add_pd, _mm512_broadcast_f64x4,
        _mm512_castpd256_pd512, _mm512_insertf64x4, _mm512_max_pd, _mm512_mul_pd, _mm512_set1_pd,
        _mm512_setzero_pd, _mm512_storeu_pd, _mm512_sub_pd,
    };

    use super::FusedBest;

    // SAFETY: every function in this module is `unsafe fn` gated on
    // `#[target_feature]`; the dispatch arms in the parent module only
    // call them after `is_x86_feature_detected!` confirms support.

    // SAFETY: caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
        let d = a.len();
        let chunks = d / 4;
        let mut acc = _mm256_setzero_pd();
        for i in 0..chunks {
            let j = 4 * i;
            // In-bounds: j + 3 < 4 * chunks <= d.
            let va = _mm256_loadu_pd(a.as_ptr().add(j));
            let vb = _mm256_loadu_pd(b.as_ptr().add(j));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
        }
        let mut l = [0.0f64; 4];
        _mm256_storeu_pd(l.as_mut_ptr(), acc);
        for j in 4 * chunks..d {
            l[j % 4] += a[j] * b[j];
        }
        let [l0, l1, l2, l3] = l;
        (l0 + l1) + (l2 + l3)
    }

    // SAFETY: caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn rank_min_avx2(
        centroids: &[f64],
        sm: &[f64],
        dims: usize,
        x: &[f64],
    ) -> (usize, f64) {
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, m) in sm.iter().enumerate() {
            let row = &centroids[i * dims..i * dims + dims];
            let score = *m - 2.0 * dot_avx2(x, row);
            if score < best_score {
                best = i;
                best_score = score;
            }
        }
        (best, best_score)
    }

    // SAFETY: caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    unsafe fn row_fused_avx2(
        c: &[f64],
        e: &[f64],
        x: &[f64],
        errs: &[f64],
        inv: &[f64],
    ) -> (f64, f64) {
        let d = x.len();
        let chunks = d / 4;
        let mut dacc = _mm256_setzero_pd();
        let mut sacc = _mm256_setzero_pd();
        let ones = _mm256_set1_pd(1.0);
        let zero = _mm256_setzero_pd();
        for i in 0..chunks {
            let j = 4 * i;
            // In-bounds: j + 3 < 4 * chunks <= d for all five slices
            // (the dispatcher asserted matching lengths).
            let vx = _mm256_loadu_pd(x.as_ptr().add(j));
            let vc = _mm256_loadu_pd(c.as_ptr().add(j));
            let verr = _mm256_loadu_pd(errs.as_ptr().add(j));
            let ve = _mm256_loadu_pd(e.as_ptr().add(j));
            let vinv = _mm256_loadu_pd(inv.as_ptr().add(j));
            let diff = _mm256_sub_pd(vx, vc);
            let vj = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(diff, diff), _mm256_mul_pd(verr, verr)),
                ve,
            );
            dacc = _mm256_add_pd(dacc, vj);
            // max_pd(NaN, 0) = 0, matching `f64::max` on skipped dims.
            let credit = _mm256_max_pd(_mm256_sub_pd(ones, _mm256_mul_pd(vj, vinv)), zero);
            sacc = _mm256_add_pd(sacc, credit);
        }
        let mut dl = [0.0f64; 4];
        let mut sl = [0.0f64; 4];
        _mm256_storeu_pd(dl.as_mut_ptr(), dacc);
        _mm256_storeu_pd(sl.as_mut_ptr(), sacc);
        for j in 4 * chunks..d {
            let f = x[j] - c[j];
            let v = (f * f + errs[j] * errs[j]) + e[j];
            dl[j % 4] += v;
            sl[j % 4] += (1.0 - v * inv[j]).max(0.0);
        }
        let [d0, d1, d2, d3] = dl;
        let [s0, s1, s2, s3] = sl;
        ((d0 + d1) + (d2 + d3), (s0 + s1) + (s2 + s3))
    }

    // SAFETY: caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn rank_fused_avx2(
        centroids: &[f64],
        noise: &[f64],
        rows: usize,
        dims: usize,
        x: &[f64],
        errs: &[f64],
        inv: &[f64],
    ) -> FusedBest {
        let mut out = FusedBest::empty();
        for i in 0..rows {
            let row = &centroids[i * dims..i * dims + dims];
            let erow = &noise[i * dims..i * dims + dims];
            let (dist, sim) = row_fused_avx2(row, erow, x, errs, inv);
            if dist < out.dist_score {
                out.dist_idx = i;
                out.dist_score = dist;
            }
            if sim > out.sim {
                out.sim_idx = i;
                out.sim = sim;
            }
        }
        out
    }

    /// Packs two 256-bit row chunks into one zmm: row A in lanes 0–3,
    /// row B in lanes 4–7. Pure bit moves — no rounding.
    // SAFETY: caller must ensure AVX-512F is available.
    #[target_feature(enable = "avx512f")]
    unsafe fn pair(lo: std::arch::x86_64::__m256d, hi: std::arch::x86_64::__m256d) -> __m512d {
        _mm512_insertf64x4::<1>(_mm512_castpd256_pd512(lo), hi)
    }

    // SAFETY: caller must ensure AVX-512F and AVX2 are available.
    #[target_feature(enable = "avx512f", enable = "avx2")]
    pub(super) unsafe fn rank_min_avx512(
        centroids: &[f64],
        sm: &[f64],
        dims: usize,
        x: &[f64],
    ) -> (usize, f64) {
        let len = sm.len();
        let chunks = dims / 4;
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        let mut i = 0usize;
        while i + 1 < len {
            let ra = &centroids[i * dims..i * dims + dims];
            let rb = &centroids[(i + 1) * dims..(i + 1) * dims + dims];
            let mut acc = _mm512_setzero_pd();
            for k in 0..chunks {
                let j = 4 * k;
                // In-bounds: j + 3 < 4 * chunks <= dims.
                let vx = _mm512_broadcast_f64x4(_mm256_loadu_pd(x.as_ptr().add(j)));
                let vc = pair(
                    _mm256_loadu_pd(ra.as_ptr().add(j)),
                    _mm256_loadu_pd(rb.as_ptr().add(j)),
                );
                acc = _mm512_add_pd(acc, _mm512_mul_pd(vx, vc));
            }
            let mut l = [0.0f64; 8];
            _mm512_storeu_pd(l.as_mut_ptr(), acc);
            for j in 4 * chunks..dims {
                l[j % 4] += x[j] * ra[j];
                l[4 + j % 4] += x[j] * rb[j];
            }
            let [a0, a1, a2, a3, b0, b1, b2, b3] = l;
            let sa = sm[i] - 2.0 * ((a0 + a1) + (a2 + a3));
            if sa < best_score {
                best = i;
                best_score = sa;
            }
            let sb = sm[i + 1] - 2.0 * ((b0 + b1) + (b2 + b3));
            if sb < best_score {
                best = i + 1;
                best_score = sb;
            }
            i += 2;
        }
        if i < len {
            let row = &centroids[i * dims..i * dims + dims];
            let s = sm[i] - 2.0 * dot_avx2(x, row);
            if s < best_score {
                best = i;
                best_score = s;
            }
        }
        (best, best_score)
    }

    // SAFETY: caller must ensure AVX-512F and AVX2 are available.
    #[target_feature(enable = "avx512f", enable = "avx2")]
    pub(super) unsafe fn rank_fused_avx512(
        centroids: &[f64],
        noise: &[f64],
        rows: usize,
        dims: usize,
        x: &[f64],
        errs: &[f64],
        inv: &[f64],
    ) -> FusedBest {
        let len = rows;
        let chunks = dims / 4;
        let mut out = FusedBest::empty();
        let ones = _mm512_set1_pd(1.0);
        let zero = _mm512_setzero_pd();
        let mut i = 0usize;
        while i + 1 < len {
            let ca = &centroids[i * dims..i * dims + dims];
            let cb = &centroids[(i + 1) * dims..(i + 1) * dims + dims];
            let ea = &noise[i * dims..i * dims + dims];
            let eb = &noise[(i + 1) * dims..(i + 1) * dims + dims];
            let mut dacc = _mm512_setzero_pd();
            let mut sacc = _mm512_setzero_pd();
            for k in 0..chunks {
                let j = 4 * k;
                // In-bounds: j + 3 < 4 * chunks <= dims everywhere.
                let vx = _mm512_broadcast_f64x4(_mm256_loadu_pd(x.as_ptr().add(j)));
                let verr = _mm512_broadcast_f64x4(_mm256_loadu_pd(errs.as_ptr().add(j)));
                let vinv = _mm512_broadcast_f64x4(_mm256_loadu_pd(inv.as_ptr().add(j)));
                let vc = pair(
                    _mm256_loadu_pd(ca.as_ptr().add(j)),
                    _mm256_loadu_pd(cb.as_ptr().add(j)),
                );
                let ve = pair(
                    _mm256_loadu_pd(ea.as_ptr().add(j)),
                    _mm256_loadu_pd(eb.as_ptr().add(j)),
                );
                let diff = _mm512_sub_pd(vx, vc);
                let vj = _mm512_add_pd(
                    _mm512_add_pd(_mm512_mul_pd(diff, diff), _mm512_mul_pd(verr, verr)),
                    ve,
                );
                dacc = _mm512_add_pd(dacc, vj);
                let credit = _mm512_max_pd(_mm512_sub_pd(ones, _mm512_mul_pd(vj, vinv)), zero);
                sacc = _mm512_add_pd(sacc, credit);
            }
            let mut dl = [0.0f64; 8];
            let mut sl = [0.0f64; 8];
            _mm512_storeu_pd(dl.as_mut_ptr(), dacc);
            _mm512_storeu_pd(sl.as_mut_ptr(), sacc);
            for j in 4 * chunks..dims {
                let fa = x[j] - ca[j];
                let fb = x[j] - cb[j];
                let ee = errs[j] * errs[j];
                let va = (fa * fa + ee) + ea[j];
                let vb = (fb * fb + ee) + eb[j];
                dl[j % 4] += va;
                dl[4 + j % 4] += vb;
                sl[j % 4] += (1.0 - va * inv[j]).max(0.0);
                sl[4 + j % 4] += (1.0 - vb * inv[j]).max(0.0);
            }
            let [da0, da1, da2, da3, db0, db1, db2, db3] = dl;
            let [sa0, sa1, sa2, sa3, sb0, sb1, sb2, sb3] = sl;
            let dist_a = (da0 + da1) + (da2 + da3);
            let sim_a = (sa0 + sa1) + (sa2 + sa3);
            if dist_a < out.dist_score {
                out.dist_idx = i;
                out.dist_score = dist_a;
            }
            if sim_a > out.sim {
                out.sim_idx = i;
                out.sim = sim_a;
            }
            let dist_b = (db0 + db1) + (db2 + db3);
            let sim_b = (sb0 + sb1) + (sb2 + sb3);
            if dist_b < out.dist_score {
                out.dist_idx = i + 1;
                out.dist_score = dist_b;
            }
            if sim_b > out.sim {
                out.sim_idx = i + 1;
                out.sim = sim_b;
            }
            i += 2;
        }
        if i < len {
            let row = &centroids[i * dims..i * dims + dims];
            let erow = &noise[i * dims..i * dims + dims];
            let (dist, sim) = row_fused_avx2(row, erow, x, errs, inv);
            if dist < out.dist_score {
                out.dist_idx = i;
                out.dist_score = dist;
            }
            if sim > out.sim {
                out.sim_idx = i;
                out.sim = sim;
            }
        }
        out
    }

    // SAFETY: caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fill_scores_f32_avx2(
        centroids: &[f32],
        sm: &[f32],
        dims: usize,
        x: &[f32],
        out: &mut [f32],
    ) {
        let chunks = dims / 8;
        for (i, o) in out.iter_mut().enumerate() {
            let row = &centroids[i * dims..i * dims + dims];
            let mut acc = _mm256_setzero_ps();
            for k in 0..chunks {
                let j = 8 * k;
                // In-bounds: j + 7 < 8 * chunks <= dims.
                let vx = _mm256_loadu_ps(x.as_ptr().add(j));
                let vc = _mm256_loadu_ps(row.as_ptr().add(j));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(vx, vc));
            }
            let mut l = [0.0f32; 8];
            _mm256_storeu_ps(l.as_mut_ptr(), acc);
            let mut tail = 0.0f32;
            for j in 8 * chunks..dims {
                tail += x[j] * row[j];
            }
            let [l0, l1, l2, l3, l4, l5, l6, l7] = l;
            let dp = (((l0 + l1) + (l2 + l3)) + ((l4 + l5) + (l6 + l7))) + tail;
            *o = sm[i] - 2.0 * dp;
        }
    }
}

// == NEON backend (aarch64) =============================================

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::{
        vaddq_f64, vdupq_n_f64, vld1q_f64, vmaxnmq_f64, vmulq_f64, vst1q_f64, vsubq_f64,
    };

    use super::FusedBest;

    // SAFETY: NEON is mandatory on aarch64; the dispatch arms calling
    // into this module only compile for aarch64 targets.

    // SAFETY: caller must be on aarch64 (NEON is baseline there).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot_neon(a: &[f64], b: &[f64]) -> f64 {
        let d = a.len();
        let chunks = d / 4;
        let mut lo = vdupq_n_f64(0.0);
        let mut hi = vdupq_n_f64(0.0);
        for i in 0..chunks {
            let j = 4 * i;
            // In-bounds: j + 3 < 4 * chunks <= d.
            lo = vaddq_f64(
                lo,
                vmulq_f64(vld1q_f64(a.as_ptr().add(j)), vld1q_f64(b.as_ptr().add(j))),
            );
            hi = vaddq_f64(
                hi,
                vmulq_f64(
                    vld1q_f64(a.as_ptr().add(j + 2)),
                    vld1q_f64(b.as_ptr().add(j + 2)),
                ),
            );
        }
        let mut l = [0.0f64; 4];
        vst1q_f64(l.as_mut_ptr(), lo);
        vst1q_f64(l.as_mut_ptr().add(2), hi);
        for j in 4 * chunks..d {
            l[j % 4] += a[j] * b[j];
        }
        let [l0, l1, l2, l3] = l;
        (l0 + l1) + (l2 + l3)
    }

    // SAFETY: caller must be on aarch64 (NEON is baseline there).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn rank_min_neon(
        centroids: &[f64],
        sm: &[f64],
        dims: usize,
        x: &[f64],
    ) -> (usize, f64) {
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, m) in sm.iter().enumerate() {
            let row = &centroids[i * dims..i * dims + dims];
            let score = *m - 2.0 * dot_neon(x, row);
            if score < best_score {
                best = i;
                best_score = score;
            }
        }
        (best, best_score)
    }

    // SAFETY: caller must be on aarch64 (NEON is baseline there).
    #[target_feature(enable = "neon")]
    unsafe fn row_fused_neon(
        c: &[f64],
        e: &[f64],
        x: &[f64],
        errs: &[f64],
        inv: &[f64],
    ) -> (f64, f64) {
        let d = x.len();
        let chunks = d / 4;
        let zero = vdupq_n_f64(0.0);
        let ones = vdupq_n_f64(1.0);
        let mut dlo = zero;
        let mut dhi = zero;
        let mut slo = zero;
        let mut shi = zero;
        for i in 0..chunks {
            let j = 4 * i;
            for half in 0..2 {
                let o = j + 2 * half;
                // In-bounds: o + 1 < 4 * chunks <= d for all slices.
                let vx = vld1q_f64(x.as_ptr().add(o));
                let vc = vld1q_f64(c.as_ptr().add(o));
                let verr = vld1q_f64(errs.as_ptr().add(o));
                let ve = vld1q_f64(e.as_ptr().add(o));
                let vinv = vld1q_f64(inv.as_ptr().add(o));
                let diff = vsubq_f64(vx, vc);
                let vj = vaddq_f64(vaddq_f64(vmulq_f64(diff, diff), vmulq_f64(verr, verr)), ve);
                // vmaxnmq (IEEE maxNum) clamps NaN credits to 0 like
                // `f64::max`; vmaxq would propagate the NaN instead.
                let credit = vmaxnmq_f64(vsubq_f64(ones, vmulq_f64(vj, vinv)), zero);
                if half == 0 {
                    dlo = vaddq_f64(dlo, vj);
                    slo = vaddq_f64(slo, credit);
                } else {
                    dhi = vaddq_f64(dhi, vj);
                    shi = vaddq_f64(shi, credit);
                }
            }
        }
        let mut dl = [0.0f64; 4];
        let mut sl = [0.0f64; 4];
        vst1q_f64(dl.as_mut_ptr(), dlo);
        vst1q_f64(dl.as_mut_ptr().add(2), dhi);
        vst1q_f64(sl.as_mut_ptr(), slo);
        vst1q_f64(sl.as_mut_ptr().add(2), shi);
        for j in 4 * chunks..d {
            let f = x[j] - c[j];
            let v = (f * f + errs[j] * errs[j]) + e[j];
            dl[j % 4] += v;
            sl[j % 4] += (1.0 - v * inv[j]).max(0.0);
        }
        let [d0, d1, d2, d3] = dl;
        let [s0, s1, s2, s3] = sl;
        ((d0 + d1) + (d2 + d3), (s0 + s1) + (s2 + s3))
    }

    // SAFETY: caller must be on aarch64 (NEON is baseline there).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn rank_fused_neon(
        centroids: &[f64],
        noise: &[f64],
        rows: usize,
        dims: usize,
        x: &[f64],
        errs: &[f64],
        inv: &[f64],
    ) -> FusedBest {
        let mut out = FusedBest::empty();
        for i in 0..rows {
            let row = &centroids[i * dims..i * dims + dims];
            let erow = &noise[i * dims..i * dims + dims];
            let (dist, sim) = row_fused_neon(row, erow, x, errs, inv);
            if dist < out.dist_score {
                out.dist_idx = i;
                out.dist_score = dist;
            }
            if sim > out.sim {
                out.sim_idx = i;
                out.sim = sim;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic splitmix64-derived doubles in [-1, 1); the core
    /// crate has no rand dependency and parity tests must be seedable.
    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    fn vec_of(n: usize, state: &mut u64) -> Vec<f64> {
        (0..n).map(|_| splitmix(state) * 3.0).collect()
    }

    fn usable() -> Vec<Backend> {
        Backend::compiled()
            .iter()
            .copied()
            .filter(|b| b.available())
            .collect()
    }

    #[test]
    fn parse_and_name_round_trip() {
        for b in Backend::compiled() {
            assert_eq!(Backend::parse(b.name()), Some(*b));
            assert_eq!(Backend::parse(&b.name().to_uppercase()), Some(*b));
        }
        assert_eq!(Backend::parse("auto"), None);
        assert_eq!(Backend::parse("sse9"), None);
    }

    #[test]
    fn scalar_and_portable_always_available() {
        assert!(Backend::Scalar.available());
        assert!(Backend::Portable.available());
        assert!(detect().available());
    }

    #[test]
    fn dot_bitwise_parity_across_backends_and_lengths() {
        let mut st = 0x5eed_u64;
        for len in 0..=19 {
            let a = vec_of(len, &mut st);
            let b = vec_of(len, &mut st);
            let want = dot_with(Backend::Scalar, &a, &b);
            for be in usable() {
                let got = dot_with(be, &a, &b);
                assert_eq!(got.to_bits(), want.to_bits(), "dot parity {be:?} len {len}");
            }
        }
    }

    #[test]
    fn rank_min_bitwise_parity_across_backends() {
        let mut st = 0xfeed_u64;
        for dims in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 17] {
            for rows in [0usize, 1, 2, 3, 5, 8, 33] {
                let centroids = vec_of(rows * dims, &mut st);
                let sm = vec_of(rows, &mut st);
                let x = vec_of(dims, &mut st);
                let (wi, ws) = rank_min_score_with(Backend::Scalar, &centroids, &sm, dims, &x);
                for be in usable() {
                    let (gi, gs) = rank_min_score_with(be, &centroids, &sm, dims, &x);
                    assert_eq!(
                        (gi, gs.to_bits()),
                        (wi, ws.to_bits()),
                        "{be:?} d{dims} r{rows}"
                    );
                }
            }
        }
    }

    #[test]
    fn rank_fused_bitwise_parity_across_backends() {
        let mut st = 0xabcd_u64;
        for dims in [1usize, 3, 4, 5, 7, 8, 9, 20] {
            for rows in [0usize, 1, 2, 3, 7, 25] {
                let centroids = vec_of(rows * dims, &mut st);
                let noise: Vec<f64> = vec_of(rows * dims, &mut st)
                    .iter()
                    .map(|v| v.abs())
                    .collect();
                let x = vec_of(dims, &mut st);
                let errs: Vec<f64> = vec_of(dims, &mut st).iter().map(|v| v.abs()).collect();
                // Mix of finite coefficients and the ∞ skip sentinel.
                let inv: Vec<f64> = (0..dims)
                    .map(|j| {
                        if j % 3 == 2 {
                            f64::INFINITY
                        } else {
                            splitmix(&mut st).abs() * 4.0
                        }
                    })
                    .collect();
                let w = rank_fused_with(Backend::Scalar, &centroids, &noise, dims, &x, &errs, &inv);
                for be in usable() {
                    let g = rank_fused_with(be, &centroids, &noise, dims, &x, &errs, &inv);
                    assert_eq!(
                        (
                            g.dist_idx,
                            g.dist_score.to_bits(),
                            g.sim_idx,
                            g.sim.to_bits()
                        ),
                        (
                            w.dist_idx,
                            w.dist_score.to_bits(),
                            w.sim_idx,
                            w.sim.to_bits()
                        ),
                        "{be:?} d{dims} r{rows}"
                    );
                }
            }
        }
    }

    #[test]
    fn nan_scores_never_win_on_any_backend() {
        let dims = 5usize;
        let mut st = 0x11_u64;
        let mut centroids = vec_of(3 * dims, &mut st);
        centroids[dims] = f64::NAN; // poison row 1
        let sm = vec![1.0, f64::NAN, 0.5];
        let x = vec_of(dims, &mut st);
        for be in usable() {
            let (i, s) = rank_min_score_with(be, &centroids, &sm, dims, &x);
            assert_ne!(i, 1, "{be:?} picked the NaN row");
            assert!(s.is_finite(), "{be:?} returned a non-finite winner");
        }
        // All-NaN: nothing wins, the sentinel result is (0, INFINITY).
        let sm_nan = vec![f64::NAN; 3];
        for be in usable() {
            let (i, s) = rank_min_score_with(be, &centroids, &sm_nan, dims, &x);
            assert_eq!((i, s), (0, f64::INFINITY), "{be:?} all-NaN sentinel");
        }
    }

    #[test]
    fn fused_sweep_skips_infinite_coefficients() {
        // inv = ∞ on every dim ⇒ every credit clamps to 0 on every row.
        let dims = 6usize;
        let mut st = 0x77_u64;
        let centroids = vec_of(4 * dims, &mut st);
        let noise = vec![0.1; 4 * dims];
        let x = vec_of(dims, &mut st);
        let errs = vec![0.2; dims];
        let inv = vec![f64::INFINITY; dims];
        for be in usable() {
            let g = rank_fused_with(be, &centroids, &noise, dims, &x, &errs, &inv);
            assert_eq!(
                g.sim.to_bits(),
                0.0f64.to_bits(),
                "{be:?} credit not clamped"
            );
        }
    }

    #[test]
    fn f32_scores_close_to_f64_scores() {
        let dims = 9usize;
        let rows = 12usize;
        let mut st = 0x3c3c_u64;
        let centroids = vec_of(rows * dims, &mut st);
        let sm = vec_of(rows, &mut st);
        let x = vec_of(dims, &mut st);
        let mut c32 = Vec::new();
        let mut sm32 = Vec::new();
        let mut x32 = Vec::new();
        narrow_into(&mut c32, &centroids);
        narrow_into(&mut sm32, &sm);
        narrow_into(&mut x32, &x);
        let mut out = vec![0.0f32; rows];
        for be in usable() {
            fill_scores_f32_with(be, &c32, &sm32, dims, &x32, &mut out);
            for (i, s32) in out.iter().enumerate() {
                let row = &centroids[i * dims..i * dims + dims];
                let exact = sm[i] - 2.0 * dot_with(Backend::Scalar, x.as_slice(), row);
                let bound = f32_rank_slack(dims) * (exact.abs() + 8.0) + 1e-6;
                assert!(
                    (f64::from(*s32) - exact).abs() <= bound,
                    "{be:?} row {i}: {s32} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn forced_unavailable_backend_degrades_to_scalar() {
        let before = active();
        let got = force(Some(Backend::Neon));
        #[cfg(not(target_arch = "aarch64"))]
        assert_eq!(got, Backend::Scalar);
        #[cfg(target_arch = "aarch64")]
        assert_eq!(got, Backend::Neon);
        // Restore the detected backend for other tests in this binary.
        force(Some(before));
        assert_eq!(active(), before);
    }
}
