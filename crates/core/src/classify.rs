//! On-demand classification of uncertain streams with per-class
//! micro-clusters.
//!
//! The paper's reference \[1\] (Aggarwal, ICDE 2007) demonstrates that
//! uncertainty information improves *classification*; the natural streaming
//! classifier in the micro-cluster framework (following Aggarwal, Han, Wang
//! & Yu, *On Demand Classification of Data Streams*, KDD 2004) maintains
//! one set of micro-clusters per class from the labelled stream and labels
//! a test record by its closest micro-cluster across all classes — here
//! under the *expected* distance, so the error estimates sharpen both
//! training (error-corrected boundaries) and prediction.

use crate::algorithm::UMicro;
use crate::config::UMicroConfig;
use crate::distance::{corrected_sq_distance, expected_sq_distance};
use std::collections::BTreeMap;
use ustream_common::{ClassLabel, UncertainPoint};

/// A streaming nearest-micro-cluster classifier for uncertain data.
#[derive(Debug, Clone)]
pub struct MicroClassifier {
    per_class: BTreeMap<ClassLabel, UMicro>,
    template: UMicroConfig,
    trained: u64,
}

/// A classification outcome with its evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Predicted class.
    pub label: ClassLabel,
    /// Expected squared distance to the winning micro-cluster.
    pub distance: f64,
    /// Expected squared distance to the best micro-cluster of the runner-up
    /// class (`None` with a single known class). The ratio
    /// `runner_up / distance` is a confidence proxy.
    pub runner_up: Option<f64>,
}

impl Classification {
    /// Margin-based confidence in `[0, 1]`: 0 when the runner-up ties, →1
    /// as the winner dominates. 1.0 when only one class is known.
    pub fn confidence(&self) -> f64 {
        match self.runner_up {
            Some(r) if r > 0.0 => (1.0 - self.distance / r).clamp(0.0, 1.0),
            Some(_) => 0.0,
            None => 1.0,
        }
    }
}

impl MicroClassifier {
    /// Creates the classifier; `per_class_config` is instantiated once per
    /// class seen in the training stream (so `n_micro` is a *per-class*
    /// budget).
    pub fn new(per_class_config: UMicroConfig) -> Self {
        per_class_config
            .validate()
            // lint:allow(hot-panic): constructor contract — fails fast at setup, never on the stream path
            .expect("UMicroConfig must be valid");
        Self {
            per_class: BTreeMap::new(),
            template: per_class_config,
            trained: 0,
        }
    }

    /// Absorbs one labelled training record.
    pub fn train(&mut self, point: &UncertainPoint, label: ClassLabel) {
        self.trained += 1;
        let template = &self.template;
        self.per_class
            .entry(label)
            .or_insert_with(|| UMicro::new(template.clone()))
            .insert(point);
    }

    /// Absorbs a record that carries its own label.
    ///
    /// # Panics
    /// Panics if the point is unlabelled.
    pub fn train_labelled(&mut self, point: &UncertainPoint) {
        let label = point
            .label()
            // lint:allow(hot-panic): documented `# Panics` contract of this entry point
            .expect("train_labelled requires a labelled point");
        self.train(point, label);
    }

    /// Classes observed so far.
    pub fn classes(&self) -> impl Iterator<Item = ClassLabel> + '_ {
        self.per_class.keys().copied()
    }

    /// Training records absorbed.
    pub fn trained(&self) -> u64 {
        self.trained
    }

    /// The per-class model, for inspection.
    pub fn model(&self, label: ClassLabel) -> Option<&UMicro> {
        self.per_class.get(&label)
    }

    /// Classifies a record by the nearest micro-cluster under the
    /// *error-corrected* distance (the realized distance minus the known
    /// noise contributions of both the record and the cluster members) —
    /// the metric that uses the uncertainty information to de-noise the
    /// decision. `None` before any training data.
    pub fn classify(&self, point: &UncertainPoint) -> Option<Classification> {
        self.classify_by(point, corrected_sq_distance)
    }

    /// Classifies by the raw expected distance of Lemma 2.2 (for
    /// comparison; its `EF2/W²` term penalises classes whose training data
    /// was noisier, which can mis-rank under heavy heterogeneous noise).
    pub fn classify_expected(&self, point: &UncertainPoint) -> Option<Classification> {
        self.classify_by(point, expected_sq_distance)
    }

    /// Classifies by plain Euclidean distance to the micro-cluster
    /// centroids — the uncertainty-blind comparison mode used by the
    /// classification ablation. (The training side still used the error
    /// statistics; only the prediction metric is deterministic.)
    pub fn classify_euclidean(&self, point: &UncertainPoint) -> Option<Classification> {
        self.classify_by(point, |p, ecf| {
            ustream_common::point::sq_euclidean(
                p.values(),
                &ustream_common::AdditiveFeature::centroid(ecf),
            )
        })
    }

    fn classify_by(
        &self,
        point: &UncertainPoint,
        distance: impl Fn(&UncertainPoint, &crate::ecf::Ecf) -> f64,
    ) -> Option<Classification> {
        let mut best: Option<(ClassLabel, f64)> = None;
        let mut runner_up: Option<f64> = None;
        for (label, model) in &self.per_class {
            let class_best = model
                .micro_clusters()
                .iter()
                .map(|c| distance(point, &c.ecf))
                .fold(f64::INFINITY, f64::min);
            if !class_best.is_finite() {
                continue;
            }
            match best {
                None => best = Some((*label, class_best)),
                Some((_, d)) if class_best < d => {
                    runner_up = Some(d);
                    best = Some((*label, class_best));
                }
                Some(_) => {
                    runner_up = Some(match runner_up {
                        Some(r) => r.min(class_best),
                        None => class_best,
                    });
                }
            }
        }
        best.map(|(label, distance)| Classification {
            label,
            distance,
            runner_up,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rand_distr::{Distribution, Normal};

    fn config() -> UMicroConfig {
        UMicroConfig::new(8, 2).unwrap()
    }

    fn pt(x: f64, y: f64, err: f64, t: u64) -> UncertainPoint {
        UncertainPoint::new(vec![x, y], vec![err, err], t, None)
    }

    #[test]
    fn classifies_two_separated_classes() {
        let mut clf = MicroClassifier::new(config());
        for t in 0..50u64 {
            let w = (t % 5) as f64 * 0.1;
            clf.train(&pt(w, -w, 0.2, t), ClassLabel(0));
            clf.train(&pt(10.0 + w, 10.0 - w, 0.2, t), ClassLabel(1));
        }
        assert_eq!(clf.classes().count(), 2);
        assert_eq!(clf.trained(), 100);

        let near_a = clf.classify(&pt(0.3, 0.1, 0.2, 99)).unwrap();
        assert_eq!(near_a.label, ClassLabel(0));
        assert!(near_a.confidence() > 0.5, "{}", near_a.confidence());

        let near_b = clf.classify(&pt(9.7, 10.2, 0.2, 99)).unwrap();
        assert_eq!(near_b.label, ClassLabel(1));
    }

    #[test]
    fn untrained_classifier_returns_none() {
        let clf = MicroClassifier::new(config());
        assert!(clf.classify(&pt(0.0, 0.0, 0.1, 1)).is_none());
    }

    #[test]
    fn single_class_has_full_confidence() {
        let mut clf = MicroClassifier::new(config());
        clf.train(&pt(0.0, 0.0, 0.1, 1), ClassLabel(3));
        let c = clf.classify(&pt(0.1, 0.1, 0.1, 2)).unwrap();
        assert_eq!(c.label, ClassLabel(3));
        assert_eq!(c.runner_up, None);
        assert_eq!(c.confidence(), 1.0);
    }

    #[test]
    fn boundary_point_has_low_confidence() {
        let mut clf = MicroClassifier::new(config());
        for t in 0..20u64 {
            clf.train(&pt(0.0, 0.0, 0.2, t), ClassLabel(0));
            clf.train(&pt(10.0, 0.0, 0.2, t), ClassLabel(1));
        }
        let mid = clf.classify(&pt(5.0, 0.0, 0.2, 99)).unwrap();
        assert!(
            mid.confidence() < 0.2,
            "midpoint should be uncertain: {}",
            mid.confidence()
        );
    }

    #[test]
    #[should_panic(expected = "requires a labelled point")]
    fn train_labelled_needs_label() {
        let mut clf = MicroClassifier::new(config());
        clf.train_labelled(&pt(0.0, 0.0, 0.1, 1));
    }

    #[test]
    fn train_labelled_uses_embedded_label() {
        let mut clf = MicroClassifier::new(config());
        let p = pt(1.0, 1.0, 0.1, 1).with_label(ClassLabel(7));
        clf.train_labelled(&p);
        assert!(clf.model(ClassLabel(7)).is_some());
        assert!(clf.model(ClassLabel(0)).is_none());
    }

    #[test]
    fn noisy_dimension_hurts_less_with_error_info() {
        // Dimension 1 carries class signal; dimension 0 is extremely noisy
        // *and known to be* (large ψ). The expected distance discounts the
        // noisy dimension less than a plain Euclidean nearest-centroid
        // would... but crucially the per-class micro-cluster models absorb
        // the noise into EF2, keeping class regions coherent. Verify held-
        // out accuracy stays high under heavy known noise.
        let mut rng = StdRng::seed_from_u64(9);
        let noise = Normal::new(0.0, 6.0).unwrap();
        let mut clf = MicroClassifier::new(config());
        let sample = |class: u32, rng: &mut StdRng, t: u64| {
            let y = if class == 0 { 0.0 } else { 4.0 };
            let x = noise.sample(rng); // pure noise, ψ declared = 6.
            UncertainPoint::new(vec![x, y], vec![6.0, 0.1], t, None)
        };
        for t in 0..300u64 {
            let class = (t % 2) as u32;
            clf.train(&sample(class, &mut rng, t), ClassLabel(class));
        }
        let mut correct = 0;
        let trials = 200;
        for t in 0..trials {
            let class = (t % 2) as u32;
            let got = clf
                .classify(&sample(class, &mut rng, 1_000 + t))
                .unwrap()
                .label;
            if got == ClassLabel(class) {
                correct += 1;
            }
        }
        let acc = correct as f64 / trials as f64;
        assert!(acc > 0.9, "accuracy under known noise: {acc}");
    }
}
