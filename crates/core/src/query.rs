//! The unified read-side query surface.
//!
//! [`OnlineClusterer`] is an *ingest* contract: absorb points, expose the
//! raw model. Readers — the serving front-end, CLI commands, the eval
//! harness — want a narrower, uniform view: "give me the clusters over a
//! horizon, a macro-clustering, your vitals, and (if you can) your portable
//! state". Before this trait existed each reader re-derived that view its
//! own way; [`ClusterQuery`] names it once so every read path calls the
//! same four methods regardless of what sits behind them (a bare
//! [`UMicro`](crate::UMicro), a decayed variant, a boxed dynamic clusterer,
//! a tenant in the serving front-end, or the whole sharded engine).
//!
//! The blanket impl covers every [`OnlineClusterer`]. Implementations with
//! a pyramidal snapshot store (the engine, serve tenants) override the
//! semantics by implementing the trait directly: there `horizon_clusters`
//! answers by subtractive approximation over stored snapshots (paper
//! §II-C), while the blanket impl — which has no time-indexed history —
//! answers every horizon with the live since-stream-start model.

use crate::macrocluster::MacroClustering;
use crate::online::OnlineClusterer;
use crate::state::ClustererState;
use serde::{Deserialize, Serialize};
use ustream_common::{AdditiveFeature, UStreamError};
use ustream_snapshot::ClusterSetSnapshot;

/// Read-side vitals every queryable clusterer can report cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct QueryStats {
    /// Points absorbed so far.
    pub points_processed: u64,
    /// Live micro-clusters in the model.
    pub num_clusters: usize,
    /// Estimated resident bytes of the model.
    pub approx_memory_bytes: usize,
}

/// The query surface shared by everything that can answer cluster reads.
///
/// Deliberately separate from the ingest-side [`OnlineClusterer`]: a reader
/// holding `&mut dyn ClusterQuery<Summary = Ecf>` can interrogate a model
/// but cannot feed it, and new read paths (wire protocols, dashboards,
/// eval suites) depend on this trait alone.
pub trait ClusterQuery {
    /// The additive per-cluster summary type of the underlying model.
    type Summary: AdditiveFeature + Send + 'static;

    /// The micro-cluster set covering the last `horizon` ticks.
    ///
    /// Implementations backed by a pyramidal store answer by snapshot
    /// subtraction; the blanket impl for plain clusterers has no history
    /// and returns the live model for every horizon (a since-stream-start
    /// view). Takes `&mut self` because decayed models synchronise lazy
    /// weights before answering.
    fn horizon_clusters(
        &mut self,
        horizon: u64,
    ) -> Result<ClusterSetSnapshot<Self::Summary>, UStreamError>;

    /// Offline macro-clustering of the current model into `k` higher-level
    /// clusters.
    fn macro_cluster(&mut self, k: usize, seed: u64) -> MacroClustering;

    /// The model's read-side vitals.
    fn stats(&self) -> QueryStats;

    /// The complete portable state, when the implementation supports
    /// checkpoint/restore (`None` otherwise).
    fn export_state(&self) -> Option<ClustererState<Self::Summary>>;
}

impl<T: OnlineClusterer + ?Sized> ClusterQuery for T {
    type Summary = T::Summary;

    fn horizon_clusters(
        &mut self,
        _horizon: u64,
    ) -> Result<ClusterSetSnapshot<Self::Summary>, UStreamError> {
        Ok(ClusterSetSnapshot::from_pairs(
            OnlineClusterer::micro_clusters(self),
        ))
    }

    fn macro_cluster(&mut self, k: usize, seed: u64) -> MacroClustering {
        OnlineClusterer::macro_cluster(self, k, seed)
    }

    fn stats(&self) -> QueryStats {
        QueryStats {
            points_processed: OnlineClusterer::points_processed(self),
            num_clusters: OnlineClusterer::num_clusters(self),
            approx_memory_bytes: OnlineClusterer::approx_memory_bytes(self),
        }
    }

    fn export_state(&self) -> Option<ClustererState<Self::Summary>> {
        OnlineClusterer::export_state(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::UMicro;
    use crate::config::UMicroConfig;
    use crate::decayed::DecayedUMicro;
    use crate::ecf::Ecf;
    use ustream_common::{Timestamp, UncertainPoint};

    fn pt(x: f64, y: f64, t: Timestamp) -> UncertainPoint {
        UncertainPoint::new(vec![x, y], vec![0.2, 0.2], t, None)
    }

    fn drive(alg: &mut impl OnlineClusterer) {
        for t in 1..=60u64 {
            let x = if t % 2 == 0 { 0.0 } else { 9.0 };
            alg.insert(&pt(x, -x, t));
        }
    }

    #[test]
    fn blanket_impl_answers_reads_for_umicro() {
        let mut alg = UMicro::new(UMicroConfig::new(8, 2).unwrap());
        drive(&mut alg);
        let stats = ClusterQuery::stats(&alg);
        assert_eq!(stats.points_processed, 60);
        assert!(stats.num_clusters >= 2);
        assert!(stats.approx_memory_bytes > 0);
        let snap = ClusterQuery::horizon_clusters(&mut alg, 10).unwrap();
        assert_eq!(snap.len(), stats.num_clusters);
        let mac = ClusterQuery::macro_cluster(&mut alg, 2, 7);
        assert_eq!(mac.k(), 2);
        assert!(ClusterQuery::export_state(&alg).is_some());
    }

    #[test]
    fn blanket_impl_horizon_is_since_start_view() {
        // Plain clusterers have no time-indexed store: every horizon answers
        // with the full live model.
        let mut alg = UMicro::new(UMicroConfig::new(8, 2).unwrap());
        drive(&mut alg);
        let narrow = ClusterQuery::horizon_clusters(&mut alg, 1).unwrap();
        let wide = ClusterQuery::horizon_clusters(&mut alg, 1_000_000).unwrap();
        assert_eq!(narrow.total_count(), wide.total_count());
        assert_eq!(narrow.total_count() as u64, 60);
    }

    #[test]
    fn query_trait_is_object_safe_over_boxed_dyn() {
        let mut boxed: Box<dyn OnlineClusterer<Summary = Ecf>> = Box::new(
            DecayedUMicro::with_half_life(UMicroConfig::new(8, 2).unwrap(), 500.0),
        );
        drive(&mut boxed);
        let q: &mut dyn ClusterQuery<Summary = Ecf> = &mut boxed;
        assert_eq!(q.stats().points_processed, 60);
        assert!(!q.horizon_clusters(30).unwrap().is_empty());
        assert_eq!(q.macro_cluster(2, 11).k(), 2);
    }

    #[test]
    fn query_stats_serde_round_trip() {
        let s = QueryStats {
            points_processed: 42,
            num_clusters: 7,
            approx_memory_bytes: 4096,
        };
        let back = QueryStats::from_value(&s.to_value()).unwrap();
        assert_eq!(back, s);
    }
}
