//! The time-decayed UMicro variant (§II-E, Definitions 2.2 and 2.3).
//!
//! Each point is weighted `w_t(X) = 2^{−λ (t_c − t(X))}`; the half-life of a
//! point is `1/λ`. Maintaining exact weights would require touching every
//! micro-cluster every tick, so the paper uses a *lazy* scheme: because all
//! points decay at the same multiplicative rate, a micro-cluster's
//! statistics are brought current with one multiply by
//! `2^{−λ (t_c − t_s)}` at the moment the cluster is next modified, where
//! `t_s` is its previous reference tick. A newly arriving point enters with
//! weight `2⁰ = 1` relative to "now".
//!
//! A subtlety the paper glosses: different clusters carry statistics
//! referenced to different ticks between touches. All *ratio* statistics
//! (centroid, per-dimension variance) are invariant under the uniform
//! scaling, so closest-cluster ranking is unaffected; only the `EF2/W²` and
//! `1/W` correction terms drift slightly until the next touch, which is the
//! "modestly accurate statistics" trade-off §II-E accepts. For comparisons
//! that need fully current statistics (snapshots, horizon analysis) use
//! [`DecayedUMicro::synchronize`].

use crate::algorithm::{InsertOutcome, MicroCluster, UMicro};
use crate::config::UMicroConfig;
use crate::ecf::Ecf;
use crate::macrocluster::MacroClustering;
use ustream_common::feature::lambda_for_half_life;
use ustream_common::{DecayableFeature, Timestamp, UncertainPoint};
use ustream_snapshot::ClusterSetSnapshot;

/// UMicro with exponential time decay.
#[derive(Debug, Clone)]
pub struct DecayedUMicro {
    inner: UMicro,
    lambda: f64,
    /// Clusters whose total decayed weight falls below this are dropped at
    /// synchronisation points — they no longer represent live behaviour.
    weight_floor: f64,
    last_seen: Timestamp,
}

impl DecayedUMicro {
    /// Creates the decayed algorithm from a half-life in ticks
    /// (Definition 2.2: half-life = `1/λ`).
    pub fn with_half_life(config: UMicroConfig, half_life: f64) -> Self {
        let lambda = lambda_for_half_life(half_life);
        Self {
            inner: UMicro::with_lambda(config, lambda),
            lambda,
            weight_floor: 1e-6,
            last_seen: 0,
        }
    }

    /// Creates the decayed algorithm from a raw decay rate `λ > 0`.
    pub fn with_lambda(config: UMicroConfig, lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive"
        );
        Self {
            inner: UMicro::with_lambda(config, lambda),
            lambda,
            weight_floor: 1e-6,
            last_seen: 0,
        }
    }

    /// The decay rate λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The half-life `1/λ` in ticks.
    pub fn half_life(&self) -> f64 {
        1.0 / self.lambda
    }

    /// The configuration in force.
    pub fn config(&self) -> &UMicroConfig {
        self.inner.config()
    }

    /// Points processed so far.
    pub fn points_processed(&self) -> u64 {
        self.inner.points_processed()
    }

    /// Live micro-clusters. Statistics may be referenced to each cluster's
    /// own last-touch tick; call [`Self::synchronize`] first when absolute
    /// weights across clusters must be comparable.
    pub fn micro_clusters(&self) -> &[MicroCluster] {
        self.inner.micro_clusters()
    }

    /// Inserts one stream point (lazy decay applied to the touched cluster).
    pub fn insert(&mut self, point: &UncertainPoint) -> InsertOutcome {
        if point.timestamp() > self.last_seen {
            self.last_seen = point.timestamp();
        }
        self.inner.insert(point)
    }

    /// Processes a mini-batch of stream points; see [`UMicro::insert_batch`].
    pub fn insert_batch(&mut self, points: &[UncertainPoint], out: &mut Vec<InsertOutcome>) {
        if let Some(last) = points.iter().map(|p| p.timestamp()).max() {
            if last > self.last_seen {
                self.last_seen = last;
            }
        }
        self.inner.insert_batch(points, out);
    }

    /// Toggles the SoA distance kernel; see [`UMicro::set_kernel_enabled`].
    pub fn set_kernel_enabled(&mut self, enabled: bool) {
        self.inner.set_kernel_enabled(enabled);
    }

    /// Opts ranking into the f32 pre-scan mode; see
    /// [`UMicro::set_f32_rank`].
    pub fn set_f32_rank(&mut self, enabled: bool) {
        self.inner.set_f32_rank(enabled);
    }

    /// The kernel, synchronised with the live cluster set; see
    /// [`UMicro::kernel_synced`]. (Synchronised with the *statistics as
    /// stored* — lazily decayed clusters are mirrored at their own reference
    /// ticks, exactly as the scalar ranking sees them.)
    pub fn kernel_synced(&mut self) -> &crate::kernel::ClusterKernel {
        self.inner.kernel_synced()
    }

    /// Brings every micro-cluster's statistics current to tick `now` and
    /// drops clusters whose decayed weight fell below the floor.
    pub fn synchronize(&mut self, now: Timestamp) {
        if now > self.last_seen {
            self.last_seen = now;
        }
        let lambda = self.lambda;
        let floor = self.weight_floor;
        self.inner
            .clusters_mut()
            .retain_mut(|c: &mut MicroCluster| {
                c.ecf.decay_to(now, lambda);
                c.ecf.weight() > floor
            });
    }

    /// Snapshot of the current state with all statistics synchronised to
    /// `now`, suitable for the pyramidal store.
    pub fn snapshot_at(&mut self, now: Timestamp) -> ClusterSetSnapshot<Ecf> {
        self.synchronize(now);
        self.inner.snapshot()
    }

    /// Snapshot synchronised to the last observed tick — naming symmetry
    /// with [`UMicro::snapshot`]; prefer [`Self::snapshot_at`] when the
    /// caller knows the current clock.
    pub fn snapshot(&mut self) -> ClusterSetSnapshot<Ecf> {
        self.snapshot_at(self.last_seen)
    }

    /// Macro-clustering of the decayed micro-clusters (weights are the
    /// decayed `W(C)`, so recent behaviour dominates).
    pub fn macro_cluster(&mut self, k: usize, seed: u64) -> MacroClustering {
        self.synchronize(self.last_seen);
        self.inner.macro_cluster(k, seed)
    }

    /// Exports the complete mutable state for checkpointing — raw lazily
    /// decayed statistics (each ECF keeps its own reference tick), *not*
    /// synchronised, so the restored instance resumes with bit-identical
    /// arithmetic. See [`UMicro::export_state`].
    pub fn export_state(&self) -> crate::state::ClustererState<Ecf> {
        let mut state = self.inner.export_state();
        state.last_seen = self.last_seen;
        state
    }

    /// Replaces this instance's state with a previously exported one; the
    /// decay rate comes from this instance's construction, not the state.
    /// See [`UMicro::import_state`].
    pub fn import_state(
        &mut self,
        state: &crate::state::ClustererState<Ecf>,
    ) -> Result<(), ustream_common::UStreamError> {
        self.inner.import_state(state)?;
        self.last_seen = state.last_seen;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_common::AdditiveFeature;

    fn pt(values: &[f64], errors: &[f64], t: Timestamp) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), errors.to_vec(), t, None)
    }

    fn config(n: usize, d: usize) -> UMicroConfig {
        UMicroConfig::new(n, d).unwrap()
    }

    #[test]
    fn half_life_round_trip() {
        let alg = DecayedUMicro::with_half_life(config(4, 1), 200.0);
        assert!((alg.half_life() - 200.0).abs() < 1e-9);
        assert!((alg.lambda() - 0.005).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn rejects_non_positive_lambda() {
        let _ = DecayedUMicro::with_lambda(config(4, 1), 0.0);
    }

    #[test]
    fn weight_halves_after_half_life() {
        let mut alg = DecayedUMicro::with_half_life(config(4, 1), 100.0);
        alg.insert(&pt(&[0.0], &[0.2], 0));
        alg.synchronize(100);
        let w = alg.micro_clusters()[0].ecf.weight();
        assert!((w - 0.5).abs() < 1e-9, "weight after one half-life: {w}");
    }

    #[test]
    fn lazy_decay_applied_on_touch() {
        let mut alg = DecayedUMicro::with_half_life(config(1, 1), 100.0);
        alg.insert(&pt(&[0.0], &[0.3], 0));
        // 100 ticks later a nearby point arrives: the old contribution has
        // halved, the new point adds weight 1.
        alg.insert(&pt(&[0.1], &[0.3], 100));
        let c = &alg.micro_clusters()[0];
        assert_eq!(c.ecf.point_count(), 2);
        assert!((c.ecf.weight() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn centroid_tracks_recent_points_under_decay() {
        // Old mass at x=0, then the stream moves to x=6 (inside the 3σ
        // uncertainty boundary ≈ 7.5 for ψ = 2.5, so one cluster absorbs
        // both regimes): with a short half-life the centroid must end up far
        // closer to 6 than the unweighted mean 3.0 would be.
        let mut alg = DecayedUMicro::with_half_life(config(1, 1), 20.0);
        for t in 0..50u64 {
            alg.insert(&pt(&[0.0], &[2.5], t));
        }
        for t in 50..100u64 {
            alg.insert(&pt(&[6.0], &[2.5], t));
        }
        alg.synchronize(100);
        assert_eq!(alg.micro_clusters().len(), 1);
        let c = alg.micro_clusters()[0].ecf.centroid()[0];
        assert!(c > 5.0, "decayed centroid should chase recent data: {c}");
    }

    #[test]
    fn synchronize_drops_dead_clusters() {
        let mut alg = DecayedUMicro::with_half_life(config(4, 1), 10.0);
        alg.insert(&pt(&[0.0], &[0.1], 0));
        alg.insert(&pt(&[500.0], &[0.1], 1));
        assert_eq!(alg.micro_clusters().len(), 2);
        // 400 ticks = 40 half-lives: weights ~1e-12, below the floor.
        alg.synchronize(400);
        assert!(alg.micro_clusters().is_empty());
    }

    #[test]
    fn snapshot_at_synchronises() {
        let mut alg = DecayedUMicro::with_half_life(config(4, 1), 50.0);
        alg.insert(&pt(&[0.0], &[0.2], 0));
        alg.insert(&pt(&[300.0], &[0.2], 10));
        let snap = alg.snapshot_at(60);
        // Both clusters alive, weights current to tick 60.
        let weights: Vec<f64> = snap.clusters.values().map(|e| e.weight()).collect();
        assert_eq!(weights.len(), 2);
        for w in weights {
            assert!(w < 1.0 && w > 0.0);
        }
    }

    #[test]
    fn macro_cluster_over_decayed_state() {
        let mut alg = DecayedUMicro::with_half_life(config(8, 2), 100.0);
        let mut t = 0u64;
        for i in 0..40 {
            t += 1;
            let (x, y) = if i % 2 == 0 { (0.0, 0.0) } else { (15.0, 15.0) };
            alg.insert(&pt(&[x, y], &[0.3, 0.3], t));
        }
        let mac = alg.macro_cluster(2, 3);
        assert_eq!(mac.k(), 2);
    }
}
