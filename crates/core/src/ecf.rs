//! The error-based cluster feature vector `ECF` (Definition 2.1 / 2.3).
//!
//! For a set of `d`-dimensional uncertain points the ECF is the `(3d + 2)`
//! tuple `(CF2x, EF2x, CF1x, t, n)`:
//!
//! * `CF2x_j = Σ_i w_i · x_{ij}²` — (weighted) second moment of the values,
//! * `EF2x_j = Σ_i w_i · ψ_j(X_i)²` — (weighted) error second moment,
//! * `CF1x_j = Σ_i w_i · x_{ij}` — (weighted) first moment,
//! * `t` — tick of the last update,
//! * `n` / `W` — point count / total decayed weight.
//!
//! All non-temporal components are additive (Property 2.1) and subtractive,
//! and scale uniformly under exponential decay, which makes the lazy decay
//! of §II-E a single multiply per touch.

use serde::{Deserialize, Serialize};
use ustream_common::{AdditiveFeature, DecayableFeature, Timestamp, UncertainPoint};

/// An error-based micro-cluster summary.
///
/// `weight` equals `count` while no decay is applied; under decay it is the
/// total decayed weight `W(C)` of Definition 2.3, referenced to
/// [`Ecf::last_decay`] (the tick the statistics were last brought current).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecf {
    cf2: Vec<f64>,
    ef2: Vec<f64>,
    cf1: Vec<f64>,
    last_update: Timestamp,
    last_decay: Timestamp,
    weight: f64,
    count: u64,
}

impl Ecf {
    /// An empty summary over `d` dimensions.
    pub fn empty(d: usize) -> Self {
        Self {
            cf2: vec![0.0; d],
            ef2: vec![0.0; d],
            cf1: vec![0.0; d],
            last_update: 0,
            last_decay: 0,
            weight: 0.0,
            count: 0,
        }
    }

    /// A singleton summary for one point with unit weight.
    pub fn from_point(p: &UncertainPoint) -> Self {
        let mut e = Self::empty(p.dims());
        e.insert(p);
        e
    }

    /// Absorbs a point with unit weight (the undecayed algorithm).
    pub fn insert(&mut self, p: &UncertainPoint) {
        self.insert_weighted(p, 1.0);
    }

    /// Absorbs a point with an explicit weight (decayed algorithm: the
    /// newly arrived point has weight `2⁰ = 1` relative to "now", but tests
    /// and replay tooling use other weights).
    pub fn insert_weighted(&mut self, p: &UncertainPoint, w: f64) {
        debug_assert_eq!(p.dims(), self.dims(), "point/ECF dimension mismatch");
        debug_assert!(w > 0.0);
        let (values, errors) = (p.values(), p.errors());
        for j in 0..self.cf1.len() {
            let x = values[j];
            let e = errors[j];
            self.cf2[j] += w * x * x;
            self.ef2[j] += w * e * e;
            self.cf1[j] += w * x;
        }
        self.weight += w;
        self.count += 1;
        if p.timestamp() > self.last_update {
            self.last_update = p.timestamp();
        }
        if p.timestamp() > self.last_decay {
            self.last_decay = p.timestamp();
        }
        self.debug_invariants();
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.cf1.len()
    }

    /// Debug-build audit of the ECF invariants every consumer relies on:
    /// a non-negative weight, finite sums, and non-negative second moments
    /// (`CF2x_j ≥ 0`, `EF2x_j ≥ 0` — both are sums of squares). Checked at
    /// every mutation boundary (insert / merge / subtract) so a violation
    /// is caught where it is introduced, not where it later surfaces as a
    /// NaN radius or a negative variance.
    #[inline]
    fn debug_invariants(&self) {
        debug_assert!(
            self.weight >= 0.0 && self.weight.is_finite(),
            "ECF weight must be finite and non-negative, got {}",
            self.weight
        );
        #[cfg(debug_assertions)]
        for j in 0..self.cf1.len() {
            debug_assert!(
                self.cf1[j].is_finite(),
                "ECF CF1[{j}] must be finite, got {}",
                self.cf1[j]
            );
            debug_assert!(
                self.cf2[j].is_finite() && self.cf2[j] >= 0.0,
                "ECF CF2[{j}] must be finite and non-negative, got {}",
                self.cf2[j]
            );
            debug_assert!(
                self.ef2[j].is_finite() && self.ef2[j] >= 0.0,
                "ECF EF2[{j}] must be finite and non-negative, got {}",
                self.ef2[j]
            );
        }
    }

    /// Raw number of points ever absorbed (not decayed).
    #[inline]
    pub fn point_count(&self) -> u64 {
        self.count
    }

    /// Total (decayed) weight `W(C)`.
    #[inline]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// `CF1x` — weighted first moment per dimension.
    #[inline]
    pub fn cf1(&self) -> &[f64] {
        &self.cf1
    }

    /// `CF2x` — weighted second moment per dimension.
    #[inline]
    pub fn cf2(&self) -> &[f64] {
        &self.cf2
    }

    /// `EF2x` — weighted error second moment per dimension.
    #[inline]
    pub fn ef2(&self) -> &[f64] {
        &self.ef2
    }

    /// Tick at which decay was last applied (reference point of `weight`).
    #[inline]
    pub fn last_decay(&self) -> Timestamp {
        self.last_decay
    }

    /// Writes the centroid `CF1/W` into `out` without allocating. An empty
    /// summary writes zeros, matching [`Ecf::centroid_dim`].
    pub fn centroid_into(&self, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.dims());
        if self.weight <= 0.0 {
            out.fill(0.0);
            return;
        }
        let inv_w = 1.0 / self.weight;
        for (o, &c) in out.iter_mut().zip(&self.cf1) {
            *o = c * inv_w;
        }
    }

    /// Writes the per-dimension centroid-noise term `EF2_j/W²` (the error
    /// variance the centroid inherits, Lemma 2.1) into `out` without
    /// allocating. An empty summary writes zeros.
    pub fn noise_into(&self, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.dims());
        if self.weight <= 0.0 {
            out.fill(0.0);
            return;
        }
        let inv_w2 = 1.0 / (self.weight * self.weight);
        for (o, &e) in out.iter_mut().zip(&self.ef2) {
            *o = e * inv_w2;
        }
    }

    /// Centroid coordinate along dimension `j`: `CF1_j / W`.
    #[inline]
    pub fn centroid_dim(&self, j: usize) -> f64 {
        if self.weight > 0.0 {
            self.cf1[j] / self.weight
        } else {
            0.0
        }
    }

    /// Per-dimension *data* variance of the cluster:
    /// `CF2_j/W − (CF1_j/W)²`, clamped at zero.
    pub fn variance_dim(&self, j: usize) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        let mean = self.cf1[j] / self.weight;
        (self.cf2[j] / self.weight - mean * mean).max(0.0)
    }

    /// Expected squared norm of the (random) centroid, Lemma 2.1:
    /// `E[‖Z‖²] = Σ_j CF1_j²/W² + Σ_j EF2_j/W²`.
    pub fn expected_centroid_sq_norm(&self) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        let w2 = self.weight * self.weight;
        let mut acc = 0.0;
        for j in 0..self.dims() {
            acc += self.cf1[j] * self.cf1[j] / w2 + self.ef2[j] / w2;
        }
        acc
    }

    /// Expected sum over the cluster's own points of their squared expected
    /// deviation from the centroid (derived by summing Lemma 2.2 over the
    /// cluster members):
    ///
    /// `Σ_j CF2_j − Σ_j CF1_j²/W + (1 + 1/W) Σ_j EF2_j`
    ///
    /// Clamped at zero against floating-point cancellation.
    pub fn expected_deviation_ssq(&self) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for j in 0..self.dims() {
            acc += self.cf2[j] - self.cf1[j] * self.cf1[j] / self.weight
                + (1.0 + 1.0 / self.weight) * self.ef2[j];
        }
        acc.max(0.0)
    }

    /// The *uncertain radius* (Eq. 6): the RMS expected deviation of the
    /// cluster's points about its centroid,
    /// `U = sqrt(expected_deviation_ssq / W)`.
    pub fn uncertain_radius(&self) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        (self.expected_deviation_ssq() / self.weight).sqrt()
    }

    /// Error-corrected per-point deviation SSQ: the *observed* spread minus
    /// the known error contribution,
    /// `Σ_j max{0, CF2_j − CF1_j²/W − (1 − 1/W)·EF2_j}`.
    ///
    /// Observed values are `clean + noise`, so their scatter about the
    /// sample mean over-estimates the clean scatter — by
    /// `(1 − 1/W)·Σ_i ψ_i²` in expectation (the `1/W` term is the noise the
    /// sample mean itself absorbs; for small clusters subtracting the full
    /// `EF2` would systematically crush the radius). Subtracting the
    /// correct share gives an approximately unbiased estimate of the clean
    /// geometry — the de-noising that only an uncertainty-aware summary can
    /// perform, in the spirit of the density transforms of Aggarwal
    /// (ICDE 2007), the paper's reference \[1\].
    pub fn corrected_deviation_ssq(&self) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        let noise_share = 1.0 - 1.0 / self.weight.max(1.0);
        let mut acc = 0.0;
        for j in 0..self.dims() {
            let observed = self.cf2[j] - self.cf1[j] * self.cf1[j] / self.weight;
            acc += (observed - noise_share * self.ef2[j]).max(0.0);
        }
        acc
    }

    /// Error-corrected RMS radius: `sqrt(corrected_deviation_ssq / W)` — an
    /// estimate of the cluster's *clean* spread, free of the noise floor
    /// that inflates [`Ecf::uncertain_radius`] on heavily uncertain data.
    pub fn corrected_radius(&self) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        (self.corrected_deviation_ssq() / self.weight).sqrt()
    }

    /// Touch the temporal component without changing statistics.
    pub fn touch(&mut self, t: Timestamp) {
        if t > self.last_update {
            self.last_update = t;
        }
    }
}

impl AdditiveFeature for Ecf {
    fn dims(&self) -> usize {
        self.cf1.len()
    }

    fn count(&self) -> f64 {
        self.weight
    }

    fn last_update(&self) -> Timestamp {
        self.last_update
    }

    fn merge(&mut self, other: &Self) {
        debug_assert_eq!(self.dims(), other.dims());
        for j in 0..self.cf1.len() {
            self.cf2[j] += other.cf2[j];
            self.ef2[j] += other.ef2[j];
            self.cf1[j] += other.cf1[j];
        }
        self.weight += other.weight;
        self.count += other.count;
        self.last_update = self.last_update.max(other.last_update);
        self.last_decay = self.last_decay.max(other.last_decay);
        self.debug_invariants();
    }

    fn subtract(&mut self, other: &Self) {
        debug_assert_eq!(self.dims(), other.dims());
        for j in 0..self.cf1.len() {
            // Second moments are non-negative by construction; clamp the
            // tiny negative residues left by floating-point cancellation.
            self.cf2[j] = (self.cf2[j] - other.cf2[j]).max(0.0);
            self.ef2[j] = (self.ef2[j] - other.ef2[j]).max(0.0);
            self.cf1[j] -= other.cf1[j];
        }
        self.weight = (self.weight - other.weight).max(0.0);
        self.count = self.count.saturating_sub(other.count);
        self.debug_invariants();
    }

    fn centroid(&self) -> Vec<f64> {
        (0..self.dims()).map(|j| self.centroid_dim(j)).collect()
    }
}

impl DecayableFeature for Ecf {
    fn scale(&mut self, factor: f64) {
        debug_assert!((0.0..=1.0).contains(&factor));
        for j in 0..self.cf1.len() {
            self.cf2[j] *= factor;
            self.ef2[j] *= factor;
            self.cf1[j] *= factor;
        }
        self.weight *= factor;
    }

    fn decay_to(&mut self, now: Timestamp, lambda: f64) {
        if now <= self.last_decay || lambda <= 0.0 {
            return;
        }
        // lint:allow(lossy-cast): tick deltas are far below 2^53, exact in f64
        let dt = (now - self.last_decay) as f64;
        self.scale(ustream_common::feature::decay_factor(lambda, dt));
        self.last_decay = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(values: &[f64], errors: &[f64], t: Timestamp) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), errors.to_vec(), t, None)
    }

    #[test]
    fn singleton_statistics() {
        let e = Ecf::from_point(&pt(&[2.0, -3.0], &[0.5, 1.0], 7));
        assert_eq!(e.dims(), 2);
        assert_eq!(e.point_count(), 1);
        assert_eq!(e.weight(), 1.0);
        assert_eq!(e.cf1(), &[2.0, -3.0]);
        assert_eq!(e.cf2(), &[4.0, 9.0]);
        assert_eq!(e.ef2(), &[0.25, 1.0]);
        assert_eq!(e.last_update(), 7);
    }

    #[test]
    fn centroid_is_mean() {
        let mut e = Ecf::empty(2);
        e.insert(&pt(&[0.0, 0.0], &[0.1, 0.1], 1));
        e.insert(&pt(&[4.0, 2.0], &[0.1, 0.1], 2));
        assert_eq!(e.centroid(), vec![2.0, 1.0]);
        assert_eq!(e.centroid_dim(0), 2.0);
    }

    #[test]
    fn additive_property() {
        // Property 2.1: ECF(C1 ∪ C2) = ECF(C1) + ECF(C2) componentwise,
        // temporal component = max.
        let p1 = pt(&[1.0, 2.0], &[0.2, 0.3], 5);
        let p2 = pt(&[3.0, -1.0], &[0.1, 0.4], 9);
        let p3 = pt(&[0.5, 0.5], &[0.0, 0.0], 2);

        let mut whole = Ecf::empty(2);
        for p in [&p1, &p2, &p3] {
            whole.insert(p);
        }
        let mut a = Ecf::from_point(&p1);
        let mut b = Ecf::from_point(&p2);
        b.insert(&p3);
        a.merge(&b);

        for j in 0..2 {
            assert!((a.cf1()[j] - whole.cf1()[j]).abs() < 1e-12);
            assert!((a.cf2()[j] - whole.cf2()[j]).abs() < 1e-12);
            assert!((a.ef2()[j] - whole.ef2()[j]).abs() < 1e-12);
        }
        assert_eq!(a.weight(), 3.0);
        assert_eq!(a.point_count(), 3);
        assert_eq!(a.last_update(), 9);
    }

    #[test]
    fn subtractive_property_round_trip() {
        let pts: Vec<UncertainPoint> = (0..10)
            .map(|i| {
                pt(
                    &[i as f64, (i * i) as f64],
                    &[0.1 * i as f64, 0.2],
                    i as u64,
                )
            })
            .collect();
        let mut all = Ecf::empty(2);
        let mut prefix = Ecf::empty(2);
        for (i, p) in pts.iter().enumerate() {
            all.insert(p);
            if i < 4 {
                prefix.insert(p);
            }
        }
        let mut suffix = all.clone();
        suffix.subtract(&prefix);

        let mut direct = Ecf::empty(2);
        for p in &pts[4..] {
            direct.insert(p);
        }
        for j in 0..2 {
            assert!((suffix.cf1()[j] - direct.cf1()[j]).abs() < 1e-9);
            assert!((suffix.cf2()[j] - direct.cf2()[j]).abs() < 1e-9);
            assert!((suffix.ef2()[j] - direct.ef2()[j]).abs() < 1e-9);
        }
        assert_eq!(suffix.weight(), 6.0);
        assert_eq!(suffix.point_count(), 6);
    }

    #[test]
    fn subtract_to_empty() {
        let p = pt(&[1.0], &[0.5], 3);
        let mut e = Ecf::from_point(&p);
        let copy = e.clone();
        e.subtract(&copy);
        assert!(AdditiveFeature::is_empty(&e));
        assert_eq!(e.point_count(), 0);
    }

    #[test]
    fn lemma_2_1_matches_definition() {
        // E[||Z||^2] = Σ CF1_j²/n² + Σ EF2_j/n².
        let mut e = Ecf::empty(2);
        e.insert(&pt(&[1.0, 2.0], &[0.5, 0.0], 1));
        e.insert(&pt(&[3.0, 4.0], &[0.5, 1.0], 2));
        // CF1 = [4, 6]; EF2 = [0.5, 1.0]; n = 2.
        let want = (16.0 + 36.0) / 4.0 + (0.5 + 1.0) / 4.0;
        assert!((e.expected_centroid_sq_norm() - want).abs() < 1e-12);
    }

    #[test]
    fn zero_error_centroid_norm_is_plain_norm() {
        let mut e = Ecf::empty(2);
        e.insert(&pt(&[3.0, 0.0], &[0.0, 0.0], 1));
        e.insert(&pt(&[5.0, 0.0], &[0.0, 0.0], 2));
        // centroid (4, 0): ||Z||² = 16 exactly when no error.
        assert!((e.expected_centroid_sq_norm() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn deviation_ssq_zero_error_matches_classical_ssq() {
        // With ψ = 0, expected_deviation_ssq must equal Σ (x - mean)².
        let xs = [1.0f64, 2.0, 3.0, 10.0];
        let mut e = Ecf::empty(1);
        for (i, &x) in xs.iter().enumerate() {
            e.insert(&pt(&[x], &[0.0], i as u64));
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let classical: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
        assert!((e.expected_deviation_ssq() - classical).abs() < 1e-9);
    }

    #[test]
    fn deviation_ssq_grows_with_error() {
        let mut clean = Ecf::empty(1);
        let mut noisy = Ecf::empty(1);
        for i in 0..5 {
            clean.insert(&pt(&[i as f64], &[0.0], i as u64));
            noisy.insert(&pt(&[i as f64], &[2.0], i as u64));
        }
        assert!(noisy.expected_deviation_ssq() > clean.expected_deviation_ssq());
        assert!(noisy.uncertain_radius() > clean.uncertain_radius());
    }

    #[test]
    fn singleton_uncertain_radius_reflects_error() {
        // n = 1: SSQ_u = 2 Σ ψ² so radius = sqrt(2)·ψ in 1-d.
        let e = Ecf::from_point(&pt(&[5.0], &[3.0], 1));
        assert!((e.uncertain_radius() - (2.0f64 * 9.0).sqrt()).abs() < 1e-9);
        // Deterministic singleton: zero radius.
        let det = Ecf::from_point(&pt(&[5.0], &[0.0], 1));
        assert_eq!(det.uncertain_radius(), 0.0);
    }

    #[test]
    fn variance_per_dimension() {
        let mut e = Ecf::empty(2);
        e.insert(&pt(&[0.0, 5.0], &[0.0, 0.0], 1));
        e.insert(&pt(&[2.0, 5.0], &[0.0, 0.0], 2));
        assert!((e.variance_dim(0) - 1.0).abs() < 1e-12);
        assert_eq!(e.variance_dim(1), 0.0);
    }

    #[test]
    fn scale_preserves_centroid_and_radius_shape() {
        let mut e = Ecf::empty(2);
        e.insert(&pt(&[1.0, 4.0], &[0.3, 0.1], 1));
        e.insert(&pt(&[3.0, 0.0], &[0.3, 0.1], 2));
        let c_before = e.centroid();
        let var_before = e.variance_dim(0);
        e.scale(0.25);
        // Uniform scaling cancels in every ratio statistic.
        let c_after = e.centroid();
        for j in 0..2 {
            assert!((c_before[j] - c_after[j]).abs() < 1e-12);
        }
        assert!((e.variance_dim(0) - var_before).abs() < 1e-12);
        assert!((e.weight() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lazy_decay_matches_half_life() {
        let mut e = Ecf::from_point(&pt(&[4.0], &[0.2], 0));
        e.decay_to(100, 0.01); // half-life 100 ticks.
        assert!((e.weight() - 0.5).abs() < 1e-12);
        assert_eq!(e.last_decay(), 100);
        // Decaying again to the same tick is a no-op.
        let w = e.weight();
        e.decay_to(100, 0.01);
        assert_eq!(e.weight(), w);
    }

    #[test]
    fn lazy_decay_composes() {
        let p = pt(&[4.0], &[0.2], 0);
        let mut one_step = Ecf::from_point(&p);
        one_step.decay_to(70, 0.02);
        let mut two_steps = Ecf::from_point(&p);
        two_steps.decay_to(30, 0.02);
        two_steps.decay_to(70, 0.02);
        assert!((one_step.weight() - two_steps.weight()).abs() < 1e-12);
        assert!((one_step.cf2()[0] - two_steps.cf2()[0]).abs() < 1e-12);
    }

    #[test]
    fn empty_accessors_are_safe() {
        let e = Ecf::empty(3);
        assert_eq!(e.centroid(), vec![0.0, 0.0, 0.0]);
        assert_eq!(e.uncertain_radius(), 0.0);
        assert_eq!(e.expected_centroid_sq_norm(), 0.0);
        assert_eq!(e.variance_dim(1), 0.0);
        assert!(AdditiveFeature::is_empty(&e));
    }

    #[test]
    fn centroid_into_matches_allocating_accessor() {
        let mut e = Ecf::empty(2);
        e.insert(&pt(&[0.0, 0.0], &[0.5, 0.0], 1));
        e.insert(&pt(&[4.0, 2.0], &[0.5, 1.0], 2));
        let mut c = [f64::NAN; 2];
        e.centroid_into(&mut c);
        assert_eq!(c.to_vec(), e.centroid());
        let mut n = [f64::NAN; 2];
        e.noise_into(&mut n);
        // EF2 = [0.5, 1.0]; W = 2 → EF2/W² = [0.125, 0.25].
        assert!((n[0] - 0.125).abs() < 1e-12);
        assert!((n[1] - 0.25).abs() < 1e-12);

        let empty = Ecf::empty(2);
        empty.centroid_into(&mut c);
        empty.noise_into(&mut n);
        assert_eq!(c, [0.0, 0.0]);
        assert_eq!(n, [0.0, 0.0]);
    }

    #[test]
    fn touch_moves_temporal_component_forward_only() {
        let mut e = Ecf::from_point(&pt(&[1.0], &[0.1], 10));
        e.touch(5);
        assert_eq!(e.last_update(), 10);
        e.touch(20);
        assert_eq!(e.last_update(), 20);
    }
}
