//! The public online-clustering abstraction behind the sharded engine.
//!
//! Every stream clusterer in this workspace — [`UMicro`], the decayed
//! variant [`DecayedUMicro`], and the deterministic `clustream::CluStream`
//! baseline — follows the same operational contract: absorb one point at a
//! time, expose additive micro-cluster summaries keyed by stable ids,
//! produce snapshots for the pyramidal time frame, and compress its
//! micro-clusters into user-facing macro-clusters on demand.
//! [`OnlineClusterer`] names that contract so the ingestion engine, shard
//! workers, and evaluation harnesses can be written once and driven by any
//! of the algorithms.
//!
//! The trait is object-safe: the engine's default worker type is
//! `Box<dyn OnlineClusterer<Summary = Ecf>>`, and a blanket impl forwards
//! through `Box` so boxed and unboxed clusterers are interchangeable.

use crate::algorithm::{InsertOutcome, UMicro};
use crate::decayed::DecayedUMicro;
use crate::distance::corrected_sq_distance;
use crate::macrocluster::MacroClustering;
use crate::state::ClustererState;
use ustream_common::{AdditiveFeature, Timestamp, UStreamError, UncertainPoint};
use ustream_snapshot::ClusterSetSnapshot;

/// A one-pass stream clusterer maintaining additive micro-cluster
/// summaries.
///
/// The contract mirrors the paper's Figure 1 loop: [`insert`] is the hot
/// path, everything else is a query. Implementations must keep cluster ids
/// stable across the run (never recycled) — the pyramidal store relies on
/// id identity for horizon subtraction, and the sharded engine namespaces
/// ids per shard under the same assumption.
///
/// [`insert`]: OnlineClusterer::insert
pub trait OnlineClusterer: Send {
    /// The additive per-cluster summary (ECF for UMicro, CF for CluStream).
    type Summary: AdditiveFeature + Send + 'static;

    /// Processes one stream point and reports where it went.
    fn insert(&mut self, point: &UncertainPoint) -> InsertOutcome;

    /// Processes a mini-batch of stream points in arrival order, appending
    /// one outcome per point to `out`.
    ///
    /// Semantically identical to calling [`insert`] in a loop — the default
    /// implementation does exactly that — but implementations amortise
    /// per-call setup (kernel synchronisation, buffer reservation) over the
    /// block. The sharded engine routes `push_slice` chunks through this.
    ///
    /// [`insert`]: OnlineClusterer::insert
    fn insert_batch(&mut self, points: &[UncertainPoint], out: &mut Vec<InsertOutcome>) {
        out.reserve(points.len());
        for p in points {
            out.push(self.insert(p));
        }
    }

    /// The live micro-clusters as `(stable id, summary)` pairs.
    fn micro_clusters(&self) -> Vec<(u64, Self::Summary)>;

    /// Number of live micro-clusters.
    fn num_clusters(&self) -> usize;

    /// Points processed so far.
    fn points_processed(&self) -> u64;

    /// Distance from `point` to the nearest micro-cluster, in the
    /// algorithm's own geometry (error-corrected for UMicro, Euclidean for
    /// CluStream). `None` while no clusters exist — the caller cannot judge
    /// isolation against an empty model.
    ///
    /// This powers novelty detection: the engine compares the pre-insertion
    /// isolation of each arrival against a running baseline.
    fn isolation(&self, point: &UncertainPoint) -> Option<f64>;

    /// Snapshot of the current micro-cluster set with statistics brought
    /// current to tick `now`, keyed by stable id, for the pyramidal store.
    ///
    /// Takes `&mut self` because decayed implementations synchronise their
    /// lazily-maintained weights to `now` first; undecayed implementations
    /// ignore `now`.
    fn snapshot_at(&mut self, now: Timestamp) -> ClusterSetSnapshot<Self::Summary>;

    /// Offline macro-clustering of the live micro-clusters into `k`
    /// higher-level clusters (weighted k-means over summary centroids).
    fn macro_cluster(&mut self, k: usize, seed: u64) -> MacroClustering;

    /// Exports the complete mutable state for checkpoint/restore, when the
    /// implementation supports it (`None` otherwise, the default).
    ///
    /// Unlike [`snapshot_at`], the exported state must be sufficient for
    /// [`import_state`] to continue the stream exactly where this instance
    /// left off — id allocator, counters and cached estimates included.
    ///
    /// [`snapshot_at`]: OnlineClusterer::snapshot_at
    /// [`import_state`]: OnlineClusterer::import_state
    fn export_state(&self) -> Option<ClustererState<Self::Summary>> {
        None
    }

    /// Replaces this instance's state with a previously exported one.
    /// Implementations that cannot restore report an error (the default) so
    /// engines can fall back to summary-level reseeding.
    fn import_state(&mut self, _state: &ClustererState<Self::Summary>) -> Result<(), UStreamError> {
        Err(UStreamError::InvalidConfig(
            "this clusterer does not support state restore".into(),
        ))
    }

    /// Estimated resident bytes of this clusterer's model, for resource
    /// governance and per-shard reporting. The default charges the inline
    /// struct plus one summary (and a nominal per-cluster overhead) per
    /// live micro-cluster; implementations with large auxiliary state
    /// (kernels, sketches) should override. Must be cheap — the engine
    /// calls it while holding the shard lock.
    fn approx_memory_bytes(&self) -> usize {
        const PER_CLUSTER_OVERHEAD: usize = 64;
        std::mem::size_of_val(self)
            + self.num_clusters() * (std::mem::size_of::<Self::Summary>() + PER_CLUSTER_OVERHEAD)
    }
}

/// Error-corrected distance from `point` to the nearest of `clusters`,
/// shared by both UMicro variants.
fn min_corrected_distance<'a>(
    point: &UncertainPoint,
    ecfs: impl Iterator<Item = &'a crate::ecf::Ecf>,
) -> Option<f64> {
    let mut best = f64::INFINITY;
    for ecf in ecfs {
        best = best.min(corrected_sq_distance(point, ecf));
    }
    best.is_finite().then(|| best.sqrt())
}

impl OnlineClusterer for UMicro {
    type Summary = crate::ecf::Ecf;

    fn insert(&mut self, point: &UncertainPoint) -> InsertOutcome {
        UMicro::insert(self, point)
    }

    fn insert_batch(&mut self, points: &[UncertainPoint], out: &mut Vec<InsertOutcome>) {
        UMicro::insert_batch(self, points, out)
    }

    fn micro_clusters(&self) -> Vec<(u64, Self::Summary)> {
        UMicro::micro_clusters(self)
            .iter()
            .map(|c| (c.id, c.ecf.clone()))
            .collect()
    }

    fn num_clusters(&self) -> usize {
        UMicro::micro_clusters(self).len()
    }

    fn points_processed(&self) -> u64 {
        UMicro::points_processed(self)
    }

    fn isolation(&self, point: &UncertainPoint) -> Option<f64> {
        min_corrected_distance(point, UMicro::micro_clusters(self).iter().map(|c| &c.ecf))
    }

    fn snapshot_at(&mut self, now: Timestamp) -> ClusterSetSnapshot<Self::Summary> {
        UMicro::snapshot_at(self, now)
    }

    fn macro_cluster(&mut self, k: usize, seed: u64) -> MacroClustering {
        UMicro::macro_cluster(self, k, seed)
    }

    fn export_state(&self) -> Option<ClustererState<Self::Summary>> {
        Some(UMicro::export_state(self))
    }

    fn import_state(&mut self, state: &ClustererState<Self::Summary>) -> Result<(), UStreamError> {
        UMicro::import_state(self, state)
    }
}

impl OnlineClusterer for DecayedUMicro {
    type Summary = crate::ecf::Ecf;

    fn insert(&mut self, point: &UncertainPoint) -> InsertOutcome {
        DecayedUMicro::insert(self, point)
    }

    fn insert_batch(&mut self, points: &[UncertainPoint], out: &mut Vec<InsertOutcome>) {
        DecayedUMicro::insert_batch(self, points, out)
    }

    fn micro_clusters(&self) -> Vec<(u64, Self::Summary)> {
        DecayedUMicro::micro_clusters(self)
            .iter()
            .map(|c| (c.id, c.ecf.clone()))
            .collect()
    }

    fn num_clusters(&self) -> usize {
        DecayedUMicro::micro_clusters(self).len()
    }

    fn points_processed(&self) -> u64 {
        DecayedUMicro::points_processed(self)
    }

    fn isolation(&self, point: &UncertainPoint) -> Option<f64> {
        min_corrected_distance(
            point,
            DecayedUMicro::micro_clusters(self).iter().map(|c| &c.ecf),
        )
    }

    fn snapshot_at(&mut self, now: Timestamp) -> ClusterSetSnapshot<Self::Summary> {
        DecayedUMicro::snapshot_at(self, now)
    }

    fn macro_cluster(&mut self, k: usize, seed: u64) -> MacroClustering {
        DecayedUMicro::macro_cluster(self, k, seed)
    }

    fn export_state(&self) -> Option<ClustererState<Self::Summary>> {
        Some(DecayedUMicro::export_state(self))
    }

    fn import_state(&mut self, state: &ClustererState<Self::Summary>) -> Result<(), UStreamError> {
        DecayedUMicro::import_state(self, state)
    }
}

impl<T: OnlineClusterer + ?Sized> OnlineClusterer for Box<T> {
    type Summary = T::Summary;

    fn insert(&mut self, point: &UncertainPoint) -> InsertOutcome {
        (**self).insert(point)
    }

    fn insert_batch(&mut self, points: &[UncertainPoint], out: &mut Vec<InsertOutcome>) {
        (**self).insert_batch(points, out)
    }

    fn micro_clusters(&self) -> Vec<(u64, Self::Summary)> {
        (**self).micro_clusters()
    }

    fn num_clusters(&self) -> usize {
        (**self).num_clusters()
    }

    fn points_processed(&self) -> u64 {
        (**self).points_processed()
    }

    fn isolation(&self, point: &UncertainPoint) -> Option<f64> {
        (**self).isolation(point)
    }

    fn snapshot_at(&mut self, now: Timestamp) -> ClusterSetSnapshot<Self::Summary> {
        (**self).snapshot_at(now)
    }

    fn macro_cluster(&mut self, k: usize, seed: u64) -> MacroClustering {
        (**self).macro_cluster(k, seed)
    }

    fn export_state(&self) -> Option<ClustererState<Self::Summary>> {
        (**self).export_state()
    }

    fn import_state(&mut self, state: &ClustererState<Self::Summary>) -> Result<(), UStreamError> {
        (**self).import_state(state)
    }

    fn approx_memory_bytes(&self) -> usize {
        (**self).approx_memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UMicroConfig;
    use crate::ecf::Ecf;

    fn pt(x: f64, y: f64, t: Timestamp) -> UncertainPoint {
        UncertainPoint::new(vec![x, y], vec![0.2, 0.2], t, None)
    }

    fn drive<A: OnlineClusterer>(alg: &mut A) {
        for t in 1..=60u64 {
            let x = if t % 2 == 0 { 0.0 } else { 9.0 };
            alg.insert(&pt(x, -x, t));
        }
    }

    #[test]
    fn trait_drives_umicro() {
        let mut alg = UMicro::new(UMicroConfig::new(8, 2).unwrap());
        drive(&mut alg);
        assert_eq!(OnlineClusterer::points_processed(&alg), 60);
        assert!(alg.num_clusters() >= 2);
        let clusters = OnlineClusterer::micro_clusters(&alg);
        assert_eq!(clusters.len(), alg.num_clusters());
        let snap = OnlineClusterer::snapshot_at(&mut alg, 60);
        assert_eq!(snap.len(), alg.num_clusters());
        let mac = OnlineClusterer::macro_cluster(&mut alg, 2, 7);
        assert_eq!(mac.k(), 2);
    }

    #[test]
    fn trait_drives_decayed_umicro() {
        let mut alg = DecayedUMicro::with_half_life(UMicroConfig::new(8, 2).unwrap(), 500.0);
        drive(&mut alg);
        assert_eq!(OnlineClusterer::points_processed(&alg), 60);
        let snap = OnlineClusterer::snapshot_at(&mut alg, 60);
        assert!(!snap.is_empty());
    }

    #[test]
    fn insert_batch_matches_insert_loop() {
        let mut looped = UMicro::new(UMicroConfig::new(8, 2).unwrap());
        let mut batched = UMicro::new(UMicroConfig::new(8, 2).unwrap());
        let points: Vec<UncertainPoint> = (1..=60u64)
            .map(|t| {
                let x = if t % 2 == 0 { 0.0 } else { 9.0 };
                pt(x, -x, t)
            })
            .collect();
        let loop_out: Vec<_> = points.iter().map(|p| looped.insert(p)).collect();
        let mut batch_out = Vec::new();
        OnlineClusterer::insert_batch(&mut batched, &points, &mut batch_out);
        assert_eq!(loop_out, batch_out);
        assert_eq!(looped.num_clusters(), batched.num_clusters());
    }

    #[test]
    fn approx_memory_bytes_grows_with_model() {
        let mut alg = UMicro::new(UMicroConfig::new(8, 2).unwrap());
        let empty = alg.approx_memory_bytes();
        drive(&mut alg);
        assert!(alg.num_clusters() >= 2);
        assert!(alg.approx_memory_bytes() > empty);
    }

    #[test]
    fn isolation_is_none_on_empty_model_then_tracks_distance() {
        let mut alg = UMicro::new(UMicroConfig::new(4, 2).unwrap());
        assert!(alg.isolation(&pt(0.0, 0.0, 1)).is_none());
        alg.insert(&pt(0.0, 0.0, 1));
        let near = alg.isolation(&pt(0.1, 0.0, 2)).unwrap();
        let far = alg.isolation(&pt(50.0, 50.0, 2)).unwrap();
        assert!(far > near);
    }

    #[test]
    fn boxed_dyn_clusterer_works() {
        let mut alg: Box<dyn OnlineClusterer<Summary = Ecf>> =
            Box::new(UMicro::new(UMicroConfig::new(8, 2).unwrap()));
        drive(&mut alg);
        assert_eq!(alg.points_processed(), 60);
        assert!(alg.macro_cluster(2, 3).k() == 2);
        let snap = alg.snapshot_at(60);
        assert_eq!(snap.len(), alg.num_clusters());
    }
}
