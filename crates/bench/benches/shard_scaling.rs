//! End-to-end sharded-engine ingestion: points/second through the full
//! channel → shard-worker → periodic-merge path at 1, 2, 4 and 8 shards.
//! Complements `fig_shard_scaling`, which reports the same sweep as a
//! figure-style table over a longer stream.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use umicro::UMicroConfig;
use ustream_common::UncertainPoint;
use ustream_engine::{EngineBuilder, EngineConfig};
use ustream_synth::{NoisyStream, SynDriftConfig};

const DIMS: usize = 20;
const N_MICRO: usize = 100;
const BATCH: usize = 10_000;

fn points() -> Vec<UncertainPoint> {
    let mut cfg = SynDriftConfig::paper();
    cfg.len = BATCH;
    NoisyStream::new(cfg.build(11), 0.5, StdRng::seed_from_u64(12)).collect()
}

fn bench_shard_scaling(c: &mut Criterion) {
    let pts = points();
    let mut group = c.benchmark_group("shard_scaling");
    group.throughput(Throughput::Elements(BATCH as u64));

    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("engine_{shards}_shards"), |b| {
            b.iter(|| {
                let config = EngineConfig::new(
                    UMicroConfig::new(N_MICRO, DIMS).expect("valid UMicro config"),
                )
                .with_shards(shards)
                .with_snapshot_every(2_048)
                .with_novelty_factor(None);
                let engine = EngineBuilder::from_config(config)
                    .build()
                    .expect("engine starts");
                for part in pts.chunks(2_048) {
                    engine.push_slice(part).expect("engine accepts records");
                }
                engine.flush();
                black_box(engine.shutdown().points_processed)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
