//! Per-point insertion cost: UMicro (both boundary modes) vs CluStream vs
//! STREAM on a realistic 20-dimensional noisy stream with the paper's 100
//! micro-cluster budget. This is the micro-benchmark behind Figures 8–10.

use clustream::{
    CluStream, CluStreamConfig, DenStream, DenStreamConfig, StreamKMeans, StreamKMeansConfig,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use umicro::config::BoundaryMode;
use umicro::{UMicro, UMicroConfig};
use ustream_common::UncertainPoint;
use ustream_synth::{NoisyStream, SynDriftConfig};

const DIMS: usize = 20;
const N_MICRO: usize = 100;
const BATCH: usize = 5_000;

fn points() -> Vec<UncertainPoint> {
    let mut cfg = SynDriftConfig::paper();
    cfg.len = BATCH;
    NoisyStream::new(cfg.build(11), 0.5, StdRng::seed_from_u64(12)).collect()
}

fn bench_insertion(c: &mut Criterion) {
    let pts = points();
    let mut group = c.benchmark_group("insertion");
    group.throughput(Throughput::Elements(BATCH as u64));

    group.bench_function("umicro_corrected", |b| {
        b.iter(|| {
            let mut alg =
                UMicro::new(UMicroConfig::new(N_MICRO, DIMS).expect("valid UMicro config"));
            for p in &pts {
                black_box(alg.insert(p));
            }
            alg.micro_clusters().len()
        })
    });

    group.bench_function("umicro_corrected_scalar_path", |b| {
        b.iter(|| {
            let mut alg =
                UMicro::new(UMicroConfig::new(N_MICRO, DIMS).expect("valid UMicro config"));
            alg.set_kernel_enabled(false);
            for p in &pts {
                black_box(alg.insert(p));
            }
            alg.micro_clusters().len()
        })
    });

    group.bench_function("umicro_corrected_batched", |b| {
        b.iter(|| {
            let mut alg =
                UMicro::new(UMicroConfig::new(N_MICRO, DIMS).expect("valid UMicro config"));
            let mut out = Vec::with_capacity(256);
            for chunk in pts.chunks(256) {
                out.clear();
                alg.insert_batch(chunk, &mut out);
                black_box(out.len());
            }
            alg.micro_clusters().len()
        })
    });

    group.bench_function("umicro_uncertain_radius", |b| {
        b.iter(|| {
            let mut alg = UMicro::new(
                UMicroConfig::new(N_MICRO, DIMS)
                    .expect("valid UMicro config")
                    .with_boundary_mode(BoundaryMode::UncertainRadius),
            );
            for p in &pts {
                black_box(alg.insert(p));
            }
            alg.micro_clusters().len()
        })
    });

    group.bench_function("umicro_expected_distance_ranking", |b| {
        b.iter(|| {
            let mut alg = UMicro::new(
                UMicroConfig::new(N_MICRO, DIMS)
                    .expect("valid UMicro config")
                    .with_expected_distance(),
            );
            for p in &pts {
                black_box(alg.insert(p));
            }
            alg.micro_clusters().len()
        })
    });

    group.bench_function("clustream", |b| {
        b.iter(|| {
            let mut alg = CluStream::new(
                CluStreamConfig::new(N_MICRO, DIMS).expect("valid CluStream config"),
            );
            for p in &pts {
                black_box(alg.insert(p));
            }
            alg.micro_clusters().len()
        })
    });

    group.bench_function("stream_kmeans", |b| {
        b.iter(|| {
            let mut alg = StreamKMeans::new(
                StreamKMeansConfig::new(10, 500, DIMS, 13).expect("valid STREAM config"),
            );
            for p in &pts {
                alg.insert(p);
            }
            alg.representative_count()
        })
    });

    group.bench_function("denstream", |b| {
        b.iter(|| {
            // Radius tuned to the SynDrift unit-cube scale.
            let mut alg =
                DenStream::new(DenStreamConfig::new(DIMS, 1.2).expect("valid DenStream config"));
            for p in &pts {
                alg.insert(p);
            }
            alg.potential_clusters().len()
        })
    });

    group.finish();
}

fn bench_classifier(c: &mut Criterion) {
    use umicro::MicroClassifier;
    let pts = points();
    let mut clf = MicroClassifier::new(UMicroConfig::new(20, DIMS).expect("valid UMicro config"));
    for p in &pts {
        if p.label().is_some() {
            clf.train_labelled(p);
        }
    }
    let probe = pts[BATCH / 2].clone();
    let mut group = c.benchmark_group("classification");
    group.bench_function("classify_corrected", |b| {
        b.iter(|| black_box(clf.classify(&probe)))
    });
    group.bench_function("classify_euclidean", |b| {
        b.iter(|| black_box(clf.classify_euclidean(&probe)))
    });
    group.finish();
}

fn bench_uk_means(c: &mut Criterion) {
    use ustream_kmeans::{uk_means, UkMeansConfig};
    let pts = points();
    let mut group = c.benchmark_group("uk_means");
    group.bench_function("uk_means_k10", |b| {
        b.iter(|| black_box(uk_means(&pts, &UkMeansConfig::new(10, 3)).expected_ssq))
    });
    group.finish();
}

criterion_group!(benches, bench_insertion, bench_classifier, bench_uk_means);
criterion_main!(benches);
