//! Pyramidal time-frame costs: snapshot recording, horizon lookup and
//! subtractive window reconstruction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use umicro::Ecf;
use ustream_common::UncertainPoint;
use ustream_snapshot::{ClusterSetSnapshot, PyramidConfig, SnapshotStore};

fn snapshot(dims: usize, clusters: usize, tick: u64) -> ClusterSetSnapshot<Ecf> {
    ClusterSetSnapshot::from_pairs((0..clusters as u64).map(|id| {
        let mut e = Ecf::empty(dims);
        for i in 0..4 {
            let values: Vec<f64> = (0..dims)
                .map(|j| (id + i + j as u64) as f64 * 0.1)
                .collect();
            let errors = vec![0.05; dims];
            e.insert(&UncertainPoint::new(values, errors, tick, None));
        }
        (id, e)
    }))
}

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_record");
    for &clusters in &[10usize, 100] {
        let snap = snapshot(20, clusters, 1);
        group.bench_with_input(
            BenchmarkId::new("record_1k_ticks", clusters),
            &clusters,
            |b, _| {
                b.iter(|| {
                    let mut store = SnapshotStore::new(PyramidConfig::default());
                    for t in 1..=1_000u64 {
                        store.record(t, snap.clone());
                    }
                    store.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_horizon(c: &mut Criterion) {
    let mut store = SnapshotStore::new(PyramidConfig::new(2, 6).expect("valid pyramid config"));
    for t in 1..=10_000u64 {
        store.record(t, snapshot(20, 100, t));
    }
    let mut group = c.benchmark_group("snapshot_horizon");
    for &h in &[10u64, 100, 1_000] {
        group.bench_with_input(BenchmarkId::new("lookup", h), &h, |b, &h| {
            b.iter(|| {
                black_box(
                    store
                        .horizon_base(10_000, h)
                        .expect("horizon resolvable in the store")
                        .time,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("reconstruct", h), &h, |b, &h| {
            let current = store.find_at_or_before(10_000).expect("store is non-empty");
            let base = store
                .horizon_base(10_000, h)
                .expect("horizon resolvable in the store");
            b.iter(|| black_box(current.data.subtract_past(&base.data).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_record, bench_horizon);
criterion_main!(benches);
