//! Micro-benchmarks for the distance kernels — the paper stresses that the
//! expected distance must stay `O(d)` because "distance function
//! computation is the most repetitive of all operations".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use umicro::distance::{corrected_sq_distance, expected_sq_distance};
use umicro::similarity::{dimension_counting_similarity, GlobalVariance};
use umicro::Ecf;
use ustream_common::point::sq_euclidean;
use ustream_common::UncertainPoint;

fn make_cluster(dims: usize, n: usize) -> Ecf {
    let mut ecf = Ecf::empty(dims);
    for i in 0..n {
        let values: Vec<f64> = (0..dims).map(|j| (i * j % 13) as f64 * 0.1).collect();
        let errors: Vec<f64> = (0..dims).map(|j| (j % 5) as f64 * 0.05).collect();
        ecf.insert(&UncertainPoint::new(values, errors, i as u64, None));
    }
    ecf
}

fn make_point(dims: usize) -> UncertainPoint {
    let values: Vec<f64> = (0..dims).map(|j| (j % 7) as f64 * 0.3).collect();
    let errors: Vec<f64> = (0..dims).map(|j| (j % 3) as f64 * 0.1).collect();
    UncertainPoint::new(values, errors, 0, None)
}

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    for &dims in &[10usize, 20, 50, 100] {
        let ecf = make_cluster(dims, 64);
        let point = make_point(dims);
        let centroid = ustream_common::AdditiveFeature::centroid(&ecf);

        group.bench_with_input(BenchmarkId::new("euclidean_sq", dims), &dims, |b, _| {
            b.iter(|| black_box(sq_euclidean(point.values(), &centroid)))
        });
        group.bench_with_input(
            BenchmarkId::new("expected_sq_lemma_2_2", dims),
            &dims,
            |b, _| b.iter(|| black_box(expected_sq_distance(&point, &ecf))),
        );
        group.bench_with_input(BenchmarkId::new("corrected_sq", dims), &dims, |b, _| {
            b.iter(|| black_box(corrected_sq_distance(&point, &ecf)))
        });

        let mut global = GlobalVariance::new(dims);
        global.refresh(std::iter::once(&ecf));
        group.bench_with_input(
            BenchmarkId::new("dimension_counting", dims),
            &dims,
            |b, _| b.iter(|| black_box(dimension_counting_similarity(&point, &ecf, &global, 2.0))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
