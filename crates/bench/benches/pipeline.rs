//! End-to-end pipeline throughput: generator + noise + clustering +
//! purity tracking for each dataset profile (the Criterion counterpart of
//! the figure binaries, kept small enough for `cargo bench`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use umicro::{DecayedUMicro, UMicro, UMicroConfig};
use ustream_common::{DataStream, UncertainPoint};
use ustream_eval::ClusterPurity;
use ustream_synth::profiles::profile_stream;
use ustream_synth::{DatasetProfile, NoisyStream};

const LEN: usize = 5_000;
const N_MICRO: usize = 100;

fn materialise(profile: DatasetProfile) -> (Vec<UncertainPoint>, usize) {
    let clean = profile_stream(profile, LEN, 21);
    let dims = clean.dims();
    let pts = NoisyStream::new(clean, 0.5, StdRng::seed_from_u64(22)).collect();
    (pts, dims)
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(LEN as u64));
    for profile in [
        DatasetProfile::SynDrift,
        DatasetProfile::NetworkIntrusion,
        DatasetProfile::ForestCover,
    ] {
        let (pts, dims) = materialise(profile);
        group.bench_with_input(
            BenchmarkId::new("umicro", profile.name()),
            &pts,
            |b, pts| {
                b.iter(|| {
                    let mut alg =
                        UMicro::new(UMicroConfig::new(N_MICRO, dims).expect("valid UMicro config"));
                    let mut purity = ClusterPurity::new();
                    for p in pts {
                        let out = alg.insert(p);
                        if let Some(l) = p.label() {
                            purity.observe(out.cluster_id, l);
                        }
                    }
                    purity.purity()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("umicro_decayed", profile.name()),
            &pts,
            |b, pts| {
                b.iter(|| {
                    let mut alg = DecayedUMicro::with_half_life(
                        UMicroConfig::new(N_MICRO, dims).expect("valid UMicro config"),
                        2_000.0,
                    );
                    for p in pts {
                        alg.insert(p);
                    }
                    alg.micro_clusters().len()
                })
            },
        );
    }
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.throughput(Throughput::Elements(LEN as u64));
    for profile in [
        DatasetProfile::SynDrift,
        DatasetProfile::NetworkIntrusion,
        DatasetProfile::ForestCover,
        DatasetProfile::CharitableDonation,
    ] {
        group.bench_function(BenchmarkId::new("clean", profile.name()), |b| {
            b.iter(|| profile_stream(profile, LEN, 3).count())
        });
        group.bench_function(BenchmarkId::new("noisy", profile.name()), |b| {
            b.iter(|| {
                NoisyStream::new(
                    profile_stream(profile, LEN, 3),
                    0.5,
                    StdRng::seed_from_u64(4),
                )
                .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_generators);
criterion_main!(benches);
