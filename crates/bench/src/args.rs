//! Minimal `--key value` argument parsing for the figure binaries.
//! (No CLI-framework dependency: the binaries take a handful of flags.)

use std::collections::BTreeMap;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs from `std::env::args()`. A flag followed
    /// by another flag (or nothing) is a value-less switch and stores
    /// `"true"` — `--strict` reads back as `get("strict", false) == true`.
    ///
    /// # Panics
    /// Panics (with a usage-style message) on stray positional arguments.
    pub fn parse() -> Self {
        Self::from_flags(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (tests).
    pub fn from_flags(iter: impl Iterator<Item = String>) -> Self {
        let mut flags = BTreeMap::new();
        let mut iter = iter.peekable();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("unexpected positional argument: {arg}"));
            let value = match iter.peek() {
                Some(v) if !v.starts_with("--") => iter.next().expect("peeked value"),
                _ => "true".to_string(),
            };
            flags.insert(key.to_string(), value);
        }
        Self { flags }
    }

    /// String flag with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Parsed flag with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(key) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|e| panic!("flag --{key}={v} invalid: {e}")),
            None => default,
        }
    }

    /// Whether a flag was supplied at all.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_flags(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_flags() {
        let a = parse("--dataset syndrift --eta 0.5 --len 1000");
        assert_eq!(a.get_str("dataset", "x"), "syndrift");
        assert_eq!(a.get("eta", 0.0_f64), 0.5);
        assert_eq!(a.get("len", 0_usize), 1000);
        assert!(a.has("eta"));
        assert!(!a.has("seed"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("");
        assert_eq!(a.get("eta", 0.25_f64), 0.25);
        assert_eq!(a.get_str("dataset", "syndrift"), "syndrift");
    }

    #[test]
    fn valueless_flags_are_true() {
        let a = parse("--strict --len 1000");
        assert!(a.get("strict", false));
        assert_eq!(a.get("len", 0_usize), 1000);
        assert!(a.get("tail", true), "absent flag keeps its default");
        assert!(!parse("--len 5").get("strict", false));
        assert!(parse("--strict").get("strict", false));
    }

    #[test]
    #[should_panic(expected = "positional")]
    fn positional_panics() {
        let _ = parse("syndrift");
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn bad_value_panics() {
        let a = parse("--eta abc");
        let _ = a.get("eta", 0.0_f64);
    }
}
