//! Ingestion throughput cost of producer-side validation.
//!
//! Every record the engine admits passes `check_point` (NaN/∞ scan of both
//! vectors, dimension check) unless validation is disabled. This benchmark
//! replays the same pre-materialised stream through a single-shard engine
//! with validation off and with each policy enabled, and reports the
//! relative overhead — the robustness budget is a few percent of
//! single-shard throughput.
//!
//! ```text
//! cargo run -p ustream-bench --release --bin fig_validation_overhead -- \
//!     --len 200000 --n-micro 100
//! ```
//!
//! Run with `--release`; debug-build rates are meaningless.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;
use umicro::UMicroConfig;
use ustream_bench::csv::{print_table, write_csv};
use ustream_bench::Args;
use ustream_common::UncertainPoint;
use ustream_engine::{EngineBuilder, EngineConfig, ValidationPolicy};
use ustream_synth::{NoisyStream, SynDriftConfig};

const DIMS: usize = 20;

fn run_once(
    points: &[UncertainPoint],
    n_micro: usize,
    batch: usize,
    snapshot_every: u64,
    validation: Option<ValidationPolicy>,
) -> f64 {
    let config = EngineConfig::new(UMicroConfig::new(n_micro, DIMS).expect("valid UMicro config"))
        .with_snapshot_every(snapshot_every)
        .with_novelty_factor(None)
        .with_validation(validation);
    let engine = EngineBuilder::from_config(config)
        .build()
        .expect("engine starts");
    let started = Instant::now();
    for part in points.chunks(batch) {
        engine.push_slice(part).expect("engine accepts records");
    }
    engine.flush();
    let elapsed = started.elapsed().as_secs_f64();
    let report = engine.shutdown();
    assert_eq!(report.points_processed, points.len() as u64, "records lost");
    points.len() as f64 / elapsed
}

fn main() {
    let args = Args::parse();
    let len: usize = args.get("len", 200_000);
    let n_micro: usize = args.get("n-micro", 100);
    let eta: f64 = args.get("eta", 0.5);
    let seed: u64 = args.get("seed", 11);
    let batch: usize = args.get("batch", 8_192);
    let snapshot_every: u64 = args.get("snapshot-every", 4_096);
    let reps: usize = args.get("reps", 3);

    eprintln!(
        "validation overhead on SynDrift (eta={eta}, len={len}, n_micro={n_micro}, \
         batch={batch}, single shard, best of {reps})"
    );

    let mut cfg = SynDriftConfig::paper();
    cfg.len = len;
    let points: Vec<UncertainPoint> =
        NoisyStream::new(cfg.build(seed), eta, StdRng::seed_from_u64(seed + 1)).collect();

    let policies: [(&str, Option<ValidationPolicy>); 4] = [
        ("off", None),
        ("reject", Some(ValidationPolicy::Reject)),
        ("clamp", Some(ValidationPolicy::Clamp)),
        ("quarantine", Some(ValidationPolicy::Quarantine)),
    ];

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut baseline = None;
    for (i, (name, policy)) in policies.iter().enumerate() {
        // Best-of-N damps allocator and scheduler noise.
        let rate = (0..reps)
            .map(|_| run_once(&points, n_micro, batch, snapshot_every, *policy))
            .fold(0.0f64, f64::max);
        let base = *baseline.get_or_insert(rate);
        let overhead_pct = (base / rate - 1.0) * 100.0;
        eprintln!("  {name:>10}: {rate:>9.0} pts/s ({overhead_pct:+.2}% vs off)");
        rows.push(vec![i as f64, rate, overhead_pct]);
    }

    let header = ["policy_idx", "pts_per_s", "overhead_pct_vs_off"];
    print_table(
        "Validation overhead, single shard [SynDrift] (0=off 1=reject 2=clamp 3=quarantine)",
        &header,
        &rows,
    );

    let out = PathBuf::from("results/validation_overhead.csv");
    write_csv(&out, &header, &rows).expect("write results csv");
    eprintln!("wrote {}", out.display());
}
