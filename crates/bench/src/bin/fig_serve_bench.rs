//! Multi-tenant serving throughput and query latency.
//!
//! Boots the serving front-end in-process on an ephemeral port, creates
//! `--tenants` tenants (1 000 by default — the acceptance floor for the
//! serving PR), and drives them over `--conns` real TCP connections for
//! `--duration` seconds. Every round interleaves an ingest batch with a
//! live query (alternating per-tenant stats and horizon-cluster reads), so
//! the reported p99 covers the query path under concurrent ingest, not an
//! idle server.
//!
//! Latency percentiles are exact — every request is timed and the sorted
//! vector is indexed, no histogram sketching — and go to
//! `results/BENCH_serve.json` together with aggregate points/second.
//!
//! ```text
//! cargo run -p ustream-bench --release --bin fig_serve_bench -- \
//!     --tenants 1000 --conns 8 --duration 10
//! ```
//!
//! `--smoke 1` shrinks the run for CI. `--strict 1` turns the acceptance
//! checks (all tenants created and serving, non-zero sustained ingest)
//! into a hard exit code.

use serde::Serialize;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use ustream_bench::Args;
use ustream_serve::protocol::{ErrorCode, Request, Response, TenantSpec, WirePoint};
use ustream_serve::tenant::AdmissionPolicy;
use ustream_serve::{ServeClient, ServeConfig, Server};

/// splitmix64: deterministic workload synthesis, same recipe as the CLI
/// load driver.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn batch_for(tenant: usize, tick0: u64, len: usize, dims: usize, seed: u64) -> Vec<WirePoint> {
    (0..len as u64)
        .map(|i| {
            let t = tick0 + i;
            let values = (0..dims)
                .map(|d| {
                    let h = splitmix64(seed ^ ((tenant as u64) << 32) ^ (t << 8) ^ d as u64);
                    let base = if h & 1 == 0 { 0.0 } else { 8.0 };
                    base + (h >> 8) as f64 / u64::MAX as f64
                })
                .collect();
            WirePoint {
                values,
                errors: vec![0.2; dims],
                timestamp: t,
            }
        })
        .collect()
}

#[derive(Default)]
struct Tally {
    points: u64,
    accepted: u64,
    overloaded: u64,
    horizon_unavailable: u64,
    ingest_us: Vec<u64>,
    query_us: Vec<u64>,
}

#[allow(clippy::too_many_arguments)]
fn drive(
    addr: std::net::SocketAddr,
    tenant_ids: Vec<usize>,
    spec: TenantSpec,
    batch: usize,
    duration: Duration,
    dims: usize,
    seed: u64,
    horizon: u64,
) -> Result<Tally, String> {
    let mut client = ServeClient::connect(addr).map_err(|e| e.to_string())?;
    for &id in &tenant_ids {
        match client
            .request(&Request::CreateTenant {
                name: format!("bench-{id}"),
                spec: spec.clone(),
            })
            .map_err(|e| e.to_string())?
        {
            Response::Created => {}
            other => return Err(format!("create bench-{id}: unexpected {other:?}")),
        }
    }
    let mut tally = Tally::default();
    let started = Instant::now();
    let mut round = 0u64;
    while started.elapsed() < duration {
        for &id in &tenant_ids {
            let points = batch_for(id, round * batch as u64 + 1, batch, dims, seed);
            tally.points += points.len() as u64;
            let t0 = Instant::now();
            let resp = client
                .request(&Request::Ingest {
                    name: format!("bench-{id}"),
                    points,
                })
                .map_err(|e| e.to_string())?;
            tally.ingest_us.push(t0.elapsed().as_micros() as u64);
            match resp {
                Response::Ingested { accepted, .. } => tally.accepted += accepted,
                Response::Error {
                    code: ErrorCode::Overloaded,
                    ..
                } => tally.overloaded += 1,
                other => return Err(format!("ingest bench-{id}: unexpected {other:?}")),
            }

            // Alternate the two live read paths so the p99 covers both.
            let query = if (round + id as u64).is_multiple_of(2) {
                Request::TenantStats {
                    name: format!("bench-{id}"),
                }
            } else {
                Request::HorizonClusters {
                    name: format!("bench-{id}"),
                    horizon,
                }
            };
            let t0 = Instant::now();
            let resp = client.request(&query).map_err(|e| e.to_string())?;
            tally.query_us.push(t0.elapsed().as_micros() as u64);
            match resp {
                Response::TenantStats { .. } | Response::Clusters { .. } => {}
                Response::Error {
                    code: ErrorCode::HorizonUnavailable,
                    ..
                } => tally.horizon_unavailable += 1,
                Response::Error {
                    code: ErrorCode::Overloaded,
                    ..
                } => tally.overloaded += 1,
                other => return Err(format!("query bench-{id}: unexpected {other:?}")),
            }
        }
        round += 1;
    }
    Ok(tally)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[derive(Serialize)]
struct Report {
    bench: String,
    tenants: usize,
    conns: usize,
    workers: usize,
    duration_s: f64,
    batch: usize,
    dims: usize,
    points_total: u64,
    points_accepted: u64,
    points_per_s: f64,
    ingest_requests: usize,
    ingest_p50_us: u64,
    ingest_p99_us: u64,
    query_requests: usize,
    query_p50_us: u64,
    query_p99_us: u64,
    overloaded: u64,
    horizon_unavailable: u64,
    server_frames: u64,
    server_jobs_rejected: u64,
    drained_clean: bool,
}

fn main() {
    let args = Args::parse();
    let smoke: bool = args.get("smoke", 0u8) != 0;
    let tenants: usize = args.get("tenants", if smoke { 64 } else { 1_000 });
    let conns: usize = args.get("conns", 8).clamp(1, tenants.max(1));
    let batch: usize = args.get("batch", 50);
    let duration_s: u64 = args.get("duration", if smoke { 2 } else { 10 });
    let dims: usize = args.get("dims", 2);
    let n_micro: usize = args.get("n-micro", 8);
    let workers: usize = args.get("workers", 4);
    let seed: u64 = args.get("seed", 42);
    let horizon: u64 = args.get("horizon", 512);
    let strict: bool = args.get("strict", 0u8) != 0;

    eprintln!(
        "serve bench: {tenants} tenants over {conns} conns, {workers} workers, \
         batch {batch}, {duration_s}s"
    );

    let config = ServeConfig {
        workers,
        queue_capacity: args.get("queue", 1_024),
        buckets: 64,
        admission: AdmissionPolicy::default(),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("server binds an ephemeral port");
    let addr = server.addr();

    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..conns {
        let ids: Vec<usize> = (c..tenants).step_by(conns).collect();
        let spec = TenantSpec {
            snapshot_every: 256,
            ..TenantSpec::new(n_micro, dims)
        };
        handles.push(std::thread::spawn(move || {
            drive(
                addr,
                ids,
                spec,
                batch,
                Duration::from_secs(duration_s),
                dims,
                seed,
                horizon,
            )
        }));
    }

    let mut total = Tally::default();
    let mut failed = Vec::new();
    for (c, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(t)) => {
                total.points += t.points;
                total.accepted += t.accepted;
                total.overloaded += t.overloaded;
                total.horizon_unavailable += t.horizon_unavailable;
                total.ingest_us.extend(t.ingest_us);
                total.query_us.extend(t.query_us);
            }
            Ok(Err(e)) => failed.push(format!("conn {c}: {e}")),
            Err(_) => failed.push(format!("conn {c}: panicked")),
        }
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let live_tenants = server.stats().tenants;
    let server_stats = server.stats();
    let drained = server.shutdown_drain(Duration::from_secs(60)).is_ok();

    total.ingest_us.sort_unstable();
    total.query_us.sort_unstable();
    let pps = total.points as f64 / elapsed;
    let report = Report {
        bench: "serve".to_string(),
        tenants,
        conns,
        workers,
        duration_s: elapsed,
        batch,
        dims,
        points_total: total.points,
        points_accepted: total.accepted,
        points_per_s: pps,
        ingest_requests: total.ingest_us.len(),
        ingest_p50_us: percentile(&total.ingest_us, 0.50),
        ingest_p99_us: percentile(&total.ingest_us, 0.99),
        query_requests: total.query_us.len(),
        query_p50_us: percentile(&total.query_us, 0.50),
        query_p99_us: percentile(&total.query_us, 0.99),
        overloaded: total.overloaded,
        horizon_unavailable: total.horizon_unavailable,
        server_frames: server_stats.frames,
        server_jobs_rejected: server_stats.jobs_rejected,
        drained_clean: drained,
    };

    eprintln!(
        "  {:.0} points/s aggregate ({} offered, {} accepted, {} overloaded)",
        pps, total.points, total.accepted, total.overloaded
    );
    eprintln!(
        "  ingest p50 {}us p99 {}us over {} requests",
        report.ingest_p50_us, report.ingest_p99_us, report.ingest_requests
    );
    eprintln!(
        "  query  p50 {}us p99 {}us over {} requests",
        report.query_p50_us, report.query_p99_us, report.query_requests
    );
    eprintln!("  live tenants at end of run: {live_tenants}, drained clean: {drained}");

    let out = PathBuf::from("results/BENCH_serve.json");
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(
        &out,
        serde_json::to_string(&report).expect("serialize report"),
    )
    .expect("write BENCH_serve.json");
    eprintln!("wrote {}", out.display());

    let mut problems = failed;
    if live_tenants != tenants as u64 {
        problems.push(format!(
            "expected {tenants} live tenants, server reports {live_tenants}"
        ));
    }
    if total.accepted == 0 {
        problems.push("no points accepted".to_string());
    }
    if !drained {
        problems.push("server did not drain cleanly".to_string());
    }
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("FAIL: {p}");
        }
        if strict {
            std::process::exit(1);
        }
    }
}
