//! Bytes-on-wire of the distributed tier: ECF delta shipping versus
//! forwarding every raw point to the coordinator.
//!
//! Boots a real coordinator on an ephemeral port, attaches `--sites`
//! sites, and drives a deterministic interleaved stream through them over
//! TCP. The delta cost is what the sites actually wrote to their sockets
//! (USRV header + JSON payload, retries and duplicates included). The
//! raw-forwarding baseline frames the *same* point batches with the same
//! codec at the same cadence — batched per epoch, which flatters the
//! baseline relative to per-point forwarding.
//!
//! The run double-checks exactness on the side: the coordinator's merged
//! per-site maps must equal the per-shard maps of a single engine fed the
//! interleaved stream, bit for bit.
//!
//! ```text
//! cargo run -p ustream-bench --release --bin fig_distrib_bench -- \
//!     --sites 4 --points 20000 --dims 8
//! ```
//!
//! The run also prices a coordinator kill: half the stream, kill, restart
//! via the WAL-replay path and again cold (full-resync fallback), and
//! measure what the sites spend on the wire after each failover.
//!
//! Output goes to `results/BENCH_distrib.json`. `--smoke 1` shrinks the
//! run for CI; `--strict 1` exits non-zero unless every run is exact,
//! delta bytes are at most 10% of the raw baseline, and the WAL-replay
//! recovery is strictly cheaper than the full-resync fallback.

use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;
use umicro::{Ecf, UMicroConfig};
use ustream_bench::Args;
use ustream_common::backoff::splitmix64;
use ustream_common::UncertainPoint;
use ustream_distrib::{Coordinator, CoordinatorConfig, DurabilityPolicy, Site, SiteConfig};
use ustream_engine::EngineBuilder;
use ustream_serve::protocol::encode_message;
use ustream_snapshot::{shard_of_id, SHARD_ID_BITS};

const LOCAL_MASK: u64 = (1u64 << SHARD_ID_BITS) - 1;

/// Deterministic stream: a few drifting centres plus noise.
fn point(t: u64, dims: usize, seed: u64) -> UncertainPoint {
    let values = (0..dims)
        .map(|d| {
            let r = splitmix64(seed ^ t.wrapping_mul(0x9e37_79b9) ^ ((d as u64) << 32));
            let centre = ((r >> 8) % 5) as f64 * 12.0;
            let drift = (t as f64) * 1e-4;
            let noise = (r & 0xffff) as f64 / 65_536.0 - 0.5;
            centre + drift + noise
        })
        .collect();
    UncertainPoint::new(values, vec![0.3; dims], t, None)
}

/// What raw-point forwarding would put on the wire: the same sub-streams,
/// framed with the same codec, batched at the same epoch cadence.
#[derive(Serialize)]
struct RawPoint {
    v: Vec<f64>,
    e: Vec<f64>,
    t: u64,
}

#[derive(Serialize)]
struct RawBatch {
    site: u64,
    seq: u64,
    points: Vec<RawPoint>,
}

fn raw_forwarding_bytes(points: &[UncertainPoint], n_sites: usize, delta_every: usize) -> u64 {
    let mut total = 0u64;
    for site in 0..n_sites {
        let sub: Vec<&UncertainPoint> = points.iter().skip(site).step_by(n_sites).collect();
        for (e, chunk) in sub.chunks(delta_every).enumerate() {
            let batch = RawBatch {
                site: site as u64,
                seq: e as u64 + 1,
                points: chunk
                    .iter()
                    .map(|p| RawPoint {
                        v: p.values().to_vec(),
                        e: p.errors().to_vec(),
                        t: p.timestamp(),
                    })
                    .collect(),
            };
            let frame =
                encode_message(&batch, usize::MAX >> 1).expect("raw batch frames like a delta");
            total += frame.len() as u64;
        }
    }
    total
}

/// What one coordinator-kill-and-restart costs the sites in phase-2 wire
/// bytes, for one of the two restart paths.
struct RecoveryOutcome {
    phase2_bytes: u64,
    exact: bool,
    wal_records_replayed: u64,
}

/// One coordinator-kill scenario: the stream, the fleet shape, the
/// durable base path, and the per-shard reference the finished run must
/// equal. Shared verbatim by the two restart paths.
struct RecoveryScenario<'a> {
    points: &'a [UncertainPoint],
    n_sites: usize,
    n_micro: usize,
    dims: usize,
    delta_every: usize,
    expected: &'a [BTreeMap<u64, Ecf>],
    base: &'a str,
}

/// Feeds half the stream, kills the coordinator, restarts it either via
/// `resume` (WAL-replay path) or cold (full-resync fallback), fails the
/// sites over to the new port and finishes the stream. Returns the wire
/// bytes the sites spent *after* the failover — the recovery cost the
/// tentpole bounds.
fn recovery_run(sc: &RecoveryScenario<'_>, resume: bool) -> RecoveryOutcome {
    let RecoveryScenario {
        points,
        n_sites,
        n_micro,
        dims,
        delta_every,
        expected,
        base,
    } = *sc;
    let cleanup = || {
        for suffix in ["manifest", "0", "1", "2", "3", "tmp", "wal"] {
            let _ = std::fs::remove_file(format!("{base}.{suffix}"));
        }
    };
    cleanup();
    let durable = |snapshot_every_epochs: u64| CoordinatorConfig {
        durability: Some(DurabilityPolicy {
            base: base.to_string(),
            generations: 3,
            snapshot_every_epochs,
        }),
        ..CoordinatorConfig::default()
    };
    // A lazy snapshot cadence keeps a WAL tail alive at the kill, so the
    // replay path is actually exercised rather than loading a snapshot
    // that already covers everything.
    let coord = Coordinator::bind("127.0.0.1:0", durable(64)).expect("coordinator binds");
    let addr = coord.addr().to_string();
    let mut sites: Vec<Site> = (0..n_sites)
        .map(|i| {
            let engine =
                EngineBuilder::new(UMicroConfig::new(n_micro, dims).expect("valid site config"))
                    .shards(1)
                    .build()
                    .expect("site engine boots");
            let mut cfg = SiteConfig::new(i as u64, &addr);
            cfg.delta_every = delta_every as u64;
            cfg.io_deadline = Duration::from_secs(30);
            Site::attach(engine, cfg).expect("site attaches")
        })
        .collect();

    let half = points.len() / 2;
    for (k, p) in points.iter().take(half).enumerate() {
        sites[k % n_sites].push(p.clone()).expect("site ingest");
    }
    for site in sites.iter_mut() {
        site.sync().expect("pre-kill sync");
    }
    let before: u64 = sites.iter().map(|s| s.stats().bytes_sent).sum();
    coord.kill();

    let coord = if resume {
        Coordinator::resume("127.0.0.1:0", durable(64)).expect("coordinator resumes")
    } else {
        // Cold restart: the durable state is ignored, every site reships
        // its whole map — the fallback the WAL path is measured against.
        Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).expect("coordinator binds")
    };
    let addr2 = coord.addr().to_string();
    let wal_records_replayed = coord.stats().recovery.map_or(0, |r| r.wal_records_replayed);
    for site in sites.iter_mut() {
        site.repoint(&addr2).expect("site failover");
    }
    for (k, p) in points.iter().enumerate().skip(half) {
        sites[k % n_sites].push(p.clone()).expect("site ingest");
    }
    let mut after = 0u64;
    for site in sites {
        after += site.finish().expect("final sync").bytes_sent;
    }
    let exact = (0..n_sites).all(|i| coord.site_clusters(i as u64) == expected[i]);
    coord.shutdown();
    cleanup();
    RecoveryOutcome {
        phase2_bytes: after - before,
        exact,
        wal_records_replayed,
    }
}

#[derive(Serialize)]
struct Report {
    bench: String,
    sites: usize,
    points: usize,
    dims: usize,
    n_micro_per_site: usize,
    delta_every: usize,
    delta_bytes: u64,
    delta_frames: u64,
    raw_bytes: u64,
    bytes_ratio: f64,
    delta_bytes_per_point: f64,
    raw_bytes_per_point: f64,
    epochs_applied: u64,
    duplicates_dropped: u64,
    gaps_nacked: u64,
    frames_rejected: u64,
    exact: bool,
    recovery_replay_bytes: u64,
    recovery_resync_bytes: u64,
    recovery_ratio: f64,
    recovery_replay_exact: bool,
    recovery_resync_exact: bool,
    wal_records_replayed: u64,
}

fn main() {
    let args = Args::parse();
    let smoke: bool = args.get("smoke", 0u8) != 0;
    let n_sites: usize = args.get("sites", 4);
    let n_points: usize = args.get("points", if smoke { 6_000 } else { 20_000 });
    let dims: usize = args.get("dims", 8);
    let n_micro: usize = args.get("n-micro", if smoke { 16 } else { 64 });
    let delta_every: usize = args.get("delta-every", (n_points / n_sites.max(1) / 2).max(1));
    let seed: u64 = args.get("seed", 42);
    let strict: bool = args.get("strict", 0u8) != 0;

    eprintln!(
        "distrib bench: {n_sites} sites, {n_points} points, {dims} dims, \
         {n_micro} micro/site, epoch every {delta_every}"
    );

    let points: Vec<_> = (1..=n_points as u64)
        .map(|t| point(t, dims, seed))
        .collect();

    // Single-node ground truth (budget scaled so each shard matches one
    // site's clusterer exactly).
    let reference = EngineBuilder::new(
        UMicroConfig::new(n_micro * n_sites, dims).expect("valid reference config"),
    )
    .shards(n_sites)
    .build()
    .expect("reference engine boots");
    for p in &points {
        reference.push(p.clone()).expect("reference ingest");
    }
    reference.flush();
    let mut expected: Vec<BTreeMap<u64, Ecf>> = vec![BTreeMap::new(); n_sites];
    for mc in reference.micro_clusters() {
        expected[shard_of_id(mc.id)].insert(mc.id & LOCAL_MASK, mc.ecf);
    }
    reference.shutdown();

    // The distributed run, over real sockets.
    let coord =
        Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).expect("coordinator binds");
    let addr = coord.addr().to_string();
    let mut sites: Vec<Site> = (0..n_sites)
        .map(|i| {
            let engine =
                EngineBuilder::new(UMicroConfig::new(n_micro, dims).expect("valid site config"))
                    .shards(1)
                    .build()
                    .expect("site engine boots");
            let mut cfg = SiteConfig::new(i as u64, &addr);
            cfg.delta_every = delta_every as u64;
            cfg.io_deadline = Duration::from_secs(30);
            Site::attach(engine, cfg).expect("site attaches")
        })
        .collect();
    for (k, p) in points.iter().enumerate() {
        sites[k % n_sites].push(p.clone()).expect("site ingest");
    }
    let mut delta_bytes = 0u64;
    let mut delta_frames = 0u64;
    for site in sites {
        let s = site.finish().expect("final sync");
        delta_bytes += s.bytes_sent;
        delta_frames += s.frames_sent;
    }

    let exact = (0..n_sites).all(|i| coord.site_clusters(i as u64) == expected[i]);
    let stats = coord.stats();
    coord.shutdown();

    // Recovery cost: the same half-stream kill, restarted once through
    // the WAL-replay path and once cold (full resync). Epochs here are
    // smaller than the per-site cluster budget, so a delta touches a
    // strict subset of the map and the full-resync reship actually costs
    // something — with coarse epochs every cluster changes every epoch
    // and the two paths would be indistinguishable.
    let recovery_delta_every = (n_micro / 4).max(1);
    let base = std::env::temp_dir()
        .join(format!("ustream-bench-coord-{}.snap", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let scenario = RecoveryScenario {
        points: &points,
        n_sites,
        n_micro,
        dims,
        delta_every: recovery_delta_every,
        expected: &expected,
        base: &base,
    };
    eprintln!("  recovery: replaying WAL after a coordinator kill...");
    let replay = recovery_run(&scenario, true);
    eprintln!("  recovery: cold restart (full-resync fallback)...");
    let resync = recovery_run(&scenario, false);

    let raw_bytes = raw_forwarding_bytes(&points, n_sites, delta_every);
    let ratio = delta_bytes as f64 / raw_bytes.max(1) as f64;
    let report = Report {
        bench: "distrib".to_string(),
        sites: n_sites,
        points: n_points,
        dims,
        n_micro_per_site: n_micro,
        delta_every,
        delta_bytes,
        delta_frames,
        raw_bytes,
        bytes_ratio: ratio,
        delta_bytes_per_point: delta_bytes as f64 / n_points as f64,
        raw_bytes_per_point: raw_bytes as f64 / n_points as f64,
        epochs_applied: stats.epochs_applied,
        duplicates_dropped: stats.duplicates_dropped,
        gaps_nacked: stats.gaps_nacked,
        frames_rejected: stats.frames_rejected,
        exact,
        recovery_replay_bytes: replay.phase2_bytes,
        recovery_resync_bytes: resync.phase2_bytes,
        recovery_ratio: replay.phase2_bytes as f64 / resync.phase2_bytes.max(1) as f64,
        recovery_replay_exact: replay.exact,
        recovery_resync_exact: resync.exact,
        wal_records_replayed: replay.wal_records_replayed,
    };

    eprintln!(
        "  delta shipping: {} bytes in {} frames ({:.1} B/point)",
        delta_bytes, delta_frames, report.delta_bytes_per_point
    );
    eprintln!(
        "  raw forwarding: {} bytes ({:.1} B/point)",
        raw_bytes, report.raw_bytes_per_point
    );
    eprintln!("  ratio: {:.2}% of raw, exact: {exact}", ratio * 100.0);
    eprintln!(
        "  recovery after kill: WAL replay {}B (exact: {}, {} records replayed) \
         vs full resync {}B (exact: {}) — {:.1}% of the fallback",
        replay.phase2_bytes,
        replay.exact,
        replay.wal_records_replayed,
        resync.phase2_bytes,
        resync.exact,
        report.recovery_ratio * 100.0,
    );

    let out = PathBuf::from("results/BENCH_distrib.json");
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(
        &out,
        serde_json::to_string(&report).expect("serialize report"),
    )
    .expect("write BENCH_distrib.json");
    eprintln!("wrote {}", out.display());

    let mut problems = Vec::new();
    if !exact {
        problems.push("coordinator state diverged from the single-node run".to_string());
    }
    if ratio > 0.10 {
        problems.push(format!(
            "delta shipping used {:.2}% of raw-forwarding bytes (gate: 10%)",
            ratio * 100.0
        ));
    }
    if !replay.exact {
        problems.push("WAL-replay recovery diverged from the single-node run".to_string());
    }
    if !resync.exact {
        problems.push("full-resync recovery diverged from the single-node run".to_string());
    }
    if replay.phase2_bytes >= resync.phase2_bytes {
        problems.push(format!(
            "WAL-replay recovery cost {}B, not below the {}B full-resync fallback",
            replay.phase2_bytes, resync.phase2_bytes
        ));
    }
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("FAIL: {p}");
        }
        if strict {
            std::process::exit(1);
        }
    }
}
