//! Bytes-on-wire of the distributed tier: ECF delta shipping versus
//! forwarding every raw point to the coordinator.
//!
//! Boots a real coordinator on an ephemeral port, attaches `--sites`
//! sites, and drives a deterministic interleaved stream through them over
//! TCP. The delta cost is what the sites actually wrote to their sockets
//! (USRV header + JSON payload, retries and duplicates included). The
//! raw-forwarding baseline frames the *same* point batches with the same
//! codec at the same cadence — batched per epoch, which flatters the
//! baseline relative to per-point forwarding.
//!
//! The run double-checks exactness on the side: the coordinator's merged
//! per-site maps must equal the per-shard maps of a single engine fed the
//! interleaved stream, bit for bit.
//!
//! ```text
//! cargo run -p ustream-bench --release --bin fig_distrib_bench -- \
//!     --sites 4 --points 20000 --dims 8
//! ```
//!
//! Output goes to `results/BENCH_distrib.json`. `--smoke 1` shrinks the
//! run for CI; `--strict 1` exits non-zero unless the run is exact and
//! delta bytes are at most 10% of the raw baseline.

use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;
use umicro::{Ecf, UMicroConfig};
use ustream_bench::Args;
use ustream_common::backoff::splitmix64;
use ustream_common::UncertainPoint;
use ustream_distrib::{Coordinator, CoordinatorConfig, Site, SiteConfig};
use ustream_engine::EngineBuilder;
use ustream_serve::protocol::encode_message;
use ustream_snapshot::{shard_of_id, SHARD_ID_BITS};

const LOCAL_MASK: u64 = (1u64 << SHARD_ID_BITS) - 1;

/// Deterministic stream: a few drifting centres plus noise.
fn point(t: u64, dims: usize, seed: u64) -> UncertainPoint {
    let values = (0..dims)
        .map(|d| {
            let r = splitmix64(seed ^ t.wrapping_mul(0x9e37_79b9) ^ ((d as u64) << 32));
            let centre = ((r >> 8) % 5) as f64 * 12.0;
            let drift = (t as f64) * 1e-4;
            let noise = (r & 0xffff) as f64 / 65_536.0 - 0.5;
            centre + drift + noise
        })
        .collect();
    UncertainPoint::new(values, vec![0.3; dims], t, None)
}

/// What raw-point forwarding would put on the wire: the same sub-streams,
/// framed with the same codec, batched at the same epoch cadence.
#[derive(Serialize)]
struct RawPoint {
    v: Vec<f64>,
    e: Vec<f64>,
    t: u64,
}

#[derive(Serialize)]
struct RawBatch {
    site: u64,
    seq: u64,
    points: Vec<RawPoint>,
}

fn raw_forwarding_bytes(points: &[UncertainPoint], n_sites: usize, delta_every: usize) -> u64 {
    let mut total = 0u64;
    for site in 0..n_sites {
        let sub: Vec<&UncertainPoint> = points.iter().skip(site).step_by(n_sites).collect();
        for (e, chunk) in sub.chunks(delta_every).enumerate() {
            let batch = RawBatch {
                site: site as u64,
                seq: e as u64 + 1,
                points: chunk
                    .iter()
                    .map(|p| RawPoint {
                        v: p.values().to_vec(),
                        e: p.errors().to_vec(),
                        t: p.timestamp(),
                    })
                    .collect(),
            };
            let frame =
                encode_message(&batch, usize::MAX >> 1).expect("raw batch frames like a delta");
            total += frame.len() as u64;
        }
    }
    total
}

#[derive(Serialize)]
struct Report {
    bench: String,
    sites: usize,
    points: usize,
    dims: usize,
    n_micro_per_site: usize,
    delta_every: usize,
    delta_bytes: u64,
    delta_frames: u64,
    raw_bytes: u64,
    bytes_ratio: f64,
    delta_bytes_per_point: f64,
    raw_bytes_per_point: f64,
    epochs_applied: u64,
    duplicates_dropped: u64,
    gaps_nacked: u64,
    frames_rejected: u64,
    exact: bool,
}

fn main() {
    let args = Args::parse();
    let smoke: bool = args.get("smoke", 0u8) != 0;
    let n_sites: usize = args.get("sites", 4);
    let n_points: usize = args.get("points", if smoke { 6_000 } else { 20_000 });
    let dims: usize = args.get("dims", 8);
    let n_micro: usize = args.get("n-micro", if smoke { 16 } else { 64 });
    let delta_every: usize = args.get("delta-every", (n_points / n_sites.max(1) / 2).max(1));
    let seed: u64 = args.get("seed", 42);
    let strict: bool = args.get("strict", 0u8) != 0;

    eprintln!(
        "distrib bench: {n_sites} sites, {n_points} points, {dims} dims, \
         {n_micro} micro/site, epoch every {delta_every}"
    );

    let points: Vec<_> = (1..=n_points as u64)
        .map(|t| point(t, dims, seed))
        .collect();

    // Single-node ground truth (budget scaled so each shard matches one
    // site's clusterer exactly).
    let reference = EngineBuilder::new(
        UMicroConfig::new(n_micro * n_sites, dims).expect("valid reference config"),
    )
    .shards(n_sites)
    .build()
    .expect("reference engine boots");
    for p in &points {
        reference.push(p.clone()).expect("reference ingest");
    }
    reference.flush();
    let mut expected: Vec<BTreeMap<u64, Ecf>> = vec![BTreeMap::new(); n_sites];
    for mc in reference.micro_clusters() {
        expected[shard_of_id(mc.id)].insert(mc.id & LOCAL_MASK, mc.ecf);
    }
    reference.shutdown();

    // The distributed run, over real sockets.
    let coord =
        Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).expect("coordinator binds");
    let addr = coord.addr().to_string();
    let mut sites: Vec<Site> = (0..n_sites)
        .map(|i| {
            let engine =
                EngineBuilder::new(UMicroConfig::new(n_micro, dims).expect("valid site config"))
                    .shards(1)
                    .build()
                    .expect("site engine boots");
            let mut cfg = SiteConfig::new(i as u64, &addr);
            cfg.delta_every = delta_every as u64;
            cfg.io_deadline = Duration::from_secs(30);
            Site::attach(engine, cfg).expect("site attaches")
        })
        .collect();
    for (k, p) in points.iter().enumerate() {
        sites[k % n_sites].push(p.clone()).expect("site ingest");
    }
    let mut delta_bytes = 0u64;
    let mut delta_frames = 0u64;
    for site in sites {
        let s = site.finish().expect("final sync");
        delta_bytes += s.bytes_sent;
        delta_frames += s.frames_sent;
    }

    let exact = (0..n_sites).all(|i| coord.site_clusters(i as u64) == expected[i]);
    let stats = coord.stats();
    coord.shutdown();

    let raw_bytes = raw_forwarding_bytes(&points, n_sites, delta_every);
    let ratio = delta_bytes as f64 / raw_bytes.max(1) as f64;
    let report = Report {
        bench: "distrib".to_string(),
        sites: n_sites,
        points: n_points,
        dims,
        n_micro_per_site: n_micro,
        delta_every,
        delta_bytes,
        delta_frames,
        raw_bytes,
        bytes_ratio: ratio,
        delta_bytes_per_point: delta_bytes as f64 / n_points as f64,
        raw_bytes_per_point: raw_bytes as f64 / n_points as f64,
        epochs_applied: stats.epochs_applied,
        duplicates_dropped: stats.duplicates_dropped,
        gaps_nacked: stats.gaps_nacked,
        frames_rejected: stats.frames_rejected,
        exact,
    };

    eprintln!(
        "  delta shipping: {} bytes in {} frames ({:.1} B/point)",
        delta_bytes, delta_frames, report.delta_bytes_per_point
    );
    eprintln!(
        "  raw forwarding: {} bytes ({:.1} B/point)",
        raw_bytes, report.raw_bytes_per_point
    );
    eprintln!("  ratio: {:.2}% of raw, exact: {exact}", ratio * 100.0);

    let out = PathBuf::from("results/BENCH_distrib.json");
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(
        &out,
        serde_json::to_string(&report).expect("serialize report"),
    )
    .expect("write BENCH_distrib.json");
    eprintln!("wrote {}", out.display());

    let mut problems = Vec::new();
    if !exact {
        problems.push("coordinator state diverged from the single-node run".to_string());
    }
    if ratio > 0.10 {
        problems.push(format!(
            "delta shipping used {:.2}% of raw-forwarding bytes (gate: 10%)",
            ratio * 100.0
        ));
    }
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("FAIL: {p}");
        }
        if strict {
            std::process::exit(1);
        }
    }
}
