//! Ingestion throughput of the sharded engine vs shard count.
//!
//! The stream is routed round-robin across `N` shard workers, each running
//! an independent clusterer over `n_micro / N` micro-clusters. Because the
//! per-point cost of UMicro is dominated by the nearest-cluster scan over
//! the live budget, splitting the budget shrinks every shard's scan — so
//! throughput scales with the shard count even on a single core, on top of
//! whatever thread-level parallelism the host offers.
//!
//! ```text
//! cargo run -p ustream-bench --release --bin fig_shard_scaling -- \
//!     --len 200000 --n-micro 100 --shards 1,2,4,8
//! ```
//!
//! Run with `--release`; debug-build rates are meaningless.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;
use umicro::UMicroConfig;
use ustream_bench::csv::{print_table, write_csv};
use ustream_bench::Args;
use ustream_common::UncertainPoint;
use ustream_engine::{EngineBuilder, EngineConfig};
use ustream_synth::{NoisyStream, SynDriftConfig};

const DIMS: usize = 20;

fn main() {
    let args = Args::parse();
    let len: usize = args.get("len", 200_000);
    let n_micro: usize = args.get("n-micro", 100);
    let eta: f64 = args.get("eta", 0.5);
    let seed: u64 = args.get("seed", 11);
    let batch: usize = args.get("batch", 8_192);
    let snapshot_every: u64 = args.get("snapshot-every", 4_096);
    let novelty: bool = args.get("novelty", false);
    let shard_counts: Vec<usize> = args
        .get_str("shards", "1,2,4,8")
        .split(',')
        .map(|s| s.trim().parse().expect("--shards takes e.g. 1,2,4,8"))
        .collect();

    eprintln!(
        "shard scaling on SynDrift (eta={eta}, len={len}, n_micro={n_micro}, \
         batch={batch}, snapshot_every={snapshot_every}, novelty={novelty})"
    );

    // Pre-materialise the stream so generation cost stays out of the timing.
    let mut cfg = SynDriftConfig::paper();
    cfg.len = len;
    let points: Vec<UncertainPoint> =
        NoisyStream::new(cfg.build(seed), eta, StdRng::seed_from_u64(seed + 1)).collect();

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut baseline = None;
    for &shards in &shard_counts {
        let config =
            EngineConfig::new(UMicroConfig::new(n_micro, DIMS).expect("valid UMicro config"))
                .with_shards(shards)
                .with_snapshot_every(snapshot_every)
                .with_novelty_factor(novelty.then_some(8.0));
        let engine = EngineBuilder::from_config(config)
            .build()
            .expect("engine starts");

        let started = Instant::now();
        for part in points.chunks(batch) {
            engine.push_slice(part).expect("engine accepts records");
        }
        engine.flush();
        let elapsed = started.elapsed().as_secs_f64();

        let report = engine.shutdown();
        assert_eq!(report.points_processed, len as u64, "records lost");
        let rate = len as f64 / elapsed;
        let speedup = rate / *baseline.get_or_insert(rate);
        eprintln!(
            "  {shards} shard(s): {rate:>9.0} pts/s ({speedup:.2}x), \
             {} merges @ {:.0} us",
            report.merges, report.mean_merge_micros
        );
        rows.push(vec![
            shards as f64,
            rate,
            speedup,
            report.merges as f64,
            report.mean_merge_micros,
        ]);
    }

    let header = [
        "shards",
        "pts_per_s",
        "speedup_vs_1",
        "merges",
        "mean_merge_us",
    ];
    print_table("Sharded ingestion scaling [SynDrift]", &header, &rows);

    let out = PathBuf::from("results/shard_scaling.csv");
    write_csv(&out, &header, &rows).expect("write results csv");
    eprintln!("wrote {}", out.display());
}
