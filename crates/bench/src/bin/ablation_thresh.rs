//! Ablation A5: the dimension-counting threshold `thresh` (§II-B leaves it
//! unspecified). Sweeps the multiplier on the global per-dimension variance
//! and reports mean purity — showing the plateau that makes the parameter
//! uncritical.

use std::path::PathBuf;
use umicro::{UMicro, UMicroConfig};
use ustream_bench::csv::{print_table, write_csv};
use ustream_bench::{Args, RunConfig};
use ustream_eval::ProgressionTracker;
use ustream_synth::profiles::profile_stream;
use ustream_synth::{DatasetProfile, NoisyStream};

fn main() {
    let args = Args::parse();
    let profile =
        DatasetProfile::from_name(&args.get_str("dataset", "syndrift")).expect("unknown dataset");
    let mut cfg = RunConfig::paper(profile);
    cfg.len = args.get("len", 40_000);
    cfg.eta = args.get("eta", 1.0);
    cfg.seed = args.get("seed", cfg.seed);

    let thresholds: Vec<f64> = args
        .get_str("thresholds", "0.5,1,2,4,8,16")
        .split(',')
        .map(|s| s.trim().parse().expect("numeric threshold"))
        .collect();

    let mut rows = Vec::new();
    for &thresh in &thresholds {
        use rand::SeedableRng;
        let stream = NoisyStream::new(
            profile_stream(cfg.profile, cfg.len, cfg.seed),
            cfg.eta,
            rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x0e7a),
        );
        let mut alg = UMicro::new(
            UMicroConfig::new(cfg.n_micro, profile.dims())
                .expect("valid config")
                .with_dimension_counting(thresh),
        );
        let mut tracker = ProgressionTracker::new(cfg.checkpoint_interval());
        for p in stream {
            let out = alg.insert(&p);
            tracker.observe(out.cluster_id, p.label());
        }
        tracker.checkpoint();
        rows.push(vec![thresh, tracker.mean_purity().unwrap_or(0.0)]);
    }

    let header = ["thresh", "mean_purity"];
    print_table(
        &format!(
            "Ablation A5: dimension-counting threshold [{} eta={} len={}]",
            profile.name(),
            cfg.eta,
            cfg.len
        ),
        &header,
        &rows,
    );
    let out = PathBuf::from("results/ablation_thresh.csv");
    write_csv(&out, &header, &rows).expect("write results csv");
    eprintln!("wrote {}", out.display());
}
