//! Ablation A4: pyramidal time-frame geometry (§II-D).
//! Sweeps `(α, l)` and reports, for a stream of `len` ticks:
//! snapshots retained (memory), the analytic horizon-error bound
//! `1/α^(l−1)`, and the worst *measured* relative horizon error over a set
//! of probe horizons — verifying Eq. 7 empirically and exposing the
//! storage/accuracy trade-off.

use std::path::PathBuf;
use ustream_bench::csv::{print_table, write_csv};
use ustream_bench::Args;
use ustream_snapshot::{PyramidConfig, SnapshotStore};

fn main() {
    let args = Args::parse();
    let len: u64 = args.get("len", 100_000);

    let geometries = [(2u64, 2u32), (2, 4), (2, 6), (3, 3), (4, 2), (4, 4)];
    let probes: Vec<u64> = (0..)
        .map(|i| 1u64 << i)
        .take_while(|h| *h < len / 2)
        .collect();

    let mut rows = Vec::new();
    for (alpha, l) in geometries {
        let cfg = PyramidConfig::new(alpha, l).expect("valid geometry");
        let mut store = SnapshotStore::new(cfg);
        for t in 1..=len {
            store.record(t, t);
        }
        let mut worst = 0.0f64;
        for &h in &probes {
            if let Ok(base) = store.horizon_base(len, h) {
                let h_eff = len - base.time;
                let rel = (h_eff.saturating_sub(h)) as f64 / h as f64;
                worst = worst.max(rel);
            }
        }
        rows.push(vec![
            alpha as f64,
            l as f64,
            store.len() as f64,
            cfg.horizon_error_bound(),
            worst,
        ]);
        assert!(
            worst <= cfg.horizon_error_bound() + 1e-9,
            "Eq. 7 violated for alpha={alpha}, l={l}: measured {worst}"
        );
    }

    let header = [
        "alpha",
        "l",
        "snapshots_stored",
        "error_bound",
        "worst_measured",
    ];
    print_table(
        &format!("Ablation A4: pyramidal geometry [stream length {len}]"),
        &header,
        &rows,
    );
    let out = PathBuf::from("results/ablation_snapshots.csv");
    write_csv(&out, &header, &rows).expect("write results csv");
    eprintln!("wrote {}", out.display());
}
