//! Regenerates Figures 5–7: whole-stream accuracy as the error level η
//! grows, UMicro vs CluStream.
//!
//! ```text
//! cargo run -p ustream-bench --release --bin fig_purity_vs_error -- \
//!     --dataset forest --len 60000
//! ```

use std::path::PathBuf;
use ustream_bench::csv::{print_table, write_csv};
use ustream_bench::{purity_vs_error, Args, Method, RunConfig};
use ustream_synth::DatasetProfile;

fn main() {
    let args = Args::parse();
    let dataset = args.get_str("dataset", "syndrift");
    let profile =
        DatasetProfile::from_name(&dataset).unwrap_or_else(|| panic!("unknown dataset: {dataset}"));

    let mut cfg = RunConfig::paper(profile);
    if !args.get("full", false) {
        cfg.len = 40_000;
    }
    cfg.len = args.get("len", cfg.len);
    cfg.n_micro = args.get("n-micro", cfg.n_micro);
    cfg.seed = args.get("seed", cfg.seed);

    let etas: Vec<f64> = args
        .get_str("etas", "0.25,0.5,0.75,1.0,1.5,2.0")
        .split(',')
        .map(|s| s.trim().parse().expect("numeric eta"))
        .collect();

    eprintln!(
        "purity-vs-error on {} (len={}, n_micro={}, etas={etas:?})",
        profile.name(),
        cfg.len,
        cfg.n_micro
    );

    let methods = [Method::UMicro, Method::CluStream];
    let sweep = purity_vs_error(&cfg, &etas, &methods);

    let rows: Vec<Vec<f64>> = sweep
        .iter()
        .map(|(eta, purities)| {
            let mut row = vec![*eta];
            row.extend(purities.iter().copied());
            row
        })
        .collect();
    let header = ["eta", "UMicro", "CluStream"];
    print_table(
        &format!(
            "Fig 5-7 analogue: purity vs error level [{}]",
            profile.name()
        ),
        &header,
        &rows,
    );

    // The paper's qualitative claim: the gap grows with error level.
    if rows.len() >= 2 {
        let first_gap = rows.first().map(|r| r[1] - r[2]).unwrap_or(0.0);
        let last_gap = rows.last().map(|r| r[1] - r[2]).unwrap_or(0.0);
        println!(
            "\nUMicro-CluStream gap: {:.4} at eta={} -> {:.4} at eta={}",
            first_gap,
            rows[0][0],
            last_gap,
            rows[rows.len() - 1][0]
        );
    }

    let out = PathBuf::from(format!(
        "results/purity_vs_error_{}.csv",
        profile.name().to_lowercase()
    ));
    write_csv(&out, &header, &rows).expect("write results csv");
    eprintln!("wrote {}", out.display());
}
