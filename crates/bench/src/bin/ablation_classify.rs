//! Ablation A7: streaming classification of uncertain records.
//!
//! The paper's reference \[1\] shows uncertainty information improves
//! classification. This ablation trains one [`umicro::MicroClassifier`]
//! per run on a labelled noisy stream and compares held-out accuracy when
//! the prediction metric *uses* the error information (expected distance)
//! vs when it ignores it (plain Euclidean), across noise levels.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use umicro::{MicroClassifier, UMicroConfig};
use ustream_bench::csv::{print_table, write_csv};
use ustream_bench::Args;
use ustream_common::UncertainPoint;
use ustream_synth::profiles::profile_stream;
use ustream_synth::{DatasetProfile, NoiseVariant, NoisyStream};

fn main() {
    let args = Args::parse();
    let profile =
        DatasetProfile::from_name(&args.get_str("dataset", "forest")).expect("unknown dataset");
    let len: usize = args.get("len", 30_000);
    let train_frac: f64 = args.get("train-frac", 0.7);
    let per_class_budget: usize = args.get("budget", 25);
    let seed: u64 = args.get("seed", 20080407);

    let etas: Vec<f64> = args
        .get_str("etas", "0.25,0.5,1.0,1.5,2.0")
        .split(',')
        .map(|s| s.trim().parse().expect("numeric eta"))
        .collect();

    let mut rows = Vec::new();
    for &eta in &etas {
        // Per-record noise heterogeneity makes the per-point ψ informative.
        let stream = NoisyStream::new(
            profile_stream(profile, len, seed),
            eta,
            StdRng::seed_from_u64(seed ^ 0x0e7a),
        )
        .with_variant(NoiseVariant::PerRecord { spread: 0.9 });
        let points: Vec<UncertainPoint> = stream.collect();
        let split = (points.len() as f64 * train_frac) as usize;

        let mut clf = MicroClassifier::new(
            UMicroConfig::new(per_class_budget, profile.dims()).expect("valid config"),
        );
        for p in &points[..split] {
            clf.train_labelled(p);
        }

        let mut corrected_ok = 0usize;
        let mut expected_ok = 0usize;
        let mut euclid_ok = 0usize;
        let mut total = 0usize;
        for p in &points[split..] {
            let truth = p.label().expect("labelled stream");
            total += 1;
            if clf.classify(p).map(|c| c.label) == Some(truth) {
                corrected_ok += 1;
            }
            if clf.classify_expected(p).map(|c| c.label) == Some(truth) {
                expected_ok += 1;
            }
            if clf.classify_euclidean(p).map(|c| c.label) == Some(truth) {
                euclid_ok += 1;
            }
        }
        rows.push(vec![
            eta,
            corrected_ok as f64 / total as f64,
            expected_ok as f64 / total as f64,
            euclid_ok as f64 / total as f64,
        ]);
    }

    let header = ["eta", "corrected_acc", "expected_acc", "euclidean_acc"];
    print_table(
        &format!(
            "Ablation A7: uncertain classification [{} len={len} budget={per_class_budget}/class]",
            profile.name()
        ),
        &header,
        &rows,
    );
    let out = PathBuf::from("results/ablation_classify.csv");
    write_csv(&out, &header, &rows).expect("write results csv");
    eprintln!("wrote {}", out.display());
}
