//! Regenerates Figures 8–10: stream processing rate (points/second over the
//! trailing 2 seconds) with progression of the stream — UMicro vs the
//! "optimistic baseline" CluStream, which ignores the error information and
//! therefore does strictly less work per point.
//!
//! ```text
//! cargo run -p ustream-bench --release --bin fig_throughput -- \
//!     --dataset network --len 200000
//! ```
//!
//! Run with `--release`; debug-build rates are meaningless.

use std::path::PathBuf;
use ustream_bench::csv::{print_table, write_csv};
use ustream_bench::{throughput_run, Args, Method, RunConfig};
use ustream_synth::DatasetProfile;

fn main() {
    let args = Args::parse();
    let dataset = args.get_str("dataset", "syndrift");
    let profile =
        DatasetProfile::from_name(&dataset).unwrap_or_else(|| panic!("unknown dataset: {dataset}"));

    let mut cfg = RunConfig::paper(profile);
    if !args.get("full", false) {
        cfg.len = 200_000;
    }
    cfg.eta = args.get("eta", cfg.eta);
    cfg.len = args.get("len", cfg.len);
    cfg.n_micro = args.get("n-micro", cfg.n_micro);
    cfg.seed = args.get("seed", cfg.seed);
    let sample_every: u64 = args.get("sample-every", (cfg.len / 10).max(1) as u64);

    eprintln!(
        "throughput on {} (eta={}, len={}, n_micro={})",
        profile.name(),
        cfg.eta,
        cfg.len,
        cfg.n_micro
    );

    let umicro = throughput_run(&cfg, Method::UMicro, sample_every);
    let clustream = throughput_run(&cfg, Method::CluStream, sample_every);

    let rows: Vec<Vec<f64>> = umicro
        .samples
        .iter()
        .zip(&clustream.samples)
        .map(|((pts, u), (_, c))| vec![*pts as f64, *u, *c])
        .collect();
    let header = ["points", "UMicro_pts_per_s", "CluStream_pts_per_s"];
    print_table(
        &format!(
            "Fig 8-10 analogue: processing rate vs progression [{}]",
            profile.name()
        ),
        &header,
        &rows,
    );
    println!(
        "\noverall: UMicro={:.0} pts/s, CluStream(optimistic baseline)={:.0} pts/s, ratio={:.2}",
        umicro.overall,
        clustream.overall,
        umicro.overall / clustream.overall
    );

    let out = PathBuf::from(format!(
        "results/throughput_{}.csv",
        profile.name().to_lowercase()
    ));
    write_csv(&out, &header, &rows).expect("write results csv");
    eprintln!("wrote {}", out.display());
}
