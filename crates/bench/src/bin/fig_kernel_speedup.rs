//! Measures what the SoA distance kernel buys: single-shard insertion
//! throughput (points/second) with the kernel disabled (scalar per-cluster
//! distance loops), enabled once per compiled SIMD backend (packed
//! centroid/noise matrices, runtime-dispatched vector ISA), enabled in
//! opt-in f32 ranking mode, and enabled with mini-batch insertion, across
//! dimensionalities and micro-cluster budgets.
//!
//! ```text
//! cargo run -p ustream-bench --release --bin fig_kernel_speedup -- \
//!     --len 50000 --reps 3 [--strict]
//! ```
//!
//! `--strict` exits non-zero when the auto-dispatched SIMD kernel fails to
//! clear 1.5x over the forced-scalar kernel baseline on any sweep point
//! with `dims >= 8` — the CI regression gate for the vector backends.
//! Narrower rows are excluded deliberately: at d=5 a row is one 4-lane
//! chunk plus a tail element, so per-row vector setup costs as much as
//! the arithmetic it saves and the scalar backend wins — no vector ISA
//! can help rows the canonical 4-lane reduction already covers.
//!
//! Emits `results/BENCH_kernel.json` plus a table on stdout. Run with
//! `--release`; debug-build rates are meaningless.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;
use umicro::kernel::simd::{self, Backend};
use umicro::{UMicro, UMicroConfig};
use ustream_bench::Args;
use ustream_common::UncertainPoint;
use ustream_synth::{NoisyStream, SynDriftConfig};

/// Mini-batch size for the batched variant — large enough to amortise the
/// per-call kernel synchronisation check, small enough to stay cache-warm.
const BATCH: usize = 256;

/// SIMD-over-scalar-kernel floor enforced by `--strict`.
const STRICT_FLOOR: f64 = 1.5;

/// `--strict` only gates sweep points at least this wide: below it a row
/// fits in the canonical four scalar lanes and vector ISAs cannot win.
const STRICT_MIN_DIMS: usize = 8;

#[derive(Debug, Serialize)]
struct BackendRow {
    /// Kernel backend forced for this measurement.
    backend: String,
    /// Insertion throughput with the kernel on this backend.
    kernel_pps: f64,
    /// Speedup over the kernel-off scalar distance loops.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Row {
    dims: usize,
    n_micro: usize,
    scalar_pps: f64,
    /// One measurement per compiled-and-available SIMD backend.
    backends: Vec<BackendRow>,
    /// Auto-dispatched backend (what production runs).
    kernel_pps: f64,
    /// Auto-dispatched backend with f32 scan + exact f64 re-check.
    f32_pps: f64,
    batched_pps: f64,
    kernel_speedup: f64,
    /// Auto-dispatched SIMD kernel over the forced-scalar kernel: the
    /// pure vector-ISA win, independent of the SoA-layout win.
    simd_speedup: f64,
    batched_speedup: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    len: usize,
    reps: usize,
    eta: f64,
    /// Backend the runtime dispatcher picked on this machine.
    auto_backend: String,
    rows: Vec<Row>,
}

fn stream(dims: usize, len: usize, eta: f64, seed: u64) -> Vec<UncertainPoint> {
    let mut cfg = SynDriftConfig::paper();
    cfg.dims = dims;
    cfg.len = len;
    NoisyStream::new(cfg.build(seed), eta, StdRng::seed_from_u64(seed ^ 0x0e7a)).collect()
}

fn config(n_micro: usize, dims: usize) -> UMicroConfig {
    UMicroConfig::new(n_micro, dims).expect("valid config")
}

/// Best-of-`reps` insertion throughput with `prepare` applied to each
/// fresh instance before timing starts.
fn measure(
    points: &[UncertainPoint],
    n_micro: usize,
    dims: usize,
    reps: usize,
    prepare: impl Fn(&mut UMicro),
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let mut alg = UMicro::new(config(n_micro, dims));
        prepare(&mut alg);
        let started = Instant::now();
        for p in points {
            black_box(alg.insert(p));
        }
        let rate = points.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
        best = best.max(rate);
    }
    best
}

fn main() {
    let args = Args::parse();
    let len: usize = args.get("len", 50_000);
    let reps: usize = args.get("reps", 3);
    let eta: f64 = args.get("eta", 0.5);
    let seed: u64 = args.get("seed", 11);
    let strict: bool = args.get("strict", false);

    let dims_sweep = [5usize, 20, 50];
    let micro_sweep = [25usize, 100];
    let auto_backend = simd::force(None).name().to_string();

    let mut rows = Vec::new();
    let mut strict_ok = true;
    println!(
        "{:>5} {:>8} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "dims",
        "n_micro",
        "scalar_pps",
        "kernel_pps",
        "f32_pps",
        "batched_pps",
        "k_spd",
        "simd",
        "b_spd"
    );
    for &dims in &dims_sweep {
        let points = stream(dims, len, eta, seed);
        for &n_micro in &micro_sweep {
            let scalar_pps = measure(&points, n_micro, dims, reps, |alg| {
                alg.set_kernel_enabled(false);
            });

            let mut backends = Vec::new();
            let mut scalar_kernel_pps = f64::NAN;
            for &backend in Backend::compiled() {
                if !backend.available() {
                    continue;
                }
                simd::force(Some(backend));
                let pps = measure(&points, n_micro, dims, reps, |_| {});
                if backend == Backend::Scalar {
                    scalar_kernel_pps = pps;
                }
                backends.push(BackendRow {
                    backend: backend.name().to_string(),
                    kernel_pps: pps,
                    speedup: pps / scalar_pps,
                });
            }
            simd::force(None);

            let kernel_pps = measure(&points, n_micro, dims, reps, |_| {});
            let f32_pps = measure(&points, n_micro, dims, reps, |alg| {
                alg.set_f32_rank(true);
            });
            let batched_pps = {
                let mut best = 0.0f64;
                let mut out = Vec::with_capacity(BATCH);
                for _ in 0..reps {
                    let mut alg = UMicro::new(config(n_micro, dims));
                    let started = Instant::now();
                    for chunk in points.chunks(BATCH) {
                        out.clear();
                        alg.insert_batch(chunk, &mut out);
                        black_box(out.len());
                    }
                    let rate = points.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
                    best = best.max(rate);
                }
                best
            };

            let simd_speedup = kernel_pps / scalar_kernel_pps;
            let below_floor = simd_speedup < STRICT_FLOOR || simd_speedup.is_nan();
            if strict && dims >= STRICT_MIN_DIMS && below_floor {
                strict_ok = false;
                eprintln!(
                    "STRICT: dims={dims} n_micro={n_micro}: auto backend is only \
                     {simd_speedup:.2}x the scalar-backend kernel (floor {STRICT_FLOOR}x)"
                );
            }
            let row = Row {
                dims,
                n_micro,
                scalar_pps,
                backends,
                kernel_pps,
                f32_pps,
                batched_pps,
                kernel_speedup: kernel_pps / scalar_pps,
                simd_speedup,
                batched_speedup: batched_pps / scalar_pps,
            };
            println!(
                "{:>5} {:>8} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>8.2} {:>8.2} {:>8.2}",
                row.dims,
                row.n_micro,
                row.scalar_pps,
                row.kernel_pps,
                row.f32_pps,
                row.batched_pps,
                row.kernel_speedup,
                row.simd_speedup,
                row.batched_speedup
            );
            for b in &row.backends {
                println!(
                    "{:>5} {:>8} {:>12} {:>12.0} {:>12} {:>12} {:>8.2}",
                    "", "", b.backend, b.kernel_pps, "", "", b.speedup
                );
            }
            rows.push(row);
        }
    }

    let report = Report {
        bench: "kernel_speedup".to_string(),
        len,
        reps,
        eta,
        auto_backend,
        rows,
    };
    let out = PathBuf::from("results/BENCH_kernel.json");
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(
        &out,
        serde_json::to_string(&report).expect("serialize report"),
    )
    .expect("write BENCH_kernel.json");
    eprintln!("wrote {}", out.display());
    if strict && !strict_ok {
        eprintln!("STRICT: SIMD speedup floor violated; failing");
        std::process::exit(1);
    }
}
