//! Measures what the SoA distance kernel buys: single-shard insertion
//! throughput (points/second) with the kernel disabled (scalar per-cluster
//! distance loops), enabled (packed centroid/noise matrices with cached
//! invariants), and enabled with mini-batch insertion, across
//! dimensionalities and micro-cluster budgets.
//!
//! ```text
//! cargo run -p ustream-bench --release --bin fig_kernel_speedup -- \
//!     --len 50000 --reps 3
//! ```
//!
//! Emits `results/BENCH_kernel.json` plus a table on stdout. Run with
//! `--release`; debug-build rates are meaningless.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;
use umicro::{UMicro, UMicroConfig};
use ustream_bench::Args;
use ustream_common::UncertainPoint;
use ustream_synth::{NoisyStream, SynDriftConfig};

/// Mini-batch size for the batched variant — large enough to amortise the
/// per-call kernel synchronisation check, small enough to stay cache-warm.
const BATCH: usize = 256;

#[derive(Debug, Serialize)]
struct Row {
    dims: usize,
    n_micro: usize,
    scalar_pps: f64,
    kernel_pps: f64,
    batched_pps: f64,
    kernel_speedup: f64,
    batched_speedup: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    len: usize,
    reps: usize,
    eta: f64,
    rows: Vec<Row>,
}

fn stream(dims: usize, len: usize, eta: f64, seed: u64) -> Vec<UncertainPoint> {
    let mut cfg = SynDriftConfig::paper();
    cfg.dims = dims;
    cfg.len = len;
    NoisyStream::new(cfg.build(seed), eta, StdRng::seed_from_u64(seed ^ 0x0e7a)).collect()
}

fn config(n_micro: usize, dims: usize) -> UMicroConfig {
    UMicroConfig::new(n_micro, dims).expect("valid config")
}

fn main() {
    let args = Args::parse();
    let len: usize = args.get("len", 50_000);
    let reps: usize = args.get("reps", 3);
    let eta: f64 = args.get("eta", 0.5);
    let seed: u64 = args.get("seed", 11);

    let dims_sweep = [5usize, 20, 50];
    let micro_sweep = [25usize, 100];

    let mut rows = Vec::new();
    println!(
        "{:>5} {:>8} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "dims", "n_micro", "scalar_pps", "kernel_pps", "batched_pps", "k_spd", "b_spd"
    );
    for &dims in &dims_sweep {
        let points = stream(dims, len, eta, seed);
        for &n_micro in &micro_sweep {
            let scalar_pps = {
                let mut best = 0.0f64;
                for _ in 0..reps {
                    let mut alg = UMicro::new(config(n_micro, dims));
                    alg.set_kernel_enabled(false);
                    let started = Instant::now();
                    for p in &points {
                        black_box(alg.insert(p));
                    }
                    let rate = points.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
                    best = best.max(rate);
                }
                best
            };
            let kernel_pps = {
                let mut best = 0.0f64;
                for _ in 0..reps {
                    let mut alg = UMicro::new(config(n_micro, dims));
                    let started = Instant::now();
                    for p in &points {
                        black_box(alg.insert(p));
                    }
                    let rate = points.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
                    best = best.max(rate);
                }
                best
            };
            let batched_pps = {
                let mut best = 0.0f64;
                let mut out = Vec::with_capacity(BATCH);
                for _ in 0..reps {
                    let mut alg = UMicro::new(config(n_micro, dims));
                    let started = Instant::now();
                    for chunk in points.chunks(BATCH) {
                        out.clear();
                        alg.insert_batch(chunk, &mut out);
                        black_box(out.len());
                    }
                    let rate = points.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
                    best = best.max(rate);
                }
                best
            };
            let row = Row {
                dims,
                n_micro,
                scalar_pps,
                kernel_pps,
                batched_pps,
                kernel_speedup: kernel_pps / scalar_pps,
                batched_speedup: batched_pps / scalar_pps,
            };
            println!(
                "{:>5} {:>8} {:>12.0} {:>12.0} {:>12.0} {:>8.2} {:>8.2}",
                row.dims,
                row.n_micro,
                row.scalar_pps,
                row.kernel_pps,
                row.batched_pps,
                row.kernel_speedup,
                row.batched_speedup
            );
            rows.push(row);
        }
    }

    let report = Report {
        bench: "kernel_speedup".to_string(),
        len,
        reps,
        eta,
        rows,
    };
    let out = PathBuf::from("results/BENCH_kernel.json");
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(
        &out,
        serde_json::to_string(&report).expect("serialize report"),
    )
    .expect("write BENCH_kernel.json");
    eprintln!("wrote {}", out.display());
}
