//! Ablation A2: sensitivity to the uncertainty-boundary factor `t`.
//! The paper recommends `t = 3` "with the use of the normal distribution
//! assumption"; this sweep shows purity and the rate of new-cluster
//! creation across `t ∈ {1, 2, 3, 4, 6}`.

use std::path::PathBuf;
use umicro::{UMicro, UMicroConfig};
use ustream_bench::csv::{print_table, write_csv};
use ustream_bench::{Args, RunConfig};
use ustream_eval::ProgressionTracker;
use ustream_synth::profiles::profile_stream;
use ustream_synth::{DatasetProfile, NoisyStream};

fn main() {
    let args = Args::parse();
    let profile =
        DatasetProfile::from_name(&args.get_str("dataset", "syndrift")).expect("unknown dataset");
    let mut cfg = RunConfig::paper(profile);
    cfg.len = args.get("len", 40_000);
    cfg.eta = args.get("eta", 0.5);
    cfg.seed = args.get("seed", cfg.seed);

    let factors: Vec<f64> = args
        .get_str("factors", "1,2,3,4,6")
        .split(',')
        .map(|s| s.trim().parse().expect("numeric factor"))
        .collect();

    let mut rows = Vec::new();
    for &t in &factors {
        use rand::SeedableRng;
        let clean = profile_stream(cfg.profile, cfg.len, cfg.seed);
        let stream = NoisyStream::new(
            clean,
            cfg.eta,
            rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x0e7a),
        );
        let config = UMicroConfig::new(cfg.n_micro, profile.dims())
            .expect("valid config")
            .with_boundary_factor(t);
        let mut alg = UMicro::new(config);
        let mut tracker = ProgressionTracker::new(cfg.checkpoint_interval());
        let mut created = 0u64;
        for p in stream {
            let out = alg.insert(&p);
            if out.created {
                created += 1;
            }
            tracker.observe(out.cluster_id, p.label());
        }
        tracker.checkpoint();
        rows.push(vec![
            t,
            tracker.mean_purity().unwrap_or(0.0),
            created as f64 / cfg.len as f64,
        ]);
    }

    let header = ["boundary_t", "mean_purity", "creation_rate"];
    print_table(
        &format!(
            "Ablation A2: boundary factor [{} eta={} len={}]",
            profile.name(),
            cfg.eta,
            cfg.len
        ),
        &header,
        &rows,
    );
    let out = PathBuf::from("results/ablation_boundary.csv");
    write_csv(&out, &header, &rows).expect("write results csv");
    eprintln!("wrote {}", out.display());
}
