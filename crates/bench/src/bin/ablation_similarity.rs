//! Ablation A1: how much of UMicro's accuracy comes from the
//! dimension-counting similarity vs the raw expected distance (Lemma 2.2)?
//! Sweeps η on SynDrift and reports mean purity for both ranking modes plus
//! the CluStream baseline.

use std::path::PathBuf;
use ustream_bench::csv::{print_table, write_csv};
use ustream_bench::{purity_vs_error, Args, Method, RunConfig};
use ustream_synth::DatasetProfile;

fn main() {
    let args = Args::parse();
    let profile =
        DatasetProfile::from_name(&args.get_str("dataset", "syndrift")).expect("unknown dataset");
    let mut cfg = RunConfig::paper(profile);
    cfg.len = args.get("len", 40_000);
    cfg.n_micro = args.get("n-micro", cfg.n_micro);
    cfg.seed = args.get("seed", cfg.seed);

    let etas: Vec<f64> = args
        .get_str("etas", "0.25,0.5,1.0,1.5,2.0")
        .split(',')
        .map(|s| s.trim().parse().expect("numeric eta"))
        .collect();

    let methods = [
        Method::UMicro,
        Method::UMicroExpectedDistance,
        Method::CluStream,
    ];
    let sweep = purity_vs_error(&cfg, &etas, &methods);
    let rows: Vec<Vec<f64>> = sweep
        .iter()
        .map(|(eta, p)| {
            let mut row = vec![*eta];
            row.extend(p.iter().copied());
            row
        })
        .collect();
    let header = ["eta", "dim-counting", "expected-dist", "CluStream"];
    print_table(
        &format!(
            "Ablation A1: similarity function [{} len={}]",
            profile.name(),
            cfg.len
        ),
        &header,
        &rows,
    );

    let out = PathBuf::from("results/ablation_similarity.csv");
    write_csv(&out, &header, &rows).expect("write results csv");
    eprintln!("wrote {}", out.display());
}
