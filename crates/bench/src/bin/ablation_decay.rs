//! Ablation A3: time decay on a fast-drifting stream (§II-E).
//! Compares the undecayed algorithm against half-lives spanning two orders
//! of magnitude on a SynDrift stream with aggressive drift: decay should
//! help because stale micro-cluster mass stops pinning centroids to where
//! the clusters used to be.

use std::path::PathBuf;
use umicro::{DecayedUMicro, UMicro, UMicroConfig};
use ustream_bench::csv::{print_table, write_csv};
use ustream_bench::Args;
use ustream_eval::ProgressionTracker;
use ustream_synth::{NoisyStream, SynDriftConfig};

fn main() {
    let args = Args::parse();
    let len: usize = args.get("len", 40_000);
    let eta: f64 = args.get("eta", 0.5);
    let n_micro: usize = args.get("n-micro", 100);
    let seed: u64 = args.get("seed", 20080407);
    let epsilon: f64 = args.get("epsilon", 0.05); // aggressive drift.

    let half_lives: Vec<f64> = args
        .get_str("half-lives", "500,2000,10000,50000")
        .split(',')
        .map(|s| s.trim().parse().expect("numeric half-life"))
        .collect();

    let make_stream = |seed: u64| {
        use rand::SeedableRng;
        let mut gen = SynDriftConfig::paper();
        gen.len = len;
        gen.epsilon = epsilon;
        gen.drift_interval = 20;
        NoisyStream::new(
            gen.build(seed),
            eta,
            rand::rngs::StdRng::seed_from_u64(seed ^ 0x0e7a),
        )
    };
    let config = || UMicroConfig::new(n_micro, 20).expect("valid config");
    let checkpoint = (len as u64 / 12).max(1);

    let mut rows = Vec::new();

    // Baseline: no decay (half-life = ∞ reported as 0 in the table).
    {
        let mut alg = UMicro::new(config());
        let mut tracker = ProgressionTracker::new(checkpoint);
        for p in make_stream(seed) {
            let out = alg.insert(&p);
            tracker.observe(out.cluster_id, p.label());
        }
        tracker.checkpoint();
        rows.push(vec![0.0, tracker.mean_purity().unwrap_or(0.0)]);
    }

    for &hl in &half_lives {
        let mut alg = DecayedUMicro::with_half_life(config(), hl);
        let mut tracker = ProgressionTracker::new(checkpoint);
        for p in make_stream(seed) {
            let out = alg.insert(&p);
            tracker.observe(out.cluster_id, p.label());
        }
        tracker.checkpoint();
        rows.push(vec![hl, tracker.mean_purity().unwrap_or(0.0)]);
    }

    let header = ["half_life(0=off)", "mean_purity"];
    print_table(
        &format!("Ablation A3: decay on fast-drift SynDrift [eta={eta} len={len} eps={epsilon}]"),
        &header,
        &rows,
    );
    let out = PathBuf::from("results/ablation_decay.csv");
    write_csv(&out, &header, &rows).expect("write results csv");
    eprintln!("wrote {}", out.display());
}
