//! Ablation A6: the micro-cluster budget `n_micro` (the paper fixes 100).
//! Sweeps the budget and reports mean purity and throughput for UMicro and
//! CluStream — quantifying the granularity/cost trade-off.

use std::path::PathBuf;
use std::time::Instant;
use ustream_bench::csv::{print_table, write_csv};
use ustream_bench::{purity_progression, Args, Method, RunConfig};
use ustream_synth::DatasetProfile;

fn main() {
    let args = Args::parse();
    let profile =
        DatasetProfile::from_name(&args.get_str("dataset", "syndrift")).expect("unknown dataset");
    let mut cfg = RunConfig::paper(profile);
    cfg.len = args.get("len", 40_000);
    cfg.eta = args.get("eta", 1.0);
    cfg.seed = args.get("seed", cfg.seed);

    let budgets: Vec<usize> = args
        .get_str("budgets", "25,50,100,200,400")
        .split(',')
        .map(|s| s.trim().parse().expect("numeric budget"))
        .collect();

    let mut rows = Vec::new();
    for &n in &budgets {
        let mut c = cfg.clone();
        c.n_micro = n;
        let t0 = Instant::now();
        let u = purity_progression(&c, Method::UMicro).mean_purity();
        let u_rate = c.len as f64 / t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let cs = purity_progression(&c, Method::CluStream).mean_purity();
        let c_rate = c.len as f64 / t0.elapsed().as_secs_f64();
        rows.push(vec![n as f64, u, cs, u_rate, c_rate]);
    }

    let header = [
        "n_micro",
        "UMicro_purity",
        "CluStream_purity",
        "UMicro_pts_s",
        "CluStream_pts_s",
    ];
    print_table(
        &format!(
            "Ablation A6: micro-cluster budget [{} eta={} len={}]",
            profile.name(),
            cfg.eta,
            cfg.len
        ),
        &header,
        &rows,
    );
    let out = PathBuf::from("results/ablation_n_micro.csv");
    write_csv(&out, &header, &rows).expect("write results csv");
    eprintln!("wrote {}", out.display());
}
