//! Regenerates Figures 2–4: cluster purity with progression of the stream,
//! UMicro vs CluStream at a fixed noise level (paper: η = 0.5, 100
//! micro-clusters).
//!
//! ```text
//! cargo run -p ustream-bench --release --bin fig_purity_progression -- \
//!     --dataset syndrift --eta 0.5 --len 600000 --n-micro 100
//! ```
//!
//! Defaults run a scaled-down stream (60k points) so the figure regenerates
//! in seconds; pass `--full true` for the paper-size stream.

use std::path::PathBuf;
use ustream_bench::csv::{print_table, write_csv};
use ustream_bench::{purity_progression, Args, Method, RunConfig};
use ustream_synth::DatasetProfile;

fn main() {
    let args = Args::parse();
    let dataset = args.get_str("dataset", "syndrift");
    let profile =
        DatasetProfile::from_name(&dataset).unwrap_or_else(|| panic!("unknown dataset: {dataset}"));

    let mut cfg = RunConfig::paper(profile);
    if !args.get("full", false) {
        cfg.len = 60_000;
    }
    cfg.eta = args.get("eta", cfg.eta);
    cfg.len = args.get("len", cfg.len);
    cfg.n_micro = args.get("n-micro", cfg.n_micro);
    cfg.checkpoint = args.get("checkpoint", cfg.checkpoint);
    cfg.seed = args.get("seed", cfg.seed);

    eprintln!(
        "purity-vs-progression on {} (eta={}, len={}, n_micro={})",
        profile.name(),
        cfg.eta,
        cfg.len,
        cfg.n_micro
    );

    let umicro = purity_progression(&cfg, Method::UMicro);
    let clustream = purity_progression(&cfg, Method::CluStream);

    let rows: Vec<Vec<f64>> = umicro
        .points
        .iter()
        .zip(&clustream.points)
        .map(|(u, c)| vec![u.points as f64, u.purity, c.purity])
        .collect();
    let header = ["points", "UMicro", "CluStream"];
    print_table(
        &format!(
            "Fig 2-4 analogue: purity vs progression [{} eta={}]",
            profile.name(),
            cfg.eta
        ),
        &header,
        &rows,
    );
    println!(
        "\nmean purity: UMicro={:.4}  CluStream={:.4}",
        umicro.mean_purity(),
        clustream.mean_purity()
    );

    let out = PathBuf::from(format!(
        "results/purity_progression_{}_eta{}.csv",
        profile.name().to_lowercase(),
        cfg.eta
    ));
    write_csv(&out, &header, &rows).expect("write results csv");
    eprintln!("wrote {}", out.display());
}
