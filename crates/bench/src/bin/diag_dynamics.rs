//! Diagnostic: cluster-maintenance dynamics of UMicro vs CluStream on one
//! stream — creations, evictions/merges, live cluster counts, and per-class
//! cluster specialisation. Not a paper figure; used to understand runs.

use clustream::{CluStream, CluStreamConfig};
use umicro::{UMicro, UMicroConfig};
use ustream_bench::{Args, RunConfig};
use ustream_eval::ClusterPurity;
use ustream_synth::profiles::profile_stream;
use ustream_synth::{DatasetProfile, NoisyStream};

fn main() {
    let args = Args::parse();
    let profile =
        DatasetProfile::from_name(&args.get_str("dataset", "network")).expect("unknown dataset");
    let mut cfg = RunConfig::paper(profile);
    cfg.len = args.get("len", 40_000);
    cfg.eta = args.get("eta", 1.5);
    cfg.seed = args.get("seed", cfg.seed);

    let stream = |seed: u64| {
        use rand::SeedableRng;
        NoisyStream::new(
            profile_stream(cfg.profile, cfg.len, seed),
            cfg.eta,
            rand::rngs::StdRng::seed_from_u64(seed ^ 0x0e7a),
        )
    };

    // UMicro
    let mut alg = UMicro::new(
        UMicroConfig::new(cfg.n_micro, profile.dims())
            .expect("valid UMicro config")
            .with_dimension_counting(cfg.thresh),
    );
    let mut created = 0u64;
    let mut purity = ClusterPurity::new();
    for p in stream(cfg.seed) {
        let out = alg.insert(&p);
        if out.created {
            created += 1;
        }
        if let Some(l) = p.label() {
            purity.observe(out.cluster_id, l);
        }
    }
    println!(
        "UMicro:    created={created:6}  live={:3}  whole-stream purity={:.4} weighted={:.4}",
        alg.micro_clusters().len(),
        purity.purity().expect("points were observed"),
        purity.weighted_purity().expect("points were observed")
    );
    let mut radii: Vec<f64> = alg
        .micro_clusters()
        .iter()
        .map(|c| c.ecf.uncertain_radius())
        .collect();
    radii.sort_by(f64::total_cmp);
    println!(
        "  radius p10={:.3} p50={:.3} p90={:.3}",
        radii[radii.len() / 10],
        radii[radii.len() / 2],
        radii[radii.len() * 9 / 10]
    );

    // CluStream
    let mut alg = CluStream::new(
        CluStreamConfig::new(cfg.n_micro, profile.dims()).expect("valid CluStream config"),
    );
    let mut created = 0u64;
    let mut merged = 0u64;
    let mut deleted = 0u64;
    let mut purity = ClusterPurity::new();
    for p in stream(cfg.seed) {
        let out = alg.insert(&p);
        if out.created {
            created += 1;
        }
        if out.merged.is_some() {
            merged += 1;
        }
        if out.deleted.is_some() {
            deleted += 1;
        }
        if let Some(l) = p.label() {
            purity.observe(out.cluster_id, l);
        }
    }
    println!(
        "CluStream: created={created:6}  live={:3}  merged={merged}  deleted={deleted}  purity={:.4} weighted={:.4}",
        alg.micro_clusters().len(),
        purity.purity().expect("points were observed"),
        purity.weighted_purity().expect("points were observed")
    );
}
