//! Throughput at each rung of the degradation ladder, plus the watchdog
//! heartbeat overhead guard.
//!
//! Part 1 replays the same pre-materialised stream through a single-shard
//! engine forced onto each [`LoadStage`] and reports the producer-side
//! throughput and the admission accounting — the ladder's whole point is
//! that each rung trades fidelity for ingest headroom, and this figure
//! shows how much headroom each rung actually buys.
//!
//! Part 2 measures the cost of running the governor thread (watchdog
//! heartbeat bookkeeping) against an identical engine without it. The
//! governor only reads per-shard atomics on a 20 ms poll, so the overhead
//! budget is <1% of single-shard throughput; `--strict` turns the budget
//! into a hard exit code for CI.
//!
//! ```text
//! cargo run -p ustream-bench --release --bin fig_overload_ladder -- \
//!     --len 200000 --n-micro 100
//! ```
//!
//! Emits `results/BENCH_overload.json`. Run with `--release`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;
use umicro::UMicroConfig;
use ustream_bench::Args;
use ustream_common::UncertainPoint;
use ustream_engine::{EngineBuilder, EngineConfig, LoadStage, WatchdogConfig};
use ustream_synth::{NoisyStream, SynDriftConfig};

const DIMS: usize = 20;

#[derive(Serialize)]
struct StageRow {
    stage: String,
    push_pts_per_s: f64,
    processed: u64,
    sampled_out: u64,
    shed: u64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    len: usize,
    reps: usize,
    stages: Vec<StageRow>,
    baseline_pts_per_s: f64,
    watchdog_pts_per_s: f64,
    watchdog_overhead_pct: f64,
    overhead_budget_pct: f64,
}

fn base_config(n_micro: usize, snapshot_every: u64) -> EngineConfig {
    EngineConfig::new(UMicroConfig::new(n_micro, DIMS).expect("valid UMicro config"))
        .with_snapshot_every(snapshot_every)
        .with_novelty_factor(None)
        .with_validation(None)
}

/// Producer-side throughput of one replay; returns (pts/s, final report).
fn run_once(
    points: &[UncertainPoint],
    config: EngineConfig,
    stage: Option<LoadStage>,
    batch: usize,
) -> (f64, ustream_engine::EngineReport) {
    let engine = EngineBuilder::from_config(config)
        .build()
        .expect("engine starts");
    if let Some(stage) = stage {
        engine.force_load_stage(stage);
    }
    let started = Instant::now();
    for part in points.chunks(batch) {
        engine.push_slice(part).expect("engine accepts records");
    }
    engine.flush();
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let report = engine.shutdown();
    (points.len() as f64 / elapsed, report)
}

fn main() {
    let args = Args::parse();
    let len: usize = args.get("len", 200_000);
    let n_micro: usize = args.get("n-micro", 100);
    let eta: f64 = args.get("eta", 0.5);
    let seed: u64 = args.get("seed", 23);
    let batch: usize = args.get("batch", 8_192);
    let snapshot_every: u64 = args.get("snapshot-every", 4_096);
    let reps: usize = args.get("reps", 3);
    let strict: bool = args.get("strict", 0u8) != 0;

    eprintln!(
        "overload ladder on SynDrift (eta={eta}, len={len}, n_micro={n_micro}, \
         single shard, best of {reps})"
    );

    let mut cfg = SynDriftConfig::paper();
    cfg.len = len;
    let points: Vec<UncertainPoint> =
        NoisyStream::new(cfg.build(seed), eta, StdRng::seed_from_u64(seed + 1)).collect();

    // Part 1: throughput per forced ladder rung. No load policy is
    // installed, so no governor interferes with the forced stage.
    let stages = [
        ("normal", LoadStage::Normal),
        ("widen-merge", LoadStage::WidenMerge),
        ("sample", LoadStage::Sample),
        ("shed", LoadStage::Shed),
    ];
    let mut stage_rows = Vec::new();
    for (name, stage) in stages {
        let mut best: Option<(f64, ustream_engine::EngineReport)> = None;
        for _ in 0..reps {
            let got = run_once(
                &points,
                base_config(n_micro, snapshot_every),
                Some(stage),
                batch,
            );
            if best.as_ref().is_none_or(|(rate, _)| got.0 > *rate) {
                best = Some(got);
            }
        }
        let (rate, report) = best.expect("at least one rep");
        eprintln!(
            "  {name:>12}: {rate:>9.0} pts/s (processed {}, sampled out {}, shed {})",
            report.points_processed, report.points_sampled_out, report.points_shed
        );
        stage_rows.push(StageRow {
            stage: name.to_string(),
            push_pts_per_s: rate,
            processed: report.points_processed,
            sampled_out: report.points_sampled_out,
            shed: report.points_shed,
        });
    }

    // Part 2: heartbeat overhead guard — watchdog governor vs none. The
    // two variants are measured back to back inside each rep (interleaved)
    // so scheduler and allocator drift hits both equally; best-of damps
    // the rest.
    let overhead_reps = reps.max(5);
    let mut baseline = 0.0f64;
    let mut watchdog = 0.0f64;
    for _ in 0..overhead_reps {
        baseline =
            baseline.max(run_once(&points, base_config(n_micro, snapshot_every), None, batch).0);
        watchdog = watchdog.max(
            run_once(
                &points,
                base_config(n_micro, snapshot_every).with_watchdog(WatchdogConfig::default()),
                None,
                batch,
            )
            .0,
        );
    }
    let overhead_pct = (baseline / watchdog - 1.0) * 100.0;
    const BUDGET_PCT: f64 = 1.0;
    eprintln!(
        "  watchdog heartbeat: {watchdog:.0} pts/s vs {baseline:.0} baseline \
         ({overhead_pct:+.2}%, budget {BUDGET_PCT}%)"
    );

    let report = Report {
        bench: "overload_ladder".to_string(),
        len,
        reps,
        stages: stage_rows,
        baseline_pts_per_s: baseline,
        watchdog_pts_per_s: watchdog,
        watchdog_overhead_pct: overhead_pct,
        overhead_budget_pct: BUDGET_PCT,
    };
    let out = PathBuf::from("results/BENCH_overload.json");
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(
        &out,
        serde_json::to_string(&report).expect("serialize report"),
    )
    .expect("write BENCH_overload.json");
    eprintln!("wrote {}", out.display());

    if strict && overhead_pct > BUDGET_PCT {
        eprintln!("FAIL: watchdog overhead {overhead_pct:.2}% exceeds the {BUDGET_PCT}% budget");
        std::process::exit(1);
    }
}
