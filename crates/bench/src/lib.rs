//! # ustream-bench
//!
//! Shared harness for the figure regenerators (one binary per figure of the
//! ICDE'08 paper, see DESIGN.md §4) and the Criterion micro-benchmarks.
//!
//! The binaries print the same series the paper plots — one row per x-axis
//! point, one column per method — and write CSV files under `results/`.

pub mod args;
pub mod csv;
pub mod runner;

pub use args::Args;
pub use runner::{
    purity_progression, purity_vs_error, throughput_run, Method, PurityCurve, RunConfig,
    ThroughputCurve,
};
