//! Experiment runners shared by every figure binary.

use clustream::{CluStream, CluStreamConfig};
use std::time::Instant;
use umicro::{UMicro, UMicroConfig};
use ustream_common::{DataStream, UncertainPoint};
use ustream_eval::{ProgressionPoint, ProgressionTracker, ThroughputMeter};
use ustream_synth::profiles::profile_stream;
use ustream_synth::{DatasetProfile, NoisyStream};

/// Which clustering method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// UMicro with the paper's dimension-counting similarity.
    UMicro,
    /// UMicro ranking clusters by raw expected distance (ablation A1).
    UMicroExpectedDistance,
    /// The deterministic CluStream baseline.
    CluStream,
}

impl Method {
    /// Column label.
    pub fn name(&self) -> &'static str {
        match self {
            Method::UMicro => "UMicro",
            Method::UMicroExpectedDistance => "UMicro(expdist)",
            Method::CluStream => "CluStream",
        }
    }
}

/// Shared experiment parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Workload.
    pub profile: DatasetProfile,
    /// Noise level η.
    pub eta: f64,
    /// Stream length.
    pub len: usize,
    /// Micro-cluster budget (paper: 100).
    pub n_micro: usize,
    /// Progression checkpoint interval in points.
    pub checkpoint: u64,
    /// RNG seed (generator + noise).
    pub seed: u64,
    /// UMicro boundary factor `t`.
    pub boundary_factor: f64,
    /// UMicro dimension-counting threshold.
    pub thresh: f64,
}

impl RunConfig {
    /// Paper-style defaults for a profile (full stream length, η = 0.5,
    /// 100 micro-clusters).
    pub fn paper(profile: DatasetProfile) -> Self {
        Self {
            profile,
            eta: 0.5,
            len: profile.default_len(),
            n_micro: 100,
            checkpoint: 0,  // derived: len / 12 checkpoints
            seed: 20080407, // ICDE 2008 :)
            boundary_factor: 3.0,
            thresh: 2.0,
        }
    }

    /// Effective checkpoint interval.
    pub fn checkpoint_interval(&self) -> u64 {
        if self.checkpoint > 0 {
            self.checkpoint
        } else {
            (self.len as u64 / 12).max(1)
        }
    }

    fn stream(&self) -> NoisyStream<Box<dyn DataStream + Send>, rand::rngs::StdRng> {
        use rand::SeedableRng;
        let clean = profile_stream(self.profile, self.len, self.seed);
        NoisyStream::new(
            clean,
            self.eta,
            rand::rngs::StdRng::seed_from_u64(self.seed ^ 0x0e7a),
        )
    }

    fn umicro_config(&self, mode: Method) -> UMicroConfig {
        let base = UMicroConfig::new(self.n_micro, self.profile.dims())
            .expect("valid config")
            .with_boundary_factor(self.boundary_factor);
        match mode {
            Method::UMicroExpectedDistance => base.with_expected_distance(),
            _ => base.with_dimension_counting(self.thresh),
        }
    }
}

/// A purity-vs-progression curve for one method.
#[derive(Debug, Clone)]
pub struct PurityCurve {
    /// The method that produced the curve.
    pub method: Method,
    /// Checkpointed purity values.
    pub points: Vec<ProgressionPoint>,
}

impl PurityCurve {
    /// Mean purity across checkpoints (Figures 5–7 report this per η).
    pub fn mean_purity(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.purity).sum::<f64>() / self.points.len() as f64
    }
}

/// Runs one method over the configured stream, tracking segment purity.
pub fn purity_progression(config: &RunConfig, method: Method) -> PurityCurve {
    let mut tracker = ProgressionTracker::new(config.checkpoint_interval());
    let stream = config.stream();
    match method {
        Method::UMicro | Method::UMicroExpectedDistance => {
            let mut alg = UMicro::new(config.umicro_config(method));
            for p in stream {
                let out = alg.insert(&p);
                tracker.observe(out.cluster_id, p.label());
            }
        }
        Method::CluStream => {
            let mut alg = CluStream::new(
                CluStreamConfig::new(config.n_micro, config.profile.dims()).expect("valid config"),
            );
            for p in stream {
                let out = alg.insert(&p);
                tracker.observe(out.cluster_id, p.label());
            }
        }
    }
    tracker.checkpoint();
    PurityCurve {
        method,
        points: tracker.history().to_vec(),
    }
}

/// Sweeps η and reports whole-stream mean purity per level (Figures 5–7).
pub fn purity_vs_error(base: &RunConfig, etas: &[f64], methods: &[Method]) -> Vec<(f64, Vec<f64>)> {
    etas.iter()
        .map(|&eta| {
            let mut cfg = base.clone();
            cfg.eta = eta;
            let purities = methods
                .iter()
                .map(|&m| purity_progression(&cfg, m).mean_purity())
                .collect();
            (eta, purities)
        })
        .collect()
}

/// A throughput curve: `(points processed, points/sec)` samples.
#[derive(Debug, Clone)]
pub struct ThroughputCurve {
    /// The method measured.
    pub method: Method,
    /// `(stream position, trailing-window rate)` samples.
    pub samples: Vec<(u64, f64)>,
    /// Whole-run average points/second.
    pub overall: f64,
}

/// Runs one method flat-out and samples the trailing 2-second rate every
/// `sample_every` points (Figures 8–10).
pub fn throughput_run(config: &RunConfig, method: Method, sample_every: u64) -> ThroughputCurve {
    // Materialise the stream first so generator cost is excluded from the
    // clustering rate, matching the paper's "processed per second".
    let points: Vec<UncertainPoint> = config.stream().collect();
    let mut meter = ThroughputMeter::new();
    let mut samples = Vec::new();
    let started = Instant::now();
    let mut processed = 0u64;

    let mut record = |meter: &mut ThroughputMeter, processed: u64| {
        if processed.is_multiple_of(sample_every) {
            samples.push((processed, meter.rate()));
        }
    };

    match method {
        Method::UMicro | Method::UMicroExpectedDistance => {
            let mut alg = UMicro::new(config.umicro_config(method));
            for p in &points {
                alg.insert(p);
                processed += 1;
                meter.record(1);
                record(&mut meter, processed);
            }
        }
        Method::CluStream => {
            let mut alg = CluStream::new(
                CluStreamConfig::new(config.n_micro, config.profile.dims()).expect("valid config"),
            );
            for p in &points {
                alg.insert(p);
                processed += 1;
                meter.record(1);
                record(&mut meter, processed);
            }
        }
    }
    let overall = processed as f64 / started.elapsed().as_secs_f64().max(1e-9);
    ThroughputCurve {
        method,
        samples,
        overall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(profile: DatasetProfile) -> RunConfig {
        let mut cfg = RunConfig::paper(profile);
        cfg.len = 4_000;
        cfg.checkpoint = 1_000;
        cfg.n_micro = 40;
        cfg
    }

    #[test]
    fn purity_curves_have_expected_shape() {
        let cfg = tiny(DatasetProfile::SynDrift);
        let curve = purity_progression(&cfg, Method::UMicro);
        assert_eq!(curve.points.len(), 4);
        for p in &curve.points {
            assert!(p.purity > 0.0 && p.purity <= 1.0);
            assert!(p.clusters > 1);
        }
    }

    #[test]
    fn umicro_beats_clustream_on_noisy_syndrift() {
        // The paper's headline: under η = 1.0 noise, UMicro's purity exceeds
        // CluStream's. Run a scaled-down stream with a couple of seeds to
        // keep the assertion robust.
        let mut wins = 0;
        for seed in [1u64, 2, 3] {
            let mut cfg = tiny(DatasetProfile::SynDrift);
            cfg.eta = 1.0;
            cfg.seed = seed;
            let u = purity_progression(&cfg, Method::UMicro).mean_purity();
            let c = purity_progression(&cfg, Method::CluStream).mean_purity();
            if u > c {
                wins += 1;
            }
        }
        assert!(wins >= 2, "UMicro won only {wins}/3 seeds");
    }

    #[test]
    fn error_sweep_monotone_headers() {
        let cfg = tiny(DatasetProfile::SynDrift);
        let rows = purity_vs_error(&cfg, &[0.25, 1.0], &[Method::UMicro]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 0.25);
        assert_eq!(rows[0].1.len(), 1);
    }

    #[test]
    fn throughput_run_produces_samples() {
        let mut cfg = tiny(DatasetProfile::SynDrift);
        cfg.len = 2_000;
        let t = throughput_run(&cfg, Method::CluStream, 500);
        assert_eq!(t.samples.len(), 4);
        assert!(t.overall > 0.0);
    }
}
