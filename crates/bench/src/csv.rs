//! Tiny CSV writer for the `results/` outputs.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes rows of `f64` values with a header to `path`, creating parent
/// directories as needed.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<f64>]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "{}", header.join(","))?;
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(out, "{}", line.join(","))?;
    }
    out.flush()
}

/// Prints an aligned table to stdout (the "figure" in terminal form).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<f64>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = header.iter().map(|h| h.len().max(12)).collect();
    let head: Vec<String> = header
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    println!("{}", head.join("  "));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(v, w)| format!("{v:>w$.4}"))
            .collect();
        println!("{}", cells.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_formats() {
        let path = std::env::temp_dir().join("ustream_csv_test/out.csv");
        write_csv(&path, &["x", "y"], &[vec![1.0, 2.0], vec![3.0, 4.5]]).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "x,y\n1,2\n3,4.5\n");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
