//! # ustream-kmeans
//!
//! A weighted k-means substrate. Stream micro-clustering frameworks
//! (CluStream, UMicro) produce a few hundred weighted summary points which an
//! *offline* macro-clustering phase groups into the user-requested number of
//! higher-level clusters; the STREAM baseline also repeatedly clusters
//! weighted chunk representatives. Both uses need exactly one primitive:
//! Lloyd's algorithm over weighted points with k-means++ seeding.
//!
//! The implementation follows the description in the CluStream paper
//! (Aggarwal, Han, Wang & Yu, VLDB 2003, §4) of its modified k-means, where
//! "the seeds are no longer picked randomly, but are sampled with probability
//! proportional to the number of points in a given micro-cluster" and
//! centroid updates use weighted means.

pub mod assign;
pub mod init;
pub mod macrocluster;
pub mod uncertain;

pub use assign::{assign_all, sq_distance_to_nearest, Assignments, CentroidBlock};
pub use init::{kmeans_pp_seeds, sample_weighted_index};
pub use macrocluster::{macro_cluster_weighted, MacroClustering};
pub use uncertain::{uk_means, UkMeansConfig, UkMeansResult};

use rand::rngs::StdRng;
use rand::SeedableRng;
use ustream_common::DeterministicPoint;

/// Configuration for a [`kmeans`] run.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters `k` (clamped to the number of input points).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement (squared L2).
    pub tolerance: f64,
    /// RNG seed for k-means++ initialisation.
    pub seed: u64,
}

impl KMeansConfig {
    /// Sensible defaults: 50 iterations, 1e-9 tolerance.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            k,
            max_iters: 50,
            tolerance: 1e-9,
            seed,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final centroids, `k × d`.
    pub centroids: Vec<Vec<f64>>,
    /// Index of the centroid owning each input point.
    pub assignments: Vec<usize>,
    /// Weighted within-cluster sum of squared distances.
    pub ssq: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Total weight assigned to each centroid.
    pub fn cluster_weights(&self, points: &[DeterministicPoint]) -> Vec<f64> {
        let mut w = vec![0.0; self.centroids.len()];
        for (p, &a) in points.iter().zip(&self.assignments) {
            w[a] += p.weight;
        }
        w
    }
}

/// Weighted k-means with k-means++ seeding.
///
/// Empty input yields an empty result; `k` larger than the number of points
/// is clamped. Zero-weight points participate in assignment but not in
/// centroid updates or SSQ.
pub fn kmeans(points: &[DeterministicPoint], config: &KMeansConfig) -> KMeansResult {
    if points.is_empty() || config.k == 0 {
        return KMeansResult {
            centroids: Vec::new(),
            assignments: vec![0; points.len()],
            ssq: 0.0,
            iterations: 0,
        };
    }
    // lint:allow(hot-panic): the empty-input case returned early above
    let d = points[0].dims();
    debug_assert!(points.iter().all(|p| p.dims() == d));
    let k = config.k.min(points.len());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids = kmeans_pp_seeds(points, k, &mut rng);

    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for _ in 0..config.max_iters {
        iterations += 1;
        let assigned = assign_all(points, &centroids);
        assignments = assigned.owner;

        // Weighted centroid update.
        let mut sums = vec![vec![0.0; d]; k];
        let mut weights = vec![0.0; k];
        for (p, &a) in points.iter().zip(&assignments) {
            weights[a] += p.weight;
            for (s, v) in sums[a].iter_mut().zip(&p.values) {
                *s += p.weight * v;
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            if weights[c] > 0.0 {
                let new: Vec<f64> = sums[c].iter().map(|s| s / weights[c]).collect();
                movement += ustream_common::point::sq_euclidean(&centroids[c], &new);
                centroids[c] = new;
            } else {
                // Empty cluster: re-seed on the weighted point farthest from
                // its current centroid, a standard Lloyd repair step.
                if let Some((idx, _)) = points
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.weight > 0.0)
                    .max_by(|(i, p), (j, q)| {
                        let di = p.weight * p.sq_distance_to(&centroids[assignments[*i]]);
                        let dj = q.weight * q.sq_distance_to(&centroids[assignments[*j]]);
                        di.total_cmp(&dj)
                    })
                {
                    movement +=
                        ustream_common::point::sq_euclidean(&centroids[c], &points[idx].values);
                    centroids[c] = points[idx].values.clone();
                }
            }
        }
        if movement <= config.tolerance {
            break;
        }
    }

    // Final assignment + SSQ against the converged centroids.
    let assigned = assign_all(points, &centroids);
    KMeansResult {
        ssq: assigned.weighted_ssq,
        assignments: assigned.owner,
        centroids,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<DeterministicPoint> {
        // Deterministic pseudo-blob: points on a small grid around (cx, cy).
        (0..n)
            .map(|i| {
                let dx = ((i % 5) as f64 - 2.0) * spread;
                let dy = ((i / 5 % 5) as f64 - 2.0) * spread;
                DeterministicPoint::new(vec![cx + dx, cy + dy])
            })
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut pts = blob(0.0, 0.0, 25, 0.05);
        pts.extend(blob(10.0, 10.0, 25, 0.05));
        let res = kmeans(&pts, &KMeansConfig::new(2, 1));
        assert_eq!(res.centroids.len(), 2);
        // One centroid near each blob centre.
        let mut near_origin = false;
        let mut near_ten = false;
        for c in &res.centroids {
            if c[0].abs() < 1.0 && c[1].abs() < 1.0 {
                near_origin = true;
            }
            if (c[0] - 10.0).abs() < 1.0 && (c[1] - 10.0).abs() < 1.0 {
                near_ten = true;
            }
        }
        assert!(near_origin && near_ten, "centroids: {:?}", res.centroids);
        // All points in a blob share an assignment.
        let first = res.assignments[0];
        assert!(res.assignments[..25].iter().all(|&a| a == first));
        assert!(res.assignments[25..].iter().all(|&a| a != first));
    }

    #[test]
    fn respects_weights() {
        // A heavy point drags the centroid.
        let pts = vec![
            DeterministicPoint::weighted(vec![0.0], 99.0),
            DeterministicPoint::weighted(vec![10.0], 1.0),
        ];
        let res = kmeans(&pts, &KMeansConfig::new(1, 3));
        assert!((res.centroids[0][0] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = blob(0.0, 0.0, 3, 0.1);
        let res = kmeans(&pts, &KMeansConfig::new(10, 7));
        assert_eq!(res.centroids.len(), 3);
    }

    #[test]
    fn empty_input() {
        let res = kmeans(&[], &KMeansConfig::new(3, 0));
        assert!(res.centroids.is_empty());
        assert_eq!(res.ssq, 0.0);
    }

    #[test]
    fn k_zero() {
        let pts = blob(0.0, 0.0, 5, 0.1);
        let res = kmeans(&pts, &KMeansConfig::new(0, 0));
        assert!(res.centroids.is_empty());
    }

    #[test]
    fn single_cluster_centroid_is_weighted_mean() {
        let pts = vec![
            DeterministicPoint::weighted(vec![1.0, 2.0], 2.0),
            DeterministicPoint::weighted(vec![4.0, 8.0], 1.0),
        ];
        let res = kmeans(&pts, &KMeansConfig::new(1, 0));
        assert!((res.centroids[0][0] - 2.0).abs() < 1e-9);
        assert!((res.centroids[0][1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ssq_zero_for_duplicate_points() {
        let pts = vec![DeterministicPoint::new(vec![5.0, 5.0]); 10];
        let res = kmeans(&pts, &KMeansConfig::new(1, 0));
        assert!(res.ssq < 1e-12);
    }

    #[test]
    fn more_clusters_never_increase_ssq() {
        let mut pts = blob(0.0, 0.0, 25, 0.3);
        pts.extend(blob(5.0, 0.0, 25, 0.3));
        pts.extend(blob(0.0, 5.0, 25, 0.3));
        let mut prev = f64::INFINITY;
        for k in 1..=4 {
            let res = kmeans(&pts, &KMeansConfig::new(k, 11));
            assert!(
                res.ssq <= prev + 1e-9,
                "k={k}: ssq {} > previous {prev}",
                res.ssq
            );
            prev = res.ssq;
        }
    }

    #[test]
    fn cluster_weights_sum_to_total() {
        let mut pts = blob(0.0, 0.0, 10, 0.1);
        pts.extend(blob(8.0, 8.0, 10, 0.1));
        for (i, p) in pts.iter_mut().enumerate() {
            p.weight = (i + 1) as f64;
        }
        let total: f64 = pts.iter().map(|p| p.weight).sum();
        let res = kmeans(&pts, &KMeansConfig::new(2, 5));
        let w = res.cluster_weights(&pts);
        assert!((w.iter().sum::<f64>() - total).abs() < 1e-9);
    }
}
