//! UK-means: offline k-means over *uncertain* objects (Ngai, Kao, Chui,
//! Cheng, Chau & Yip, *Efficient Clustering of Uncertain Data*, ICDM 2006 —
//! reference \[22\] of the UMicro paper).
//!
//! Each object is a distribution; assignment minimises the **expected**
//! squared distance to a candidate centroid. Under the moment model used
//! throughout this workspace (instantiation `x`, per-dimension error
//! std-dev `ψ`), the expected squared distance to a deterministic centroid
//! `c` decomposes as
//!
//! ```text
//! E[‖X − c‖²] = ‖x − c‖² + Σ_j ψ_j²
//! ```
//!
//! The `Σψ²` term does not depend on `c`, which recovers (and makes
//! testable) the classic UK-means insight: with moment-level uncertainty
//! the *partition* equals that of k-means on the instantiations, while the
//! *objective value* is inflated by the total uncertainty mass. The full
//! pdf-level algorithm differs only when distributions are multi-modal —
//! richer than the paper's error model. We therefore expose:
//!
//! * [`uk_means`] — expected-distance k-means with the uncertainty-aware
//!   objective (partition provably identical to the deterministic run);
//! * the centroid update uses confidence weights `1/(1 + Σψ²/d)` as an
//!   optional refinement ([`UkMeansConfig::confidence_weighting`]), which
//!   *does* change the partition: uncertain objects pull centroids less.

use crate::{kmeans, KMeansConfig};
use ustream_common::{DeterministicPoint, UncertainPoint};

/// UK-means configuration.
#[derive(Debug, Clone)]
pub struct UkMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Seed for k-means++ initialisation.
    pub seed: u64,
    /// Weight objects by `1/(1 + Σψ²/d)` during centroid updates, so noisy
    /// objects influence centroids less. Off by default (the literal
    /// UK-means).
    pub confidence_weighting: bool,
}

impl UkMeansConfig {
    /// Literal UK-means defaults.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            k,
            max_iters: 50,
            seed,
            confidence_weighting: false,
        }
    }

    /// Enables confidence weighting.
    pub fn with_confidence_weighting(mut self) -> Self {
        self.confidence_weighting = true;
        self
    }
}

/// Result of a UK-means run.
#[derive(Debug, Clone)]
pub struct UkMeansResult {
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per input object.
    pub assignments: Vec<usize>,
    /// Expected-distance objective: `Σ_i E[‖X_i − c_{a(i)}‖²]`, i.e. the
    /// deterministic SSQ plus the total error mass `Σ_i Σ_j ψ_ij²`.
    pub expected_ssq: f64,
    /// The deterministic component of the objective.
    pub deterministic_ssq: f64,
    /// The irreducible uncertainty component `Σ_i Σ_j ψ_ij²`.
    pub uncertainty_mass: f64,
}

/// Clusters uncertain objects by expected distance.
pub fn uk_means(objects: &[UncertainPoint], config: &UkMeansConfig) -> UkMeansResult {
    let uncertainty_mass: f64 = objects.iter().map(UncertainPoint::error_energy).sum();
    let points: Vec<DeterministicPoint> = objects
        .iter()
        .map(|o| {
            let weight = if config.confidence_weighting {
                let d = o.dims().max(1) as f64;
                1.0 / (1.0 + o.error_energy() / d)
            } else {
                1.0
            };
            DeterministicPoint::weighted(o.values().to_vec(), weight)
        })
        .collect();

    let mut km_cfg = KMeansConfig::new(config.k, config.seed);
    km_cfg.max_iters = config.max_iters;
    let res = kmeans(&points, &km_cfg);

    // The reported objective uses *unweighted* expected distances — the
    // weighting only shapes the centroids.
    let deterministic_ssq: f64 = objects
        .iter()
        .zip(&res.assignments)
        .map(|(o, &a)| {
            if res.centroids.is_empty() {
                0.0
            } else {
                ustream_common::point::sq_euclidean(o.values(), &res.centroids[a])
            }
        })
        .sum();

    UkMeansResult {
        centroids: res.centroids,
        assignments: res.assignments,
        expected_ssq: deterministic_ssq + uncertainty_mass,
        deterministic_ssq,
        uncertainty_mass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(values: &[f64], err: f64) -> UncertainPoint {
        UncertainPoint::new(values.to_vec(), vec![err; values.len()], 0, None)
    }

    fn blobs(err: f64) -> Vec<UncertainPoint> {
        let mut v = Vec::new();
        for i in 0..20 {
            let w = (i % 4) as f64 * 0.05;
            v.push(obj(&[w, -w], err));
            v.push(obj(&[10.0 + w, 10.0 - w], err));
        }
        v
    }

    #[test]
    fn partition_matches_deterministic_kmeans() {
        // The classic UK-means equivalence: moment-level uncertainty does
        // not change the partition.
        let noisy = blobs(3.0);
        let clean = blobs(0.0);
        let res_noisy = uk_means(&noisy, &UkMeansConfig::new(2, 5));
        let res_clean = uk_means(&clean, &UkMeansConfig::new(2, 5));
        assert_eq!(res_noisy.assignments, res_clean.assignments);
        for (a, b) in res_noisy.centroids.iter().zip(&res_clean.centroids) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn objective_decomposes() {
        let objects = blobs(2.0);
        let res = uk_means(&objects, &UkMeansConfig::new(2, 1));
        // Σψ² = 40 objects × 2 dims × 4.
        assert!((res.uncertainty_mass - 40.0 * 2.0 * 4.0).abs() < 1e-9);
        assert!((res.expected_ssq - res.deterministic_ssq - res.uncertainty_mass).abs() < 1e-9);
        assert!(res.expected_ssq > res.deterministic_ssq);
    }

    #[test]
    fn separates_blobs() {
        let res = uk_means(&blobs(0.5), &UkMeansConfig::new(2, 9));
        assert_eq!(res.centroids.len(), 2);
        let first = res.assignments[0];
        for (i, &a) in res.assignments.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(a, first);
            } else {
                assert_ne!(a, first);
            }
        }
    }

    #[test]
    fn confidence_weighting_discounts_noisy_objects() {
        // One cluster: 5 precise objects at x=0, 5 very noisy at x=10.
        let mut objects: Vec<UncertainPoint> = (0..5).map(|_| obj(&[0.0], 0.01)).collect();
        objects.extend((0..5).map(|_| obj(&[10.0], 20.0)));
        let plain = uk_means(&objects, &UkMeansConfig::new(1, 2));
        let weighted = uk_means(
            &objects,
            &UkMeansConfig::new(1, 2).with_confidence_weighting(),
        );
        // Plain centroid: 5. Weighted centroid pulled towards the precise
        // objects at 0.
        assert!((plain.centroids[0][0] - 5.0).abs() < 1e-9);
        assert!(
            weighted.centroids[0][0] < 1.0,
            "confidence weighting should discount noisy objects: {}",
            weighted.centroids[0][0]
        );
    }

    #[test]
    fn empty_input() {
        let res = uk_means(&[], &UkMeansConfig::new(3, 0));
        assert!(res.centroids.is_empty());
        assert_eq!(res.expected_ssq, 0.0);
    }
}
